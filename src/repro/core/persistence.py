"""Persist and restore a materialized sampling cube — crash-safely.

A middleware restart should not force re-initialization — the cube (the
expensive artifact) serializes to a single JSON document: the cubed
attributes, θ, the loss binding, the global sample, the cube table
(cell → sample id), the sample table, and the known-cell set. Loading
re-binds the loss function from a :class:`LossRegistry` (user-declared
losses must be re-registered first, e.g. by replaying their CREATE
AGGREGATE statement — the declaration is stored alongside when known).

Durability contract (format version 2):

- **Atomic writes** — :func:`save_cube` goes through temp file + fsync +
  ``os.replace`` (:mod:`repro.resilience.atomic`): a crash mid-save
  leaves the previous good cube file untouched, never a torn one.
- **Versioned envelope with checksums** — the document carries a CRC32
  per top-level section plus one per individual sample, so corruption
  is *detected* on load, and detected at the granularity that decides
  recoverability: a bad ``cube_table`` or ``global_sample`` is fatal
  (TAB504/TAB505), a bad individual sample is recoverable (TAB506) —
  the affected cells can be degraded to the global sample or their
  samples re-drawn from raw data (``on_corruption="degrade"/"repair"``).
- **Section-named errors** — every :class:`PersistenceError` reports
  which section failed, at which path, with a TAB5xx code.

Version-1 files (pre-envelope) still load; they simply have no
checksums to verify.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.cube_store import SamplingCubeStore
from repro.core.global_sample import GlobalSample
from repro.core.loss.registry import LossRegistry
from repro.core.sampling import sample_with_pool
from repro.core.tabula import Tabula, TabulaConfig
from repro.engine.column import Column
from repro.engine.schema import ColumnType
from repro.engine.table import Table
from repro.errors import SamplingError, TabulaError
from repro.resilience.atomic import atomic_write_text
from repro.resilience.checkpoint import rng_for_cell

FORMAT_VERSION = 2
#: Versions this loader accepts (1 = legacy, no checksums).
SUPPORTED_VERSIONS = (1, 2)

# TAB5xx — persistence / corruption-detection error codes (see
# docs/architecture.md "Fault tolerance & recovery semantics").
TAB501_MISSING_FILE = "TAB501"
TAB502_UNREADABLE = "TAB502"
TAB503_BAD_VERSION = "TAB503"
TAB504_MISSING_SECTION = "TAB504"
TAB505_SECTION_CORRUPT = "TAB505"
TAB506_SAMPLE_CORRUPT = "TAB506"
TAB507_LOSS_UNREGISTERED = "TAB507"
TAB508_SPATIAL_CORRUPT = "TAB508"

#: Sections whose loss is fatal: without them there is no cube to serve.
#: ``spatial_index`` is deliberately NOT here — it is derived data over
#: the samples, so a missing or corrupt section is recoverable: the
#: loader rebuilds the indexes and records it in the
#: :class:`LoadReport` instead of failing the load.
_FATAL_SECTIONS = (
    "cubed_attrs",
    "threshold",
    "loss",
    "global_sample",
    "cube_table",
    "known_cells",
)


class PersistenceError(TabulaError):
    """The cube file is missing, corrupt, or from an unknown version.

    Attributes:
        code: the TAB5xx error code of the failure class.
        section: the document section that failed validation (or "").
        path: the cube file involved (or "").
        failures: every ``(section, code)`` that failed in this pass.
            Validation reports *all* corrupt sections at once rather
            than stopping at the first, so an operator repairs a damaged
            file in one round trip; ``code``/``section`` above remain
            the first (most severe) entry.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "",
        section: str = "",
        path: Union[str, Path, None] = None,
        failures: Optional[List[Tuple[str, str]]] = None,
    ):
        prefix = f"[{code}] " if code else ""
        where = f" (section {section!r} of {path})" if section else ""
        super().__init__(f"{prefix}{message}{where}")
        self.code = code
        self.section = section
        self.path = str(path) if path is not None else ""
        if failures is not None:
            self.failures = tuple(failures)
        elif section:
            self.failures = ((section, code),)
        else:
            self.failures = ()


# ---------------------------------------------------------------------------
# Table <-> JSON
# ---------------------------------------------------------------------------

def table_to_json(table: Table) -> dict:
    """Serialize a table column-wise (dictionaries kept for categories)."""
    columns = []
    for col in table.columns():
        entry = {
            "name": col.name,
            "type": col.ctype.value,
            "data": col.data.tolist(),
        }
        if col.dictionary is not None:
            entry["dictionary"] = list(col.dictionary)
        columns.append(entry)
    return {"columns": columns, "num_rows": table.num_rows}


def table_from_json(payload: dict) -> Table:
    """Inverse of :func:`table_to_json`."""
    columns = []
    for entry in payload["columns"]:
        ctype = ColumnType(entry["type"])
        data = np.asarray(entry["data"], dtype=ctype.numpy_dtype)
        dictionary = tuple(entry["dictionary"]) if "dictionary" in entry else None
        columns.append(Column(entry["name"], ctype, data, dictionary))
    return Table(columns)


# ---------------------------------------------------------------------------
# Checksums
# ---------------------------------------------------------------------------

def _section_crc(payload) -> int:
    """CRC32 over the canonical JSON serialization of a section."""
    return zlib.crc32(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


# ---------------------------------------------------------------------------
# Cube <-> file
# ---------------------------------------------------------------------------

def _cell_to_list(cell) -> list:
    return [None if v is None else v for v in cell]


def _cell_from_list(values) -> tuple:
    return tuple(None if v is None else v for v in values)


def save_cube(
    tabula: Tabula,
    path: Union[str, Path],
    loss_declaration: Optional[str] = None,
) -> None:
    """Atomically write an initialized Tabula's cube to ``path`` (JSON).

    The write is crash-safe: the document lands in a temp file which is
    fsynced and then atomically swapped over ``path``, so a previously
    saved cube survives a crash at any point of the save.

    Args:
        tabula: an initialized middleware instance.
        loss_declaration: optional CREATE AGGREGATE source stored for
            provenance (replayed manually on load when the loss is
            user-declared rather than built-in).
    """
    store = tabula.store
    config = tabula.config
    samples = {
        str(sid): table_to_json(sample)
        for sid, sample in store.sample_table_entries()
    }
    cube_cells = [
        {"cell": _cell_to_list(cell), "sample_id": store.sample_id_of(cell)}
        for cell in store._cell_to_sample_id  # physical layout, Figure 4a
    ]
    document = {
        "format_version": FORMAT_VERSION,
        "cubed_attrs": list(config.cubed_attrs),
        "threshold": config.threshold,
        "loss": {
            "name": config.loss.name,
            "target_attrs": list(config.loss.target_attrs),
            "declaration": loss_declaration,
        },
        "global_sample": {
            "table": table_to_json(store.global_sample.table),
            "indices": store.global_sample.indices.tolist(),
            "epsilon": store.global_sample.epsilon,
            "delta": store.global_sample.delta,
        },
        "cube_table": cube_cells,
        "sample_table": samples,
        "known_cells": [_cell_to_list(c) for c in sorted(store._known_cells, key=str)],
    }
    spatial_state = store.spatial_state()
    if spatial_state is not None:
        document["spatial_index"] = spatial_state
    document["envelope"] = {
        "checksums": {name: _section_crc(document[name]) for name in _FATAL_SECTIONS},
        "sample_checksums": {sid: _section_crc(payload) for sid, payload in samples.items()},
    }
    if spatial_state is not None:
        document["envelope"]["checksums"]["spatial_index"] = _section_crc(spatial_state)
    atomic_write_text(path, json.dumps(document))


@dataclass
class LoadReport:
    """What corruption handling did during one :func:`load_cube`."""

    #: sample id -> TAB code, for samples that failed validation.
    corrupt_samples: Dict[int, str] = field(default_factory=dict)
    #: cells degraded to the fallback ladder (``on_corruption="degrade"``).
    degraded_cells: List[tuple] = field(default_factory=list)
    #: cells whose samples were re-drawn from raw data (``"repair"``).
    repaired_cells: List[tuple] = field(default_factory=list)
    #: the persisted ``spatial_index`` section was missing, corrupt or
    #: inconsistent with the samples, so the indexes were rebuilt from
    #: the sample data instead of restored (recoverable, TAB508).
    spatial_index_rebuilt: bool = False


def _read_document(path: Union[str, Path]) -> dict:
    try:
        document = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise PersistenceError(
            f"no cube file at {path}", code=TAB501_MISSING_FILE, path=path
        ) from None
    except json.JSONDecodeError as exc:
        raise PersistenceError(
            f"corrupt cube file {path}: {exc}", code=TAB502_UNREADABLE, path=path
        ) from None
    version = document.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"unsupported cube format version {version!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})",
            code=TAB503_BAD_VERSION,
            path=path,
        )
    return document


def _raise_collected(
    problems: List[Tuple[str, str, str]], path: Union[str, Path]
) -> None:
    """Raise one PersistenceError naming every (section, code, detail).

    ``code``/``section`` of the raised error stay the first failure (the
    stable single-failure API); ``failures`` carries the complete list so
    an operator fixes a damaged file in one round trip instead of
    replaying load-fail-fix cycles section by section.
    """
    first_section, first_code, _ = problems[0]
    summary = "; ".join(
        f"{section} [{code}]: {detail}" for section, code, detail in problems
    )
    raise PersistenceError(
        f"{len(problems)} unrecoverable failure(s): {summary}",
        code=first_code,
        section=first_section,
        path=path,
        failures=[(section, code) for section, code, _ in problems],
    )


def _verify_sections(document: dict, path: Union[str, Path]) -> Dict[str, str]:
    """Validate the envelope; returns {sample_id: TAB code} for samples
    that failed their checksum. Fatal-section failures raise — after the
    whole document has been audited, so the error names *every* corrupt
    section, not just the first one encountered."""
    problems: List[Tuple[str, str, str]] = []  # (section, code, detail)
    missing = set()
    for name in _FATAL_SECTIONS + ("sample_table",):
        if name not in document:
            missing.add(name)
            problems.append(
                (name, TAB504_MISSING_SECTION, "required section is missing")
            )
    if document.get("format_version") == 1:
        if problems:
            _raise_collected(problems, path)
        return {}  # legacy file: nothing to verify against
    envelope = document.get("envelope")
    if not isinstance(envelope, dict) or "checksums" not in envelope:
        problems.append(
            ("envelope", TAB504_MISSING_SECTION, "version-2 document has no checksum envelope")
        )
        _raise_collected(problems, path)
    for name in _FATAL_SECTIONS:
        if name in missing:
            continue
        expected = envelope["checksums"].get(name)
        actual = _section_crc(document[name])
        if expected != actual:
            problems.append(
                (
                    name,
                    TAB505_SECTION_CORRUPT,
                    f"checksum mismatch: recorded {expected}, computed {actual}",
                )
            )
    if problems:
        _raise_collected(problems, path)
    corrupt: Dict[str, str] = {}
    sample_checksums = envelope.get("sample_checksums", {})
    for sid, payload in document["sample_table"].items():
        expected = sample_checksums.get(sid)
        if expected != _section_crc(payload):
            corrupt[sid] = TAB506_SAMPLE_CORRUPT
    return corrupt


def load_cube(
    path: Union[str, Path],
    table: Table,
    registry: Optional[LossRegistry] = None,
    on_corruption: str = "raise",
) -> Tabula:
    """Restore a ready-to-query Tabula from a saved cube.

    Args:
        path: file written by :func:`save_cube`.
        table: the raw table (needed for ``raw_answer``/``actual_loss``;
            queries themselves run purely on the restored cube).
        registry: loss registry to re-bind the loss from; defaults to
            the built-ins.
        on_corruption: what to do when an individual sample fails its
            checksum (the *recoverable* corruption class):

            - ``"raise"`` (default) — fail with TAB506 naming the sample;
            - ``"degrade"`` — drop the bad sample; its cells are served
              by the query-time fallback ladder with an explicit
              ``GuaranteeStatus``;
            - ``"repair"`` — re-draw a fresh θ-certified sample from the
              raw ``table`` for each affected cell (falls back to
              degrading a cell when θ cannot be met).

            Fatal corruption (cube table, global sample, loss binding,
            known cells) always raises, whatever this is set to.

    Raises:
        PersistenceError: missing file, unknown format, checksum
            failure (per ``on_corruption``), or missing loss function —
            always naming the failing section and path.
    """
    if on_corruption not in ("raise", "degrade", "repair"):
        raise ValueError(
            f"on_corruption must be 'raise', 'degrade' or 'repair', got {on_corruption!r}"
        )
    document = _read_document(path)
    corrupt_samples = _verify_sections(document, path)

    registry = registry if registry is not None else LossRegistry()
    loss_info = document["loss"]
    if loss_info["name"] not in registry:
        raise PersistenceError(
            f"loss function {loss_info['name']!r} is not registered; replay its "
            "CREATE AGGREGATE declaration before loading"
            + (f":\n{loss_info['declaration']}" if loss_info.get("declaration") else ""),
            code=TAB507_LOSS_UNREGISTERED,
            section="loss",
            path=path,
        )
    loss = registry.bind(loss_info["name"], tuple(loss_info["target_attrs"]))

    gs_payload = document["global_sample"]
    global_sample = GlobalSample(
        table=table_from_json(gs_payload["table"]),
        indices=np.asarray(gs_payload["indices"], dtype=np.int64),
        epsilon=gs_payload["epsilon"],
        delta=gs_payload["delta"],
    )

    samples: Dict[int, Table] = {}
    bad_samples: List[Tuple[str, str, str]] = []  # (section, code, detail)
    for sid, payload in document["sample_table"].items():
        if sid in corrupt_samples:
            bad_samples.append(
                (
                    f"sample_table/{sid}",
                    TAB506_SAMPLE_CORRUPT,
                    "sample failed its checksum",
                )
            )
            continue  # degrade/repair: handled below, after the store exists
        try:
            samples[int(sid)] = table_from_json(payload)
        except (KeyError, TypeError, ValueError) as exc:
            bad_samples.append(
                (
                    f"sample_table/{sid}",
                    TAB506_SAMPLE_CORRUPT,
                    f"sample payload is undecodable: {exc}",
                )
            )
            corrupt_samples[sid] = TAB506_SAMPLE_CORRUPT
    if bad_samples and on_corruption == "raise":
        # One pass, every corrupt sample named — then the recovery hint.
        summary = "; ".join(
            f"{section} [{code}]: {detail}" for section, code, detail in bad_samples
        )
        raise PersistenceError(
            f"{len(bad_samples)} corrupt sample(s): {summary}; reload with "
            "on_corruption='degrade' or 'repair' to recover",
            code=bad_samples[0][1],
            section=bad_samples[0][0],
            path=path,
            failures=[(section, code) for section, code, _ in bad_samples],
        )

    cell_to_sample = {
        _cell_from_list(entry["cell"]): entry["sample_id"]
        for entry in document["cube_table"]
    }
    known = frozenset(_cell_from_list(c) for c in document["known_cells"])

    config = TabulaConfig(
        cubed_attrs=tuple(document["cubed_attrs"]),
        threshold=document["threshold"],
        loss=loss,
    )
    tabula = Tabula(table, config)
    store = SamplingCubeStore(
        attrs=config.cubed_attrs,
        global_sample=global_sample,
        cell_to_sample_id=cell_to_sample,
        samples=samples,
        known_cells=known,
    )
    report = LoadReport(corrupt_samples={int(s): c for s, c in corrupt_samples.items()})
    # Restore the spatial indexes before corruption handling: a dropped
    # sample then pops its index and a repaired one gets a fresh index
    # built at assignment time, exactly like live maintenance.
    spatial_section = document.get("spatial_index")
    section_ok = spatial_section is not None
    if section_ok and document.get("format_version") != 1:
        recorded = document["envelope"]["checksums"].get("spatial_index")
        section_ok = recorded == _section_crc(spatial_section)
    restored = bool(section_ok) and store.restore_spatial(spatial_section)
    if not restored:
        report.spatial_index_rebuilt = store.build_spatial_indexes(
            config.spatial_backend, config.spatial_resolution
        )
    for sid_text in corrupt_samples:
        sid = int(sid_text)
        affected = store.drop_sample(
            sid, f"sample {sid} failed validation ({TAB506_SAMPLE_CORRUPT}) in {path}"
        )
        if on_corruption == "repair":
            for cell in affected:
                if _repair_cell(tabula, store, cell):
                    report.repaired_cells.append(cell)
                else:
                    report.degraded_cells.append(cell)
        else:
            report.degraded_cells.extend(affected)
    tabula.attach_store(store)
    tabula.last_load_report = report
    return tabula


def _repair_cell(tabula: Tabula, store: SamplingCubeStore, cell) -> bool:
    """Re-draw a θ-certified sample for ``cell`` from the raw table."""
    config = tabula.config
    raw_indices = tabula._cell_row_indices(cell)
    if raw_indices.size == 0:
        return False
    values = config.loss.extract(tabula.table.take(raw_indices))
    try:
        result = sample_with_pool(
            config.loss,
            values,
            config.threshold,
            rng_for_cell(config.seed, cell),
            pool_size=config.pool_size,
            lazy=config.lazy_sampling,
        )
    except SamplingError:
        return False
    store.assign_new_sample(cell, tabula.table.take(raw_indices[result.indices]))
    return True


# ---------------------------------------------------------------------------
# Offline verification (the `repro cube verify` deploy gate)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SectionStatus:
    """Validation outcome for one document section."""

    section: str
    ok: bool
    code: str = ""
    detail: str = ""


@dataclass(frozen=True)
class CubeVerifyReport:
    """Outcome of :func:`verify_cube_file`."""

    path: str
    format_version: Optional[int]
    sections: Tuple[SectionStatus, ...]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.sections)

    @property
    def failures(self) -> Tuple[SectionStatus, ...]:
        return tuple(s for s in self.sections if not s.ok)


def verify_cube_file(path: Union[str, Path]) -> CubeVerifyReport:
    """Checksum/version audit of a persisted cube, without loading it.

    Needs neither the raw table nor the loss registry, so it can run as
    a deploy gate wherever the file lives. Never raises on corruption —
    every finding lands in the report (the CLI turns it into an exit
    code).
    """
    statuses: List[SectionStatus] = []
    try:
        document = _read_document(path)
    except PersistenceError as exc:
        return CubeVerifyReport(
            path=str(path),
            format_version=None,
            sections=(SectionStatus("document", False, exc.code, str(exc)),),
        )
    version = document["format_version"]
    for name in _FATAL_SECTIONS + ("sample_table",):
        if name not in document:
            statuses.append(
                SectionStatus(name, False, TAB504_MISSING_SECTION, "section missing")
            )
    if version == 1:
        statuses.append(
            SectionStatus(
                "envelope", True, "", "legacy v1 file: no checksums to verify"
            )
        )
        return CubeVerifyReport(str(path), version, tuple(statuses))
    envelope = document.get("envelope")
    if not isinstance(envelope, dict) or "checksums" not in envelope:
        statuses.append(
            SectionStatus("envelope", False, TAB504_MISSING_SECTION, "no checksum envelope")
        )
        return CubeVerifyReport(str(path), version, tuple(statuses))
    for name in _FATAL_SECTIONS:
        if name not in document:
            continue  # already reported missing
        expected = envelope["checksums"].get(name)
        actual = _section_crc(document[name])
        if expected == actual:
            statuses.append(SectionStatus(name, True, detail=f"crc32 {actual}"))
        else:
            statuses.append(
                SectionStatus(
                    name,
                    False,
                    TAB505_SECTION_CORRUPT,
                    f"recorded crc32 {expected}, computed {actual} (fatal)",
                )
            )
    sample_checksums = envelope.get("sample_checksums", {})
    for sid, payload in document.get("sample_table", {}).items():
        expected = sample_checksums.get(sid)
        actual = _section_crc(payload)
        if expected == actual:
            statuses.append(SectionStatus(f"sample_table/{sid}", True, detail=f"crc32 {actual}"))
        else:
            statuses.append(
                SectionStatus(
                    f"sample_table/{sid}",
                    False,
                    TAB506_SAMPLE_CORRUPT,
                    f"recorded crc32 {expected}, computed {actual} (recoverable)",
                )
            )
    if "spatial_index" in document:
        expected = envelope["checksums"].get("spatial_index")
        actual = _section_crc(document["spatial_index"])
        if expected == actual:
            statuses.append(
                SectionStatus("spatial_index", True, detail=f"crc32 {actual}")
            )
        else:
            statuses.append(
                SectionStatus(
                    "spatial_index",
                    False,
                    TAB508_SPATIAL_CORRUPT,
                    f"recorded crc32 {expected}, computed {actual} "
                    "(recoverable; indexes are rebuilt on load)",
                )
            )
    return CubeVerifyReport(str(path), version, tuple(statuses))
