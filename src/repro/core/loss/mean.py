"""Function 1 — statistical-mean relative error.

``BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END``

With θ = 10 % Tabula guarantees every returned sample's mean is within
10 % relative error of the raw population's mean (100 % confidence).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.loss.base import GreedyLossState, LossFunction


def _relative_mean_error(raw_mean: float, sam_mean: float) -> float:
    """|raw - sam| / |raw| with the zero-mean edge case pinned down."""
    if raw_mean == 0.0:
        return 0.0 if sam_mean == 0.0 else math.inf
    return abs((raw_mean - sam_mean) / raw_mean)


class MeanLoss(LossFunction):
    """Relative error between the raw and sample statistical means."""

    name = "mean_loss"
    additive_stats = True
    target_arity = 1

    def __init__(self, attr: str):
        self.target_attrs = (attr,)

    # -- direct ---------------------------------------------------------
    def loss(self, raw: np.ndarray, sample: np.ndarray) -> float:
        if len(raw) == 0:
            return 0.0
        if len(sample) == 0:
            return math.inf
        return _relative_mean_error(float(np.mean(raw)), float(np.mean(sample)))

    # -- algebraic --------------------------------------------------------
    def prepare_sample(self, sample: np.ndarray) -> Tuple[float, float]:
        return (float(len(sample)), float(np.sum(sample)))

    def stats(self, raw: np.ndarray, sample: np.ndarray) -> Tuple[float, float]:
        return (float(len(raw)), float(np.sum(raw)))

    def merge_stats(self, left: tuple, right: tuple) -> tuple:
        return (left[0] + right[0], left[1] + right[1])

    def loss_from_stats(self, stats: tuple, sample_summary: tuple) -> float:
        raw_n, raw_sum = stats
        sam_n, sam_sum = sample_summary
        if raw_n == 0:
            return 0.0
        if sam_n == 0:
            return math.inf
        return _relative_mean_error(raw_sum / raw_n, sam_sum / sam_n)

    # -- greedy -----------------------------------------------------------
    def greedy_state(self, raw: np.ndarray) -> "MeanGreedyState":
        return MeanGreedyState(np.asarray(raw, dtype=float))

    # -- representation join ------------------------------------------------
    def representation_shortcut(self, stats: tuple, aux: tuple, sample: np.ndarray) -> float:
        """The mean loss is exactly computable from (count, sum) stats."""
        return self.loss_from_stats(stats, self.prepare_sample(sample))

    def representation_prepare(self, stats_list, aux_list):
        counts = np.asarray([s[0] for s in stats_list])
        sums = np.asarray([s[1] for s in stats_list])
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        return (counts, means)

    def representation_shortcut_batch(self, prepared, sample: np.ndarray):
        counts, means = prepared
        if len(sample) == 0:
            return np.full(len(counts), math.inf)
        sam_mean = float(np.mean(sample))
        with np.errstate(invalid="ignore", divide="ignore"):
            losses = np.abs((means - sam_mean) / means)
        losses = np.where(counts == 0, 0.0, losses)
        losses = np.where(
            (means == 0.0) & (counts > 0),
            np.where(sam_mean == 0.0, 0.0, math.inf),
            losses,
        )
        return losses


class MeanGreedyState(GreedyLossState):
    """O(1)-per-candidate incremental evaluator for the mean loss."""

    def __init__(self, raw: np.ndarray):
        self._values = raw
        self._raw_mean = float(np.mean(raw)) if len(raw) else 0.0
        self._sum = 0.0
        self._count = 0

    def current_loss(self) -> float:
        if len(self._values) == 0:
            return 0.0
        if self._count == 0:
            return math.inf
        return _relative_mean_error(self._raw_mean, self._sum / self._count)

    def losses_if_added(self, candidates: np.ndarray) -> np.ndarray:
        new_means = (self._sum + self._values[candidates]) / (self._count + 1)
        if self._raw_mean == 0.0:
            return np.where(new_means == 0.0, 0.0, np.inf)
        return np.abs((self._raw_mean - new_means) / self._raw_mean)

    def add(self, index: int) -> None:
        self._sum += float(self._values[index])
        self._count += 1
