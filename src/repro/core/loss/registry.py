"""Name → loss-function resolution.

The initialization query names its loss function (``HAVING my_loss(attr,
Sam_global) > θ``); a :class:`LossRegistry` turns that name plus the
target attributes into a bound :class:`LossFunction`. Registries start
with the paper's built-ins and grow as ``CREATE AGGREGATE`` statements
are executed.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Tuple

from repro.core.loss.base import LossFunction
from repro.core.loss.heatmap import HeatmapLoss
from repro.core.loss.histogram import HistogramLoss
from repro.core.loss.mean import MeanLoss
from repro.core.loss.regression import RegressionLoss
from repro.core.loss.stddev import StdDevLoss
from repro.errors import LossFunctionError


class LossSpec(abc.ABC):
    """An unbound loss function: knows its arity, binds to target attrs."""

    name: str = ""
    arity: int = 1

    @abc.abstractmethod
    def bind(self, target_attrs: Tuple[str, ...]) -> LossFunction:
        """Instantiate against concrete target attribute names."""

    def check_arity(self, target_attrs: Tuple[str, ...]) -> None:
        if len(target_attrs) != self.arity:
            raise LossFunctionError(
                f"loss {self.name!r} expects {self.arity} target attribute(s), "
                f"got {len(target_attrs)}: {target_attrs!r}"
            )


class _BuiltinSpec(LossSpec):
    def __init__(self, name: str, arity: int, factory: Callable[..., LossFunction]):
        self.name = name
        self.arity = arity
        self._factory = factory

    def bind(self, target_attrs: Tuple[str, ...]) -> LossFunction:
        self.check_arity(target_attrs)
        return self._factory(*target_attrs)


class LossRegistry:
    """Case-insensitive registry of loss specs."""

    def __init__(self, include_builtins: bool = True):
        self._specs: Dict[str, LossSpec] = {}
        if include_builtins:
            for spec in _builtin_specs():
                self.register(spec)

    def register(self, spec: LossSpec, replace: bool = False) -> None:
        key = spec.name.lower()
        if key in self._specs and not replace:
            raise LossFunctionError(f"loss function {spec.name!r} already registered")
        self._specs[key] = spec

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._specs

    def get(self, name: str) -> LossSpec:
        try:
            return self._specs[name.lower()]
        except KeyError:
            raise LossFunctionError(f"unknown loss function: {name!r}") from None

    def bind(self, name: str, target_attrs: Tuple[str, ...]) -> LossFunction:
        """Resolve ``name`` and bind it to ``target_attrs``."""
        return self.get(name).bind(tuple(target_attrs))

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._specs))


def _builtin_specs() -> Tuple[LossSpec, ...]:
    return (
        _BuiltinSpec("mean_loss", 1, MeanLoss),
        _BuiltinSpec("histogram_loss", 1, HistogramLoss),
        _BuiltinSpec("heatmap_loss", 2, HeatmapLoss),
        _BuiltinSpec(
            "heatmap_loss_manhattan",
            2,
            lambda x, y: HeatmapLoss(x, y, metric="manhattan"),
        ),
        _BuiltinSpec("regression_loss", 2, RegressionLoss),
        _BuiltinSpec("stddev_loss", 1, StdDevLoss),
    )
