"""Standard-deviation accuracy loss (extension).

``BEGIN ABS((STD_DEV(Raw) - STD_DEV(Sam)) / STD_DEV(Raw)) END``

STD_DEV is one of the algebraic aggregates the paper explicitly allows
in loss bodies; this built-in gives it a first-class, vectorized greedy
evaluator (the compiled path would work too, just slower). Useful for
dashboards whose visual is a spread/volatility indicator.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.loss.base import GreedyLossState, LossFunction


def _std_from_sums(n: float, total: float, total_sq: float) -> float:
    if n <= 0:
        return math.nan
    variance = total_sq / n - (total / n) ** 2
    return math.sqrt(max(variance, 0.0))


def _relative_std_error(raw_std: float, sam_std: float) -> float:
    if raw_std == 0.0:
        return 0.0 if sam_std == 0.0 else math.inf
    return abs((raw_std - sam_std) / raw_std)


class StdDevLoss(LossFunction):
    """Relative error between raw and sample population standard deviation."""

    name = "stddev_loss"
    additive_stats = True
    target_arity = 1

    def __init__(self, attr: str):
        self.target_attrs = (attr,)

    # -- direct ---------------------------------------------------------
    def loss(self, raw: np.ndarray, sample: np.ndarray) -> float:
        # Delegates to the sufficient-statistics path so the direct and
        # algebraic evaluations agree bit-for-bit: two-pass np.std and
        # the one-pass Σx² formula round differently on constant data
        # (cancellation noise near std = 0 flips the relative error
        # between 0, 1 and inf).
        if len(raw) == 0:
            return 0.0
        if len(sample) == 0:
            return math.inf
        return self.loss_from_stats(
            self.stats(raw, sample), self.prepare_sample(sample)
        )

    # -- algebraic --------------------------------------------------------
    def prepare_sample(self, sample: np.ndarray) -> Tuple[float, float, float]:
        return (
            float(len(sample)),
            float(np.sum(sample)),
            float(np.sum(np.square(sample))),
        )

    def stats(self, raw: np.ndarray, sample: np.ndarray) -> Tuple[float, float, float]:
        return (
            float(len(raw)),
            float(np.sum(raw)),
            float(np.sum(np.square(raw))),
        )

    def merge_stats(self, left: tuple, right: tuple) -> tuple:
        return tuple(a + b for a, b in zip(left, right))

    def loss_from_stats(self, stats: tuple, sample_summary: tuple) -> float:
        if stats[0] == 0:
            return 0.0
        if sample_summary[0] == 0:
            return math.inf
        return _relative_std_error(
            _std_from_sums(*stats), _std_from_sums(*sample_summary)
        )

    # -- greedy -----------------------------------------------------------
    def greedy_state(self, raw: np.ndarray) -> "StdDevGreedyState":
        return StdDevGreedyState(np.asarray(raw, dtype=float))

    # -- representation join ------------------------------------------------
    def representation_shortcut(self, stats: tuple, aux: tuple, sample: np.ndarray) -> float:
        return self.loss_from_stats(stats, self.prepare_sample(sample))

    def representation_prepare(self, stats_list, aux_list):
        counts = np.asarray([s[0] for s in stats_list])
        stds = np.asarray(
            [_std_from_sums(*s) if s[0] > 0 else 0.0 for s in stats_list]
        )
        return (counts, stds)

    def representation_shortcut_batch(self, prepared, sample: np.ndarray):
        counts, stds = prepared
        if len(sample) == 0:
            return np.full(len(counts), math.inf)
        sam_std = float(np.std(sample))
        with np.errstate(invalid="ignore", divide="ignore"):
            losses = np.abs((stds - sam_std) / stds)
        losses = np.where(counts == 0, 0.0, losses)
        losses = np.where(
            (stds == 0.0) & (counts > 0),
            np.where(sam_std == 0.0, 0.0, math.inf),
            losses,
        )
        return losses


class StdDevGreedyState(GreedyLossState):
    """O(1)-per-candidate evaluator via running (n, Σx, Σx²)."""

    def __init__(self, raw: np.ndarray):
        self._values = raw
        self._raw_std = float(np.std(raw)) if len(raw) else 0.0
        self._n = 0.0
        self._sum = 0.0
        self._sum_sq = 0.0

    def current_loss(self) -> float:
        if len(self._values) == 0:
            return 0.0
        if self._n == 0:
            return math.inf
        return _relative_std_error(self._raw_std, _std_from_sums(self._n, self._sum, self._sum_sq))

    def losses_if_added(self, candidates: np.ndarray) -> np.ndarray:
        x = self._values[candidates]
        n = self._n + 1.0
        total = self._sum + x
        total_sq = self._sum_sq + x * x
        variance = np.maximum(total_sq / n - (total / n) ** 2, 0.0)
        stds = np.sqrt(variance)
        if self._raw_std == 0.0:
            return np.where(stds == 0.0, 0.0, np.inf)
        return np.abs((self._raw_std - stds) / self._raw_std)

    def add(self, index: int) -> None:
        x = float(self._values[index])
        self._n += 1.0
        self._sum += x
        self._sum_sq += x * x
