"""User-defined accuracy loss functions (Section II of the paper).

A loss function measures how much visual-analytics accuracy is lost by
using a sample instead of the raw query answer. Tabula requires loss
functions to be *algebraic* so the dry-run stage can derive every cuboid
of the cube from the base cuboid; each implementation therefore exposes
distributive sufficient statistics next to its direct evaluation.

Built-ins match the paper's three examples plus the histogram variant
used in the experiments:

- :class:`~repro.core.loss.mean.MeanLoss` — Function 1, statistical-mean
  relative error;
- :class:`~repro.core.loss.heatmap.HeatmapLoss` — Function 2, geospatial
  average-minimum-distance (VAS / POIsam style);
- :class:`~repro.core.loss.regression.RegressionLoss` — Function 3,
  regression-line angle difference;
- :class:`~repro.core.loss.histogram.HistogramLoss` — Function 2 on 1-D
  data.

User-declared functions arrive through
:func:`repro.core.loss.compiler.compile_loss`.
"""

from repro.core.loss.base import GreedyLossState, LossFunction
from repro.core.loss.combined import CombinedLoss
from repro.core.loss.heatmap import HeatmapLoss
from repro.core.loss.histogram import HistogramLoss
from repro.core.loss.mean import MeanLoss
from repro.core.loss.regression import RegressionLoss
from repro.core.loss.registry import LossRegistry
from repro.core.loss.stddev import StdDevLoss

__all__ = [
    "CombinedLoss",
    "GreedyLossState",
    "HeatmapLoss",
    "HistogramLoss",
    "LossFunction",
    "LossRegistry",
    "MeanLoss",
    "RegressionLoss",
    "StdDevLoss",
]
