"""Function 2 — geospatial heat-map-aware accuracy loss.

The average minimum distance between the raw pickup locations and the
sample, in the coordinate units of the data (the paper quotes both
meters and normalized distance: 0.25 km ≈ 0.004 normalized). Stems from
visualization-aware sampling (VAS, POIsam): a sample with low average
minimum distance renders a heat map visually close to the raw one.
"""

from __future__ import annotations

from repro.core.loss.distance import AvgMinDistanceLoss


class HeatmapLoss(AvgMinDistanceLoss):
    """2-D average-min-distance loss over (x, y) location attributes."""

    name = "heatmap_loss"

    def __init__(self, x_attr: str, y_attr: str, metric: str = "euclidean"):
        super().__init__((x_attr, y_attr), metric=metric)
