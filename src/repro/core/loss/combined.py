"""Combining multiple accuracy losses into one (extension).

A dashboard typically shows several visuals at once (Figure 1 has
three). Rather than building one cube per visual, a
:class:`CombinedLoss` lets a single cube bound several losses
simultaneously:

- ``mode="max"`` — ``loss = max_i(loss_i / θ_i)`` scaled so the cube's
  threshold is 1.0: every component is then individually bounded by its
  own θ_i (the useful guarantee);
- ``mode="sum"`` — ``loss = Σ_i w_i · loss_i``, a soft trade-off.

Each component keeps its own target attributes; the combined target is
their concatenation (duplicates included, so slicing stays positional).
The combination is algebraic whenever every component is: statistics
and sample summaries are just tuples of the components'.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.loss.base import GreedyLossState, LossFunction
from repro.errors import LossFunctionError


class CombinedLoss(LossFunction):
    """Bound several loss functions with one sampling cube."""

    name = "combined_loss"

    def __init__(
        self,
        components: Sequence[Tuple[float, LossFunction]],
        mode: str = "max",
    ):
        """
        Args:
            components: ``(scale, loss)`` pairs. For ``mode="max"`` the
                scale is the component's own threshold θ_i; for
                ``mode="sum"`` it is the component's weight w_i.
            mode: ``"max"`` or ``"sum"``.
        """
        if not components:
            raise LossFunctionError("combined loss needs at least one component")
        if mode not in ("max", "sum"):
            raise LossFunctionError(f"unknown combination mode: {mode!r}")
        for scale, _ in components:
            if scale <= 0:
                raise LossFunctionError("component scales must be positive")
        self.components = [(float(scale), loss) for scale, loss in components]
        self.mode = mode
        self.target_attrs = tuple(
            attr for _, loss in self.components for attr in loss.target_attrs
        )
        self.target_arity = len(self.target_attrs)
        self._slices: List[slice] = []
        start = 0
        for _, loss in self.components:
            self._slices.append(slice(start, start + loss.target_arity))
            start += loss.target_arity

    # ------------------------------------------------------------------
    def _component_values(self, values: np.ndarray, j: int) -> np.ndarray:
        loss = self.components[j][1]
        if values.ndim == 1:
            return values
        sliced = values[:, self._slices[j]]
        return sliced[:, 0] if loss.target_arity == 1 else sliced

    def _combine(self, losses: Sequence[float]) -> float:
        if self.mode == "max":
            return max(
                loss / scale for (scale, _), loss in zip(self.components, losses)
            )
        return sum(
            scale * loss for (scale, _), loss in zip(self.components, losses)
        )

    def _combine_arrays(self, losses: Sequence[np.ndarray]) -> np.ndarray:
        if self.mode == "max":
            scaled = [arr / scale for (scale, _), arr in zip(self.components, losses)]
            return np.maximum.reduce(scaled)
        scaled = [scale * arr for (scale, _), arr in zip(self.components, losses)]
        return np.add.reduce(scaled)

    # -- direct -----------------------------------------------------------
    def loss(self, raw: np.ndarray, sample: np.ndarray) -> float:
        parts = [
            loss.loss(self._component_values(raw, j), self._component_values(sample, j))
            for j, (_, loss) in enumerate(self.components)
        ]
        return self._combine(parts)

    # -- algebraic ----------------------------------------------------------
    def prepare_sample(self, sample: np.ndarray) -> tuple:
        return tuple(
            loss.prepare_sample(self._component_values(sample, j))
            for j, (_, loss) in enumerate(self.components)
        )

    def stats(self, raw: np.ndarray, sample: np.ndarray) -> tuple:
        return tuple(
            loss.stats(
                self._component_values(raw, j), self._component_values(sample, j)
            )
            for j, (_, loss) in enumerate(self.components)
        )

    def merge_stats(self, left: tuple, right: tuple) -> tuple:
        return tuple(
            loss.merge_stats(l, r)
            for (_, loss), l, r in zip(self.components, left, right)
        )

    def loss_from_stats(self, stats: tuple, sample_summary: tuple) -> float:
        parts = [
            loss.loss_from_stats(s, summary)
            for (_, loss), s, summary in zip(self.components, stats, sample_summary)
        ]
        return self._combine(parts)

    # -- greedy -----------------------------------------------------------
    def greedy_state(self, raw: np.ndarray) -> "CombinedGreedyState":
        return CombinedGreedyState(self, raw)

    # -- representation join ------------------------------------------------
    def cell_aux(self, raw: np.ndarray) -> tuple:
        return tuple(
            loss.cell_aux(self._component_values(raw, j))
            for j, (_, loss) in enumerate(self.components)
        )

    def representation_shortcut(self, stats: tuple, aux: tuple, sample: np.ndarray):
        parts = []
        for j, (_, loss) in enumerate(self.components):
            quick = loss.representation_shortcut(
                stats[j], aux[j], self._component_values(sample, j)
            )
            if quick is None:
                return None
            parts.append(quick)
        return self._combine(parts)

    def representation_lower_bound(self, stats: tuple, aux: tuple, sample: np.ndarray) -> float:
        bounds = [
            loss.representation_lower_bound(
                stats[j], aux[j], self._component_values(sample, j)
            )
            for j, (_, loss) in enumerate(self.components)
        ]
        if self.mode == "max":
            return max(
                b / scale for (scale, _), b in zip(self.components, bounds)
            )
        # For a sum, each true component loss is >= its bound (others >= 0).
        return max(
            scale * b for (scale, _), b in zip(self.components, bounds)
        )


class CombinedGreedyState(GreedyLossState):
    """Drives every component's incremental state in lock step."""

    def __init__(self, combined: CombinedLoss, raw: np.ndarray):
        self._combined = combined
        self._states = [
            loss.greedy_state(combined._component_values(raw, j))
            for j, (_, loss) in enumerate(combined.components)
        ]
        self._empty = len(raw) == 0

    def current_loss(self) -> float:
        if self._empty:
            return 0.0
        return self._combined._combine([s.current_loss() for s in self._states])

    def losses_if_added(self, candidates: np.ndarray) -> np.ndarray:
        candidates = np.asarray(candidates)
        if self._empty:
            return np.zeros(len(candidates))
        parts = [s.losses_if_added(candidates) for s in self._states]
        return self._combined._combine_arrays(parts)

    def add(self, index: int) -> None:
        for state in self._states:
            state.add(index)
