"""Histogram-aware accuracy loss — Function 2 on 1-D data.

Used throughout the paper's attribute-count experiments with the fare
amount attribute, so the distance unit is US dollars ("0.5 dollar"
threshold in Section V-E).
"""

from __future__ import annotations

from repro.core.loss.distance import AvgMinDistanceLoss


class HistogramLoss(AvgMinDistanceLoss):
    """1-D average-min-distance loss (Euclidean on a single attribute)."""

    name = "histogram_loss"

    def __init__(self, attr: str):
        super().__init__((attr,), metric="euclidean")
