"""Shared average-minimum-distance loss machinery (Function 2).

``BEGIN (1/|Raw|) * SUM_x_in_Raw MIN_s_in_Sam losspair(x, s) END``

Used in two instantiations: the 2-D geospatial heat-map loss and the
1-D histogram loss. The per-tuple minimum distance to a *fixed* sample
is a plain per-row derived value, so its SUM is distributive — which is
what lets the dry run treat this visually-motivated loss as algebraic.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.loss.base import (
    GreedyLossState,
    LossFunction,
    as_points,
    pairwise_min_distance,
)

#: Cap on candidate-batch element count per chunk when building the
#: candidate-distance matrix (keeps peak memory bounded).
_CHUNK_ELEMENTS = 4_000_000


class AvgMinDistanceLoss(LossFunction):
    """Average distance from each raw tuple to its nearest sample tuple."""

    name = "avg_min_distance"
    additive_stats = True
    # amd(∪B_i, ∪S_i) = Σ|B_i|·amd_i'(B_i, ∪S) / Σ|B_i| where every
    # per-cell term only improves when more sample points are available,
    # so the union answer stays within θ (see Tabula.query IN support).
    union_safe = True

    def __init__(self, attrs: Tuple[str, ...], metric: str = "euclidean"):
        self.target_attrs = tuple(attrs)
        self.target_arity = len(self.target_attrs)
        self.metric = metric

    # -- direct -----------------------------------------------------------
    def loss(self, raw: np.ndarray, sample: np.ndarray) -> float:
        if len(raw) == 0:
            return 0.0
        if len(sample) == 0:
            return math.inf
        return float(np.mean(pairwise_min_distance(raw, sample, self.metric)))

    # -- algebraic ----------------------------------------------------------
    def prepare_sample(self, sample: np.ndarray) -> tuple:
        return (float(len(sample)),)

    def stats(self, raw: np.ndarray, sample: np.ndarray) -> Tuple[float, float]:
        if len(raw) == 0:
            return (0.0, 0.0)
        if len(sample) == 0:
            return (float(len(raw)), math.inf)
        dmin = pairwise_min_distance(raw, sample, self.metric)
        return (float(len(raw)), float(np.sum(dmin)))

    def merge_stats(self, left: tuple, right: tuple) -> tuple:
        return (left[0] + right[0], left[1] + right[1])

    def loss_from_stats(self, stats: tuple, sample_summary: tuple) -> float:
        count, dist_sum = stats
        if count == 0:
            return 0.0
        if sample_summary[0] == 0:
            return math.inf
        return dist_sum / count

    # -- greedy ---------------------------------------------------------------
    def greedy_state(self, raw: np.ndarray) -> "AvgMinDistanceGreedyState":
        return AvgMinDistanceGreedyState(raw, self.metric)

    def candidate_pool_filter(self, raw: np.ndarray):
        """Duplicate points contribute identical coverage: keep one each.

        A sample of the distinct points can reach loss 0, so the filter
        never makes θ unreachable.
        """
        pts = as_points(raw)
        _, first = np.unique(pts, axis=0, return_index=True)
        if len(first) == len(pts):
            return None
        return np.sort(first)

    # -- representation join ------------------------------------------------
    def cell_aux(self, raw: np.ndarray) -> tuple:
        """(centroid, mean distance of cell points to centroid)."""
        pts = as_points(raw)
        if len(pts) == 0:
            return (np.zeros(max(self.target_arity, 1)), 0.0)
        centroid = pts.mean(axis=0)
        diff = pts - centroid
        if self.metric == "euclidean":
            spread = float(np.mean(np.sqrt(np.sum(diff * diff, axis=1))))
        else:
            spread = float(np.mean(np.sum(np.abs(diff), axis=1)))
        return (centroid, spread)

    def representation_lower_bound(
        self, stats: tuple, aux: tuple, sample: np.ndarray
    ) -> float:
        """Triangle-inequality bound: amd(B, S) ≥ d(centroid_B, S) − spread_B.

        For every x in B and s in S, d(x, s) ≥ d(c, s) − d(x, c); taking
        the min over s and averaging over x gives the bound. Pairs whose
        bound already exceeds θ are skipped without touching raw data.
        """
        if len(sample) == 0:
            return math.inf
        centroid, spread = aux
        dist_to_sample = float(
            np.min(pairwise_min_distance(centroid.reshape(1, -1), sample, self.metric))
        )
        return max(0.0, dist_to_sample - spread)

    def representation_prepare(self, stats_list, aux_list):
        centroids = np.vstack([np.atleast_1d(a[0]) for a in aux_list])
        spreads = np.asarray([a[1] for a in aux_list])
        return (centroids, spreads)

    def representation_lower_bound_batch(self, prepared, sample: np.ndarray):
        centroids, spreads = prepared
        if len(sample) == 0:
            return np.full(len(spreads), math.inf)
        dmin = pairwise_min_distance(centroids, sample, self.metric)
        return np.maximum(0.0, dmin - spreads)

    def representation_accept_prepare(self, cell_samples, achieved_losses):
        """Concatenate every cell's local sample into one point bank.

        Soundness of the resulting accept: for x in cell B with nearest
        own-sample point p_x, ``min_s d(x,s) <= d(x,p_x) + min_s d(p_x,s)``;
        averaging gives ``amd(B,S) <= amd(B,samB) + max_p min_s d(p,S)``.
        """
        points = []
        segments = []
        for j, sample in enumerate(cell_samples):
            pts = as_points(sample)
            points.append(pts)
            segments.append(np.full(len(pts), j, dtype=np.int64))
        if not points:
            return None
        return (
            np.vstack(points),
            np.concatenate(segments),
            np.asarray(achieved_losses, dtype=float),
            len(cell_samples),
        )

    def representation_upper_bound_batch(self, prepared, sample: np.ndarray):
        if prepared is None:
            return None
        bank, segments, achieved, n_cells = prepared
        if len(sample) == 0:
            return np.full(n_cells, math.inf)
        dmin = pairwise_min_distance(bank, sample, self.metric)
        worst = np.zeros(n_cells)
        np.maximum.at(worst, segments, dmin)
        # Cells with an empty own-sample get an infinite (useless) bound.
        has_points = np.zeros(n_cells, dtype=bool)
        has_points[segments] = True
        return np.where(has_points, achieved + worst, math.inf)


class AvgMinDistanceGreedyState(GreedyLossState):
    """Maintains per-raw-point nearest-sample distances (``d_min``).

    Adding sample point *s* turns the loss into
    ``mean(min(d_min, dist(raw, s)))`` — one vectorized pass per
    candidate, the ``O(k·N)`` greedy round of the paper, and the reason
    lazy-forward pays off.
    """

    def __init__(self, raw: np.ndarray, metric: str):
        self._points = as_points(raw)
        self._metric = metric
        self._n = len(self._points)
        self._dmin = np.full(self._n, np.inf)

    def current_loss(self) -> float:
        if self._n == 0:
            return 0.0
        return float(np.mean(self._dmin))

    def _distances_to(self, candidates: np.ndarray) -> np.ndarray:
        """Distance matrix ``(n_raw, n_candidates)`` to candidate points."""
        cand_pts = self._points[candidates]
        diff = self._points[:, None, :] - cand_pts[None, :, :]
        if self._metric == "euclidean":
            return np.sqrt(np.sum(diff * diff, axis=2))
        return np.sum(np.abs(diff), axis=2)

    def losses_if_added(self, candidates: np.ndarray) -> np.ndarray:
        candidates = np.asarray(candidates)
        if self._n == 0:
            return np.zeros(len(candidates))
        out = np.empty(len(candidates))
        step = max(1, _CHUNK_ELEMENTS // max(self._n, 1))
        for start in range(0, len(candidates), step):
            chunk = candidates[start:start + step]
            dists = self._distances_to(chunk)
            improved = np.minimum(self._dmin[:, None], dists)
            out[start:start + len(chunk)] = improved.mean(axis=0)
        return out

    def add(self, index: int) -> None:
        if self._n == 0:
            return
        dists = self._distances_to(np.asarray([index]))[:, 0]
        np.minimum(self._dmin, dists, out=self._dmin)
