"""Function 3 — linear-regression angle difference.

``BEGIN ABS(angle(Raw) - angle(Sam)) END``

Given n tuples with 2-D attributes (x_i, y_i), the slope is the
least-squares estimator of the paper:

    slope = (n·Σ(x·y) − Σx·Σy) / (n·Σx² − (Σx)²)

converted to an angle in degrees. In the running example x is the fare
amount and y the tip amount. Degenerate populations (fewer than two
points, or zero x-variance, where the least-squares slope is undefined)
are assigned angle 0° — a documented substitution; the paper leaves the
case unspecified.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.loss.base import GreedyLossState, LossFunction


def regression_slope(n: float, sx: float, sy: float, sxy: float, sxx: float) -> float:
    """Least-squares slope from sufficient statistics; 0.0 when degenerate."""
    denominator = n * sxx - sx * sx
    if n < 2 or abs(denominator) < 1e-12:
        return 0.0
    return (n * sxy - sx * sy) / denominator


def regression_angle(n: float, sx: float, sy: float, sxy: float, sxx: float) -> float:
    """Slope converted to degrees in (-90, 90)."""
    return math.degrees(math.atan(regression_slope(n, sx, sy, sxy, sxx)))


def _sufficient(values: np.ndarray) -> Tuple[float, float, float, float, float]:
    """(n, Σx, Σy, Σxy, Σx²) of an ``(n, 2)`` value array."""
    if len(values) == 0:
        return (0.0, 0.0, 0.0, 0.0, 0.0)
    x = values[:, 0]
    y = values[:, 1]
    return (
        float(len(values)),
        float(np.sum(x)),
        float(np.sum(y)),
        float(np.sum(x * y)),
        float(np.sum(x * x)),
    )


class RegressionLoss(LossFunction):
    """Absolute angle difference between raw and sample regression lines."""

    name = "regression_loss"
    additive_stats = True
    target_arity = 2

    def __init__(self, x_attr: str, y_attr: str):
        self.target_attrs = (x_attr, y_attr)

    # -- direct -----------------------------------------------------------
    def loss(self, raw: np.ndarray, sample: np.ndarray) -> float:
        if len(raw) == 0:
            return 0.0
        if len(sample) == 0:
            return math.inf
        return abs(regression_angle(*_sufficient(raw)) - regression_angle(*_sufficient(sample)))

    # -- algebraic ----------------------------------------------------------
    def prepare_sample(self, sample: np.ndarray) -> tuple:
        if len(sample) == 0:
            return (math.nan,)
        return (regression_angle(*_sufficient(sample)),)

    def stats(self, raw: np.ndarray, sample: np.ndarray) -> tuple:
        return _sufficient(raw)

    def merge_stats(self, left: tuple, right: tuple) -> tuple:
        return tuple(a + b for a, b in zip(left, right))

    def loss_from_stats(self, stats: tuple, sample_summary: tuple) -> float:
        if stats[0] == 0:
            return 0.0
        sample_angle = sample_summary[0]
        if math.isnan(sample_angle):
            return math.inf
        return abs(regression_angle(*stats) - sample_angle)

    # -- greedy -----------------------------------------------------------
    def greedy_state(self, raw: np.ndarray) -> "RegressionGreedyState":
        return RegressionGreedyState(np.asarray(raw, dtype=float))

    # -- representation join ------------------------------------------------
    def representation_shortcut(self, stats: tuple, aux: tuple, sample: np.ndarray) -> float:
        """The angle loss is exactly computable from the five sums."""
        return self.loss_from_stats(stats, self.prepare_sample(sample))

    def representation_prepare(self, stats_list, aux_list):
        counts = np.asarray([s[0] for s in stats_list])
        angles = np.asarray([regression_angle(*s) for s in stats_list])
        return (counts, angles)

    def representation_shortcut_batch(self, prepared, sample: np.ndarray):
        counts, angles = prepared
        if len(sample) == 0:
            return np.full(len(counts), math.inf)
        sam_angle = regression_angle(*_sufficient(sample))
        losses = np.abs(angles - sam_angle)
        return np.where(counts == 0, 0.0, losses)


class RegressionGreedyState(GreedyLossState):
    """O(1)-per-candidate incremental evaluator for the regression loss."""

    def __init__(self, raw: np.ndarray):
        if raw.ndim != 2 or (len(raw) and raw.shape[1] != 2):
            raise ValueError("regression loss expects (n, 2) values")
        self._x = raw[:, 0] if len(raw) else np.empty(0)
        self._y = raw[:, 1] if len(raw) else np.empty(0)
        self._raw_angle = regression_angle(*_sufficient(raw))
        self._raw_empty = len(raw) == 0
        self._n = 0.0
        self._sx = 0.0
        self._sy = 0.0
        self._sxy = 0.0
        self._sxx = 0.0

    def current_loss(self) -> float:
        if self._raw_empty:
            return 0.0
        if self._n == 0:
            return math.inf
        angle = regression_angle(self._n, self._sx, self._sy, self._sxy, self._sxx)
        return abs(self._raw_angle - angle)

    def losses_if_added(self, candidates: np.ndarray) -> np.ndarray:
        candidates = np.asarray(candidates)
        if self._raw_empty:
            return np.zeros(len(candidates))
        x = self._x[candidates]
        y = self._y[candidates]
        n = self._n + 1.0
        sx = self._sx + x
        sy = self._sy + y
        sxy = self._sxy + x * y
        sxx = self._sxx + x * x
        denominator = n * sxx - sx * sx
        with np.errstate(divide="ignore", invalid="ignore"):
            slopes = np.where(
                (n < 2) | (np.abs(denominator) < 1e-12),
                0.0,
                (n * sxy - sx * sy) / np.where(denominator == 0, 1.0, denominator),
            )
        angles = np.degrees(np.arctan(slopes))
        return np.abs(self._raw_angle - angles)

    def add(self, index: int) -> None:
        x = float(self._x[index])
        y = float(self._y[index])
        self._n += 1.0
        self._sx += x
        self._sy += y
        self._sxy += x * y
        self._sxx += x * x
