"""The loss-function contract Tabula builds on.

Three views of the same quantity ``loss(Raw, Sam)``:

1. **Direct** — :meth:`LossFunction.loss` evaluates on materialized
   value arrays; this is the semantic ground truth.
2. **Algebraic** — :meth:`LossFunction.stats` /
   :meth:`LossFunction.merge_stats` / :meth:`LossFunction.loss_from_stats`
   express the loss through distributive sufficient statistics *with
   respect to a fixed sample*. The dry run computes ``stats`` once per
   base-cuboid cell against the global sample and merges upward, so
   every cube cell's loss is obtained from a single raw-table pass.
   The invariant (asserted by property tests) is::

       loss(raw, sam) == loss_from_stats(stats(raw, sam), prepare_sample(sam))

   and ``stats`` over a concatenation equals ``merge_stats`` of the
   parts.
3. **Greedy** — :meth:`LossFunction.greedy_state` returns an incremental
   evaluator used by the Algorithm 1 sampler: "what would the loss be if
   tuple *i* joined the sample?", answerable without re-scanning.

Loss values compare against the user threshold θ; ``math.inf`` is the
loss of an empty sample (matching Algorithm 1's initialisation).
"""

from __future__ import annotations

import abc
import math
from typing import Tuple

import numpy as np

from repro.engine.table import Table
from repro.errors import LossFunctionError


class GreedyLossState(abc.ABC):
    """Incremental loss evaluator over a fixed raw dataset.

    The sampler owns candidate bookkeeping; the state only answers loss
    queries and accepts committed additions. Indices refer to rows of
    the raw value array the state was built from.
    """

    @abc.abstractmethod
    def current_loss(self) -> float:
        """Loss of the current (possibly empty) sample."""

    @abc.abstractmethod
    def losses_if_added(self, candidates: np.ndarray) -> np.ndarray:
        """Loss after hypothetically adding each candidate index alone."""

    @abc.abstractmethod
    def add(self, index: int) -> None:
        """Commit raw row ``index`` into the sample."""

    def loss_if_added(self, index: int) -> float:
        """Scalar convenience wrapper over :meth:`losses_if_added`."""
        return float(self.losses_if_added(np.asarray([index]))[0])


class LossFunction(abc.ABC):
    """A user-defined accuracy loss function (Section II)."""

    #: Registry / display name.
    name: str = "loss"
    #: Number of target-attribute columns the loss consumes (1 or 2).
    target_arity: int = 1
    #: Target attribute names, set at construction.
    target_attrs: Tuple[str, ...] = ()
    #: Whether :meth:`merge_stats` is plain componentwise addition over a
    #: flat tuple of floats. When true, the dry run derives cuboids with
    #: vectorized ``np.add.at`` accumulation instead of a Python merge
    #: loop — a large win for many-attribute cubes. All built-in losses
    #: are additive; compiled/combined losses keep the generic path.
    additive_stats: bool = False
    #: Whether a union of θ-bounded per-cell samples is itself θ-bounded
    #: for the union of the cells. True for the average-min-distance
    #: family (the union's loss is a population-weighted mean of per-cell
    #: losses, hence <= max <= θ); false in general (a union of means is
    #: not bounded by the per-cell mean errors).
    union_safe: bool = False

    # ------------------------------------------------------------------
    # Value extraction
    # ------------------------------------------------------------------
    def extract(self, table: Table) -> np.ndarray:
        """Pull the target-attribute values out of ``table``.

        Returns a float array of shape ``(n,)`` for 1-D losses or
        ``(n, 2)`` for spatial/regression losses.
        """
        if len(self.target_attrs) != self.target_arity:
            raise LossFunctionError(
                f"{self.name}: expected {self.target_arity} target attribute(s), "
                f"got {self.target_attrs!r}"
            )
        for attr in self.target_attrs:
            if table.column(attr).dictionary is not None:
                raise LossFunctionError(
                    f"{self.name}: target attribute {attr!r} is categorical; "
                    "losses measure numeric/spatial values (computing on "
                    "dictionary codes would be silently meaningless)"
                )
        # asarray instead of astype: float64 columns (the common case)
        # pass through as views — no copy per extract call, which matters
        # when the table is a shared-memory segment in a build worker.
        columns = [np.asarray(table.column(a).data, dtype=float) for a in self.target_attrs]
        if self.target_arity == 1:
            return columns[0]
        return np.column_stack(columns)

    # ------------------------------------------------------------------
    # Direct evaluation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def loss(self, raw: np.ndarray, sample: np.ndarray) -> float:
        """The accuracy loss of using ``sample`` in place of ``raw``."""

    def loss_tables(self, raw: Table, sample: Table) -> float:
        """Convenience: evaluate on tables rather than value arrays."""
        return self.loss(self.extract(raw), self.extract(sample))

    # ------------------------------------------------------------------
    # Algebraic decomposition (dry-run support)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def prepare_sample(self, sample: np.ndarray) -> tuple:
        """Pre-digest the fixed sample (e.g. its mean or its angle)."""

    @abc.abstractmethod
    def stats(self, raw: np.ndarray, sample: np.ndarray) -> tuple:
        """Distributive sufficient statistics of ``raw`` w.r.t. ``sample``."""

    @abc.abstractmethod
    def merge_stats(self, left: tuple, right: tuple) -> tuple:
        """Combine statistics of two disjoint raw partitions."""

    @abc.abstractmethod
    def loss_from_stats(self, stats: tuple, sample_summary: tuple) -> float:
        """Reconstruct the loss from merged statistics."""

    def empty_stats(self) -> tuple:
        """Statistics of an empty raw partition (identity for merge)."""
        return self.stats(self._empty_values(), self._empty_values())

    def _empty_values(self) -> np.ndarray:
        shape = (0,) if self.target_arity == 1 else (0, self.target_arity)
        return np.empty(shape, dtype=float)

    # ------------------------------------------------------------------
    # Greedy sampling support (Algorithm 1)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def greedy_state(self, raw: np.ndarray) -> GreedyLossState:
        """An incremental evaluator over ``raw`` for the greedy sampler."""

    def candidate_pool_filter(self, raw: np.ndarray):
        """Optional candidate dedup for the greedy sampler.

        Returns indices of a subset of ``raw`` that is sufficient to
        reach any achievable loss (or ``None`` for "use everything").
        Interchangeable candidates (exact duplicates under the loss)
        are the pathological case for lazy-forward — their gains tie
        forever — so losses that can identify them should.
        """
        return None

    # ------------------------------------------------------------------
    # Representation-join acceleration (Section IV)
    # ------------------------------------------------------------------
    # The SamGraph join checks ``loss(cellB.raw, samA) <= θ`` for many
    # (cell, sample) pairs. The paper notes any similarity-join
    # accelerator may be used and that a non-exhaustive SamGraph stays
    # correct. These hooks let a loss either answer the check exactly
    # from cached statistics (mean, regression) or prune pairs via a
    # cheap lower bound (the distance losses); the defaults fall back to
    # the exact evaluation.

    def cell_aux(self, raw: np.ndarray) -> tuple:
        """Cheap per-cell auxiliaries cached for the representation join."""
        return ()

    def representation_shortcut(
        self, stats: tuple, aux: tuple, sample: np.ndarray
    ) -> float:
        """Exact ``loss(cell, sample)`` from statistics, or ``None``."""
        return None

    def representation_lower_bound(
        self, stats: tuple, aux: tuple, sample: np.ndarray
    ) -> float:
        """A lower bound on ``loss(cell, sample)``; ``-inf`` = no bound."""
        return -math.inf

    # Batch (vectorized) variants: the SamGraph join asks the same
    # question for every cell against each sample, so losses that can
    # answer column-wise avoid a Python-level pair loop entirely.

    def representation_prepare(self, stats_list, aux_list):
        """Pre-digest all cells' stats/aux for the batch hooks (or None)."""
        return None

    def representation_shortcut_batch(
        self, prepared, sample: np.ndarray
    ):
        """Exact per-cell losses vs ``sample`` as an array, or ``None``."""
        return None

    def representation_lower_bound_batch(
        self, prepared, sample: np.ndarray
    ):
        """Per-cell lower bounds vs ``sample`` as an array, or ``None``."""
        return None

    def representation_accept_prepare(self, cell_samples, achieved_losses):
        """Pre-digest cells' own local samples for upper-bound accepts.

        Args:
            cell_samples: each cell's materialized local-sample values.
            achieved_losses: each local sample's achieved loss.

        Returns an object for :meth:`representation_upper_bound_batch`,
        or ``None`` when the loss has no sound upper bound.
        """
        return None

    def representation_upper_bound_batch(self, prepared, sample: np.ndarray):
        """Per-cell *upper* bounds on ``loss(cell, sample)`` (or None).

        An upper bound ≤ θ proves the representation edge without
        touching raw data — the sound-accept counterpart of the
        lower-bound prune.
        """
        return None

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        attrs = ", ".join(self.target_attrs)
        return f"{type(self).__name__}({attrs})"


def as_points(values: np.ndarray) -> np.ndarray:
    """Normalize a value array to 2-D shape ``(n, d)`` for distance math."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        return arr.reshape(-1, 1)
    return arr


try:  # scipy accelerates nearest-neighbor queries; plain numpy suffices.
    from scipy.spatial import cKDTree as _KDTree
except ImportError:  # pragma: no cover - scipy is normally available
    _KDTree = None

#: Below this problem size the brute-force matrix beats tree construction.
_KDTREE_MIN_ELEMENTS = 50_000


def pairwise_min_distance(
    raw: np.ndarray, sample: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """For every raw point, its distance to the nearest sample point.

    ``metric`` is ``euclidean`` or ``manhattan`` — the two ``losspair``
    instantiations the paper names. Returns ``inf`` everywhere when the
    sample is empty. Large instances use a k-d tree (O(n log m));
    small ones a vectorized distance matrix.
    """
    if metric not in ("euclidean", "manhattan"):
        raise LossFunctionError(f"unsupported distance metric: {metric!r}")
    raw_pts = as_points(raw)
    sam_pts = as_points(sample)
    if len(sam_pts) == 0:
        return np.full(len(raw_pts), np.inf)
    if len(raw_pts) == 0:
        return np.empty(0, dtype=float)
    if _KDTree is not None and len(raw_pts) * len(sam_pts) >= _KDTREE_MIN_ELEMENTS:
        tree = _KDTree(sam_pts)
        distances, _ = tree.query(raw_pts, k=1, p=2 if metric == "euclidean" else 1)
        return np.asarray(distances, dtype=float)
    diff = raw_pts[:, None, :] - sam_pts[None, :, :]
    if metric == "euclidean":
        dists = np.sqrt(np.sum(diff * diff, axis=2))
    else:
        dists = np.sum(np.abs(diff), axis=2)
    return dists.min(axis=1)
