"""Compile ``CREATE AGGREGATE ... BEGIN expr END`` into a loss function.

The body is a scalar expression over aggregate calls (Section II).
Compilation enforces the paper's restriction — every aggregate involved
must be distributive or algebraic — and produces a
:class:`CompiledLoss` that supports all three evaluation modes of the
:class:`~repro.core.loss.base.LossFunction` contract: direct, algebraic
(dry run) and greedy (Algorithm 1).

Aggregate vocabulary of the dialect:

- every algebraic-or-better engine aggregate — ``AVG``, ``SUM``,
  ``COUNT``, ``MIN``, ``MAX``, ``STD_DEV``, ``DISTINCT``, ``TOPK`` —
  applied to one dataset parameter (``AVG(Raw)``);
- ``ANGLE(dataset)`` — the regression-line angle of Function 3
  (requires two target attributes);
- ``AVG_MIN_DIST(Raw, Sam)`` / ``AVG_MIN_DIST_MANHATTAN(Raw, Sam)`` —
  the visualization-aware loss of Function 2;
- ``MEDIAN`` (holistic) is recognized and **rejected** with
  :class:`~repro.errors.NotAlgebraicError`.

Scalar functions: ``ABS``, ``SQRT``, ``LOG``, ``EXP``, ``POW``.

Performance note: compiled losses take the *generic* paths everywhere —
the Python merge loop in the dry run and the scalar (pair-at-a-time)
representation join. They are correct for any algebraic body but
slower than the hand-vectorized built-ins; prefer the built-in
equivalents (``mean_loss``, ``heatmap_loss``, ``regression_loss``,
``histogram_loss``, ``stddev_loss``) when one matches.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.analyzer import LossAnalysisResult, analyze_loss
from repro.analysis.loss_passes import CROSS_AGGS as _CROSS_AGGS
from repro.core.loss.base import GreedyLossState, LossFunction, pairwise_min_distance
from repro.core.loss.distance import AvgMinDistanceGreedyState
from repro.core.loss.regression import regression_angle
from repro.core.loss.registry import LossSpec
from repro.engine import aggregates as agg
from repro.engine.sql import ast
from repro.errors import LossFunctionError, NotAlgebraicError

_SCALAR_FUNCS = {
    "ABS": lambda a: abs(a),
    "SQRT": lambda a: math.sqrt(a) if a >= 0 else math.nan,
    "LOG": lambda a: math.log(a) if a > 0 else math.nan,
    "EXP": lambda a: math.exp(a),
    "POW": lambda a, b: math.pow(a, b),
}


def compile_loss(stmt: ast.CreateAggregate, source: Optional[str] = None) -> "CompiledLossSpec":
    """Validate and compile a parsed CREATE AGGREGATE statement.

    The statement first goes through the static analyzer
    (:func:`repro.analysis.analyze_loss`) as a mandatory gate: any
    error-severity diagnostic aborts compilation with the matching
    legacy exception (:class:`~repro.errors.NotAlgebraicError` for a
    holistic aggregate, :class:`~repro.errors.LossFunctionError`
    otherwise), carrying the offending span, the loss name and the full
    diagnostic list. Warnings and notes ride along on the returned
    spec's ``diagnostics`` for the session/linter to surface.
    """
    analysis = analyze_loss(stmt, source=source)
    errors = analysis.errors()
    if errors:
        first = errors[0]
        exc_type = NotAlgebraicError if first.code == "TAB101" else LossFunctionError
        raise exc_type(
            first.message,
            span=first.span,
            loss_name=stmt.name,
            diagnostics=analysis.diagnostics,
        )
    raw_param, sam_param = stmt.params
    return CompiledLossSpec(
        stmt.name, analysis.arity, stmt.body, raw_param, sam_param, analysis=analysis
    )


def _collect_agg_calls(expr: ast.ScalarExpr) -> List[ast.AggCall]:
    calls: List[ast.AggCall] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.AggCall):
            calls.append(node)
        elif isinstance(node, ast.FuncCall):
            stack.extend(node.args)
        elif isinstance(node, ast.BinOp):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, ast.UnaryOp):
            stack.append(node.operand)
    return calls


class CompiledLossSpec(LossSpec):
    """An unbound compiled loss; binds to concrete target attributes.

    Carries the analyzer's verdict: ``diagnostics`` (warnings/notes that
    survived the error gate), ``sufficient_stats`` (the inferred
    per-cell state layout) and ``uses_angle``. ``exact_arity`` is False
    because compiled losses accept *extra* target attributes beyond
    their minimum arity.
    """

    exact_arity = False

    def __init__(
        self,
        name: str,
        arity: int,
        body: ast.ScalarExpr,
        raw_param: str,
        sam_param: str,
        analysis: Optional["LossAnalysisResult"] = None,
    ):
        self.name = name
        self.arity = arity
        self.body = body
        self.raw_param = raw_param
        self.sam_param = sam_param
        self.analysis = analysis
        self.diagnostics = analysis.diagnostics if analysis is not None else ()
        self.sufficient_stats = analysis.sufficient_stats if analysis is not None else None
        self.uses_angle = analysis.uses_angle if analysis is not None else False

    def bind(self, target_attrs: Tuple[str, ...]) -> "CompiledLoss":
        if len(target_attrs) < self.arity:
            raise LossFunctionError(
                f"loss {self.name!r} needs at least {self.arity} target attribute(s), "
                f"got {target_attrs!r}"
            )
        return CompiledLoss(self, tuple(target_attrs))


class CompiledLoss(LossFunction):
    """A loss function materialized from a CREATE AGGREGATE body.

    The algebraic state is a tuple with one component per distinct
    aggregate call in the body: engine-aggregate states for raw-side
    calls, ``(n, Σx, Σy, Σxy, Σx²)`` for ``ANGLE(Raw)`` and
    ``(count, Σ min-dist)`` for the cross aggregates. Sample-side calls
    are folded into the sample summary.
    """

    def __init__(self, spec: CompiledLossSpec, target_attrs: Tuple[str, ...]):
        self.name = spec.name
        self.target_attrs = target_attrs
        self.target_arity = len(target_attrs)
        self._body = spec.body
        self._raw_param = spec.raw_param
        self._sam_param = spec.sam_param
        calls = _collect_agg_calls(spec.body)
        # Preserve first-mention order, deduplicated.
        seen: Dict[ast.AggCall, None] = {}
        for call in calls:
            seen.setdefault(call)
        self._raw_calls = [c for c in seen if self._side(c) == "raw"]
        self._sam_calls = [c for c in seen if self._side(c) == "sam"]
        self._cross_calls = [c for c in seen if self._side(c) == "cross"]

    # ------------------------------------------------------------------
    def _side(self, call: ast.AggCall) -> str:
        if call.func in _CROSS_AGGS:
            return "cross"
        return "raw" if call.args[0] == self._raw_param else "sam"

    def _primary(self, values: np.ndarray) -> np.ndarray:
        """First target attribute as a 1-D array (the AVG/SUM input)."""
        return values if values.ndim == 1 else values[:, 0]

    def _agg_value(self, call: ast.AggCall, values: np.ndarray, other: np.ndarray = None) -> float:
        if call.func in _CROSS_AGGS:
            if len(values) == 0:
                return 0.0
            if other is None or len(other) == 0:
                return math.inf
            dmin = pairwise_min_distance(values, other, _CROSS_AGGS[call.func])
            return float(np.mean(dmin))
        if call.func == "ANGLE":
            pts = values if values.ndim == 2 else values.reshape(-1, 1)
            if pts.shape[1] < 2 or len(pts) == 0:
                return 0.0
            x, y = pts[:, 0], pts[:, 1]
            return regression_angle(
                float(len(pts)), float(x.sum()), float(y.sum()),
                float((x * y).sum()), float((x * x).sum()),
            )
        engine_agg = agg.resolve(call.func)
        data = self._primary(values)
        if len(data) == 0:
            return math.nan
        return engine_agg(data)

    def _evaluate(self, env: Dict[ast.AggCall, float]) -> float:
        return _eval_expr(self._body, env)

    # -- direct -----------------------------------------------------------
    def loss(self, raw: np.ndarray, sample: np.ndarray) -> float:
        if len(raw) == 0:
            return 0.0
        if len(sample) == 0:
            return math.inf
        env: Dict[ast.AggCall, float] = {}
        for call in self._raw_calls:
            env[call] = self._agg_value(call, raw)
        for call in self._sam_calls:
            env[call] = self._agg_value(call, sample)
        for call in self._cross_calls:
            env[call] = self._agg_value(call, raw, sample)
        return self._evaluate(env)

    # -- algebraic ----------------------------------------------------------
    def prepare_sample(self, sample: np.ndarray) -> tuple:
        values = tuple(self._agg_value(call, sample) for call in self._sam_calls)
        return (float(len(sample)),) + values

    def stats(self, raw: np.ndarray, sample: np.ndarray) -> tuple:
        parts: List[tuple] = [(float(len(raw)),)]
        data = self._primary(raw)
        for call in self._raw_calls:
            if call.func == "ANGLE":
                pts = raw if raw.ndim == 2 else raw.reshape(-1, 1)
                if len(pts) == 0:
                    parts.append((0.0, 0.0, 0.0, 0.0, 0.0))
                else:
                    x, y = pts[:, 0], pts[:, 1]
                    parts.append((
                        float(len(pts)), float(x.sum()), float(y.sum()),
                        float((x * y).sum()), float((x * x).sum()),
                    ))
            else:
                parts.append(agg.resolve(call.func).init_state(data))
        for call in self._cross_calls:
            if len(raw) == 0:
                parts.append((0.0, 0.0))
            elif len(sample) == 0:
                parts.append((float(len(raw)), math.inf))
            else:
                dmin = pairwise_min_distance(raw, sample, _CROSS_AGGS[call.func])
                parts.append((float(len(raw)), float(np.sum(dmin))))
        return tuple(parts)

    def merge_stats(self, left: tuple, right: tuple) -> tuple:
        merged: List[tuple] = [(left[0][0] + right[0][0],)]
        pos = 1
        for call in self._raw_calls:
            a, b = left[pos], right[pos]
            if call.func == "ANGLE":
                merged.append(tuple(u + v for u, v in zip(a, b)))
            else:
                merged.append(agg.resolve(call.func).merge(a, b))
            pos += 1
        for _ in self._cross_calls:
            a, b = left[pos], right[pos]
            merged.append((a[0] + b[0], a[1] + b[1]))
            pos += 1
        return tuple(merged)

    def loss_from_stats(self, stats: tuple, sample_summary: tuple) -> float:
        raw_count = stats[0][0]
        if raw_count == 0:
            return 0.0
        sam_count = sample_summary[0]
        if sam_count == 0:
            return math.inf
        env: Dict[ast.AggCall, float] = {}
        pos = 1
        for call in self._raw_calls:
            state = stats[pos]
            if call.func == "ANGLE":
                env[call] = regression_angle(*state)
            else:
                env[call] = agg.resolve(call.func).finalize(state)
            pos += 1
        for call in self._cross_calls:
            count, dist_sum = stats[pos]
            env[call] = dist_sum / count if count else 0.0
            pos += 1
        for j, call in enumerate(self._sam_calls):
            env[call] = sample_summary[1 + j]
        return self._evaluate(env)

    # -- greedy -----------------------------------------------------------
    def greedy_state(self, raw: np.ndarray) -> "CompiledGreedyState":
        return CompiledGreedyState(self, np.asarray(raw, dtype=float))


class CompiledGreedyState(GreedyLossState):
    """Generic incremental evaluator for compiled losses.

    Sample-side engine aggregates update in O(1) per candidate via a
    state merge; cross aggregates reuse the d_min machinery of the
    built-in distance loss. This path favours generality over raw speed
    — the built-in losses keep their hand-vectorized states.
    """

    def __init__(self, loss: CompiledLoss, raw: np.ndarray):
        self._loss = loss
        self._raw = raw
        self._n_raw = len(raw)
        self._raw_env: Dict[ast.AggCall, float] = {
            call: loss._agg_value(call, raw) for call in loss._raw_calls
        }
        primary = loss._primary(raw)
        self._primary = primary
        self._points = raw if raw.ndim == 2 else raw.reshape(-1, 1)
        self._sam_states: Dict[ast.AggCall, tuple] = {}
        self._sam_aggs: Dict[ast.AggCall, agg.AggregateFunction] = {}
        self._angle_state: Dict[ast.AggCall, tuple] = {}
        for call in loss._sam_calls:
            if call.func == "ANGLE":
                self._angle_state[call] = (0.0, 0.0, 0.0, 0.0, 0.0)
            else:
                engine_agg = agg.resolve(call.func)
                self._sam_aggs[call] = engine_agg
                self._sam_states[call] = engine_agg.init_state(np.empty(0))
        self._cross_states: Dict[ast.AggCall, AvgMinDistanceGreedyState] = {
            call: AvgMinDistanceGreedyState(raw, _CROSS_AGGS[call.func])
            for call in loss._cross_calls
        }
        self._count = 0

    def _env_for(self, index: int = -1) -> Dict[ast.AggCall, float]:
        """Aggregate environment; ``index >= 0`` simulates adding that row."""
        env = dict(self._raw_env)
        for call in self._loss._sam_calls:
            if call.func == "ANGLE":
                n, sx, sy, sxy, sxx = self._angle_state[call]
                if index >= 0:
                    x, y = self._points[index, 0], (
                        self._points[index, 1] if self._points.shape[1] > 1 else 0.0
                    )
                    n, sx, sy, sxy, sxx = n + 1, sx + x, sy + y, sxy + x * y, sxx + x * x
                env[call] = regression_angle(n, sx, sy, sxy, sxx)
            else:
                engine_agg = self._sam_aggs[call]
                state = self._sam_states[call]
                if index >= 0:
                    state = engine_agg.merge(
                        state, engine_agg.init_state(self._primary[index:index + 1])
                    )
                env[call] = engine_agg.finalize(state)
        for call, cross in self._cross_states.items():
            if index >= 0:
                env[call] = float(cross.losses_if_added(np.asarray([index]))[0])
            else:
                env[call] = cross.current_loss()
        return env

    def current_loss(self) -> float:
        if self._n_raw == 0:
            return 0.0
        if self._count == 0:
            return math.inf
        return self._loss._evaluate(self._env_for())

    def losses_if_added(self, candidates: np.ndarray) -> np.ndarray:
        candidates = np.asarray(candidates)
        if self._n_raw == 0:
            return np.zeros(len(candidates))
        return np.asarray(
            [self._loss._evaluate(self._env_for(int(i))) for i in candidates]
        )

    def add(self, index: int) -> None:
        for call in self._loss._sam_calls:
            if call.func == "ANGLE":
                n, sx, sy, sxy, sxx = self._angle_state[call]
                x = self._points[index, 0]
                y = self._points[index, 1] if self._points.shape[1] > 1 else 0.0
                self._angle_state[call] = (n + 1, sx + x, sy + y, sxy + x * y, sxx + x * x)
            else:
                engine_agg = self._sam_aggs[call]
                self._sam_states[call] = engine_agg.merge(
                    self._sam_states[call],
                    engine_agg.init_state(self._primary[index:index + 1]),
                )
        for cross in self._cross_states.values():
            cross.add(index)
        self._count += 1


def _eval_expr(expr: ast.ScalarExpr, env: Dict[ast.AggCall, float]) -> float:
    """Evaluate the scalar body; division by zero yields ``inf``."""
    if isinstance(expr, ast.NumberLit):
        return expr.value
    if isinstance(expr, ast.AggCall):
        value = env[expr]
        if isinstance(value, float) and math.isnan(value):
            return math.inf
        return value
    if isinstance(expr, ast.UnaryOp):
        return -_eval_expr(expr.operand, env)
    if isinstance(expr, ast.BinOp):
        left = _eval_expr(expr.left, env)
        right = _eval_expr(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if 0.0 in (left, right) and (math.isinf(left) or math.isinf(right)):
                return 0.0
            return left * right
        if right == 0.0:
            return math.inf
        return left / right
    if isinstance(expr, ast.FuncCall):
        try:
            func = _SCALAR_FUNCS[expr.func]
        except KeyError:
            raise LossFunctionError(f"unknown scalar function: {expr.func!r}") from None
        args = [_eval_expr(a, env) for a in expr.args]
        try:
            result = func(*args)
        except (ValueError, OverflowError):
            return math.inf
        if isinstance(result, float) and math.isnan(result):
            return math.inf
        return result
    raise LossFunctionError(f"cannot evaluate expression node: {expr!r}")
