"""Dry-run stage: iceberg-cell lookup (Section III-B1).

The straightforward initializer would run ``2**n − 1`` full-table
GroupBys. Because the *loss* function is algebraic, the dry run instead:

1. scans the raw table **once** to build the base cuboid (GroupBy over
   all cubed attributes), computing each base cell's distributive loss
   statistics against the global sample;
2. derives every other cuboid by merging base-cell statistics upward
   through the lattice — no further raw-data access;
3. marks each cell whose ``loss(cell data, Sam_global) > θ`` as an
   *iceberg cell* and emits the per-cuboid iceberg-cell tables
   (Table I) plus the annotated lattice (Figure 5a).

The SAMPLING() measure itself is holistic (Lemma III.1), which is why
local samples are deferred to the real run and only drawn for iceberg
cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.global_sample import GlobalSample
from repro.core.lattice import CuboidLattice, LatticeNode
from repro.core.loss.base import LossFunction
from repro.engine.cube import CellKey, align_cell_key, grouping_sets
from repro.engine.groupby import group_rows
from repro.engine.table import Table
from repro.resilience.faults import fault_point, register_fault_point

FP_DRYRUN_DONE = register_fault_point(
    "init.dryrun.done", "dry run derived every cuboid, result not yet returned"
)


@dataclass
class DryRunResult:
    """Everything the real run and the benchmarks need from stage 1."""

    attrs: Tuple[str, ...]
    threshold: float
    lattice: CuboidLattice
    #: iceberg cells only: cell key -> merged loss statistics.
    iceberg_stats: Dict[CellKey, tuple]
    #: per-cuboid iceberg cell keys (the Table I b/c/d artifacts).
    iceberg_cells_by_cuboid: Dict[Tuple[str, ...], List[CellKey]]
    #: per-cuboid total cell counts.
    cell_counts: Dict[Tuple[str, ...], int]
    #: every existing (non-empty) cell of the whole cube.
    known_cells: frozenset
    #: per-cell loss value (all cells), for diagnostics and tests.
    cell_losses: Dict[CellKey, float]
    #: per-cell merged loss statistics (all cells) — kept so incremental
    #: maintenance can fold in deltas without re-reading the raw table.
    cell_stats: Dict[CellKey, tuple] = field(default_factory=dict)
    #: wall-clock seconds spent in the dry run.
    seconds: float = 0.0
    #: number of full raw-table passes performed (should stay 1).
    raw_table_passes: int = 1
    #: how the parallel engine actually executed this stage
    #: (:class:`repro.core.parallel.PoolExecution`); ``None`` for the
    #: serial path, which never fans out.
    execution: Optional[object] = None

    @property
    def iceberg_cells(self) -> List[CellKey]:
        return list(self.iceberg_stats)

    @property
    def num_iceberg_cells(self) -> int:
        return len(self.iceberg_stats)

    def iceberg_cell_table(self) -> List[CellKey]:
        """The combined iceberg-cell table (Table Ia)."""
        return list(self.iceberg_stats)


@dataclass
class CuboidDerivation:
    """Output of :func:`derive_cuboids` — every per-cell artifact of the
    upward merge, before lattice assembly."""

    iceberg_stats: Dict[CellKey, tuple]
    iceberg_by_cuboid: Dict[Tuple[str, ...], List[CellKey]]
    cell_counts: Dict[Tuple[str, ...], int]
    cell_losses: Dict[CellKey, float]
    cell_stats: Dict[CellKey, tuple]
    known: set


def derive_cuboids(
    attrs: Tuple[str, ...],
    base_keys: List[Tuple],
    base_stats: List[tuple],
    key_codes: np.ndarray,
    loss: LossFunction,
    threshold: float,
    sample_summary: tuple,
) -> CuboidDerivation:
    """Derive every cuboid from base-cell statistics (no raw-data access).

    Shared by the serial dry run (which feeds it the full-table GroupBy)
    and the parallel engine (which feeds it merged per-partition
    accumulators). ``key_codes`` is the ``(G, len(attrs))`` physical
    code matrix of the base cells; it only steers the grouping of the
    additive fast path, so any encoding that separates distinct keys is
    correct — but the *order* of ``base_keys`` fixes merge order and
    therefore must itself be deterministic for reproducible builds.
    """
    iceberg_stats: Dict[CellKey, tuple] = {}
    iceberg_by_cuboid: Dict[Tuple[str, ...], List[CellKey]] = {}
    cell_counts: Dict[Tuple[str, ...], int] = {}
    cell_losses: Dict[CellKey, float] = {}
    all_cell_stats: Dict[CellKey, tuple] = {}
    known: set = set()

    positions = {attr: i for i, attr in enumerate(attrs)}
    # Fast path: additive statistics accumulate with np.add.at instead of
    # a Python merge loop — the difference between seconds and minutes on
    # many-attribute cubes.
    additive = loss.additive_stats and len(base_keys) > 0
    if additive:
        stats_matrix = np.asarray(base_stats, dtype=float)
    for gset in grouping_sets(attrs):
        # Derive this cuboid by merging base-cell statistics upward.
        projector = [positions[a] for a in gset]
        merged: Dict[Tuple, tuple] = {}
        if additive:
            if projector:
                sub = key_codes[:, projector]
                uniq, first, inverse = np.unique(
                    sub, axis=0, return_index=True, return_inverse=True
                )
                inverse = inverse.ravel()
                sums = np.zeros((len(uniq), stats_matrix.shape[1]))
                np.add.at(sums, inverse, stats_matrix)
                for g in range(len(uniq)):
                    representative = base_keys[first[g]]
                    projected = tuple(representative[p] for p in projector)
                    merged[projected] = tuple(sums[g])
            else:
                merged[()] = tuple(stats_matrix.sum(axis=0))
        else:
            for key, stats in zip(base_keys, base_stats):
                projected = tuple(key[p] for p in projector)
                if projected in merged:
                    merged[projected] = loss.merge_stats(merged[projected], stats)
                else:
                    merged[projected] = stats
        cell_counts[gset] = len(merged)
        cuboid_icebergs: List[CellKey] = []
        for projected, stats in merged.items():
            cell = align_cell_key(gset, projected, attrs)
            known.add(cell)
            all_cell_stats[cell] = stats
            cell_loss = loss.loss_from_stats(stats, sample_summary)
            cell_losses[cell] = cell_loss
            if cell_loss > threshold:
                iceberg_stats[cell] = stats
                cuboid_icebergs.append(cell)
        iceberg_by_cuboid[gset] = cuboid_icebergs
    return CuboidDerivation(
        iceberg_stats=iceberg_stats,
        iceberg_by_cuboid=iceberg_by_cuboid,
        cell_counts=cell_counts,
        cell_losses=cell_losses,
        cell_stats=all_cell_stats,
        known=known,
    )


def result_from_derivation(
    attrs: Tuple[str, ...],
    threshold: float,
    derived: CuboidDerivation,
    seconds: float,
    execution: Optional[object] = None,
) -> DryRunResult:
    """Assemble the lattice and package a :class:`DryRunResult`."""
    nodes = {
        gset: LatticeNode(
            grouping_set=gset,
            total_cells=derived.cell_counts[gset],
            iceberg_cells=len(derived.iceberg_by_cuboid[gset]),
        )
        for gset in grouping_sets(attrs)
    }
    return DryRunResult(
        attrs=attrs,
        threshold=threshold,
        lattice=CuboidLattice(attrs, nodes),
        iceberg_stats=derived.iceberg_stats,
        iceberg_cells_by_cuboid=derived.iceberg_by_cuboid,
        cell_counts=derived.cell_counts,
        known_cells=frozenset(derived.known),
        cell_losses=derived.cell_losses,
        cell_stats=derived.cell_stats,
        seconds=seconds,
        raw_table_passes=1,
        execution=execution,
    )


def dry_run(
    table: Table,
    attrs: Sequence[str],
    loss: LossFunction,
    threshold: float,
    global_sample: GlobalSample,
) -> DryRunResult:
    """Identify every iceberg cell with a single raw-table pass."""
    started = time.perf_counter()
    attrs = tuple(attrs)
    table.schema.require(attrs)

    values = loss.extract(table)
    sample_values = loss.extract(global_sample.table)
    sample_summary = loss.prepare_sample(sample_values)

    # Single full-table GroupBy: the base cuboid.
    base = group_rows(table, attrs)
    base_keys: List[Tuple] = [base.decode_key(g) for g in range(base.num_groups)]
    base_stats: List[tuple] = [
        loss.stats(values[idx], sample_values) for idx in base.group_indices
    ]

    derived = derive_cuboids(
        attrs, base_keys, base_stats, base.key_codes, loss, threshold, sample_summary
    )
    fault_point(FP_DRYRUN_DONE)
    return result_from_derivation(
        attrs, threshold, derived, time.perf_counter() - started
    )
