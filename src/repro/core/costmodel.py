"""Real-run cost model — Inequation 1 of the paper.

For an iceberg cuboid with i iceberg cells out of k total cells over a
table of cardinality N, the real run can either

- **GroupAllData**: run the cuboid GroupBy over the whole table, cost
  modeled as ``N·log_k(N)``; or
- **Prune + GroupPrunedData**: equi-join the raw table with the
  cuboid's iceberg-cell table first (cost ``N·i``), then group only the
  retrieved rows — assuming each cell holds ``N/k`` rows, the pruned
  data has ``(i/k)·N`` rows, costing ``(i/k)·N·log_k((i/k)·N)``.

Tabula picks the join path when

    N·i + (i/k)·N·log_k((i/k)·N)  <  N·log_k(N)
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostDecision:
    """The evaluated cost model for one iceberg cuboid."""

    table_rows: int
    iceberg_cells: int
    total_cells: int
    prune_cost: float
    group_pruned_cost: float
    group_all_cost: float

    @property
    def use_join_prune(self) -> bool:
        return self.prune_cost + self.group_pruned_cost < self.group_all_cost

    @property
    def strategy(self) -> str:
        return "join-prune" if self.use_join_prune else "full-groupby"


def _log_base(base: float, value: float) -> float:
    if value <= 1.0:
        return 0.0
    return math.log(value) / math.log(base)


def evaluate(table_rows: int, iceberg_cells: int, total_cells: int) -> CostDecision:
    """Evaluate Inequation 1 for one cuboid.

    Args:
        table_rows: N, cardinality of the raw table.
        iceberg_cells: i, iceberg cells in this cuboid.
        total_cells: k, all cells in this cuboid.

    Returns:
        A :class:`CostDecision`; ``use_join_prune`` is the verdict. When
        the cuboid has a single cell (k ≤ 1) the logarithm base is
        undefined and the full GroupBy is returned (the join could not
        prune anything anyway).
    """
    if table_rows < 0 or iceberg_cells < 0 or total_cells < 0:
        raise ValueError("cost-model inputs must be non-negative")
    n = float(table_rows)
    i = float(iceberg_cells)
    k = float(total_cells)
    if k <= 1.0:
        # log base k undefined; a one-cell cuboid cannot benefit from pruning.
        return CostDecision(table_rows, iceberg_cells, total_cells, math.inf, math.inf, 0.0)
    prune = n * i
    pruned_rows = (i / k) * n
    group_pruned = pruned_rows * _log_base(k, pruned_rows)
    group_all = n * _log_base(k, n)
    return CostDecision(table_rows, iceberg_cells, total_cells, prune, group_pruned, group_all)
