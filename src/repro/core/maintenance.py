"""Incremental cube maintenance — append new data without a rebuild.

The paper initializes the sampling cube once; real dashboards sit on
tables that grow. This extension folds a batch of appended rows into an
initialized :class:`~repro.core.tabula.Tabula` while *preserving the
deterministic θ-guarantee*:

1. one pass over the delta computes its base-cuboid loss statistics and
   derives every affected cell's delta statistics (the same algebraic
   trick as the dry run — the raw table is never re-read);
2. each affected cell's loss against the (unchanged) global sample is
   recomputed from merged statistics:
   - loss ≤ θ and not materialized → nothing to do (global sample
     still valid — verified, not assumed);
   - loss ≤ θ but materialized → the cell is demoted to the global
     sample (its old sample is garbage-collected when orphaned);
   - loss > θ → the currently assigned sample (if any) is re-checked
     against the cell's *new* population; on violation — or if the cell
     was not materialized — a fresh local sample is drawn from the
     combined data.

Unaffected cells keep their previous certificates: their populations
did not change. The global sample itself is kept; Serfling's bound ties
its size to the relative-error target, not the table cardinality, so a
growing table does not invalidate it (the per-cell re-checks above are
what carry the guarantee).

Crash safety (the plan/apply split): maintenance is structured as a
pure planner — :func:`plan_append` computes every cell-level decision
*including the drawn sample indices* without touching the instance —
followed by an idempotent, convergent :func:`apply_plan`. With a
:class:`~repro.resilience.journal.MaintenanceJournal`,
:func:`append_rows` logs the full plan (post-states, not deltas)
before mutating and a commit marker after, so a crash at any point is
recoverable by :func:`recover_journal`: uncommitted plans are
re-applied (convergent — applying a plan twice yields the same cube),
and committed batch ids make re-submitting the same delta a no-op — a
batch is never double-applied.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.sampling import sample_with_pool
from repro.core.tabula import Tabula
from repro.engine.cube import CellKey, align_cell_key, grouping_sets
from repro.engine.groupby import group_rows
from repro.engine.table import Table
from repro.errors import TabulaError
from repro.resilience.checkpoint import (
    cell_from_json,
    cell_to_json,
    stats_from_json,
    stats_to_json,
)
from repro.resilience.faults import fault_point, register_fault_point
from repro.resilience.journal import MaintenanceJournal, canonical_json

FP_PLAN_LOGGED = register_fault_point(
    "maintain.journal.planned", "plan durably journaled, store untouched"
)
FP_APPLY_CONCAT = register_fault_point(
    "maintain.apply.concat", "before the delta is concatenated onto the raw table"
)
FP_APPLY_DECISION = register_fault_point(
    "maintain.apply.decision", "before applying one cell-level decision"
)
FP_COMMIT = register_fault_point(
    "maintain.commit", "store fully mutated, commit marker not yet journaled"
)


@dataclass(frozen=True)
class MaintenanceReport:
    """What one append did to the cube."""

    appended_rows: int
    affected_cells: int
    new_cells: int
    promoted_cells: int      # newly iceberg, fresh local sample drawn
    repaired_cells: int      # iceberg whose sample no longer satisfied θ
    retained_cells: int      # iceberg whose sample still satisfies θ
    demoted_cells: int       # fell back under θ, now served globally
    seconds: float


@dataclass(frozen=True)
class CellDecision:
    """The planned post-state of one affected cell.

    ``action`` is one of ``"demote"`` / ``"retain"`` / ``"resample"`` /
    ``"none"`` (loss ≤ θ, nothing materialized). ``stats`` and ``loss``
    are the cell's *merged* (post-append) statistics and loss — stored
    as absolutes so replaying the decision is convergent, never
    additive. ``sample_indices`` index into the combined (base + delta)
    table for ``"resample"`` decisions.
    """

    cell: CellKey
    action: str
    stats: tuple
    loss: float
    newly_known: bool
    #: whether the cell had a materialized sample when planned — splits
    #: ``"resample"`` into *repaired* (it did) vs *promoted* (it did not)
    #: in the report.
    was_materialized: bool = False
    sample_indices: Optional[Tuple[int, ...]] = None


@dataclass
class MaintenancePlan:
    """Everything :func:`apply_plan` needs, computed without mutation."""

    batch_id: str
    base_rows: int
    delta: Table
    seed: int
    decisions: List[CellDecision]

    @property
    def delta_rows(self) -> int:
        return self.delta.num_rows


def _batch_id(seed: int, delta: Table) -> str:
    """Content hash identifying one delta batch.

    Deliberately independent of the current table state: a client
    re-submitting the same batch after a crash-and-recover (when the
    base has already grown by exactly this delta) must land on the same
    id so the committed-batch ledger can de-duplicate it. Appending the
    same rows again *on purpose* through the same journal requires a
    fresh ``seed`` (or no journal).
    """
    from repro.core.persistence import table_to_json

    text = canonical_json({"seed": seed, "delta": table_to_json(delta)})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


def batch_id_for(seed: int, delta: Table) -> str:
    """Public content-hash id of one (seed, delta) batch.

    The streaming-ingest recovery path uses this to ask the journal
    "is this WAL batch already committed?" *without* paying for a full
    :func:`plan_append` on a batch that will be skipped anyway.
    """
    return _batch_id(seed, delta)


def plan_append(tabula: Tabula, new_rows: Table, seed: int = 0) -> MaintenancePlan:
    """Compute the full maintenance plan for ``new_rows`` — pure.

    Nothing on ``tabula`` is mutated: the plan carries each affected
    cell's post-state (merged statistics, new loss, and — for cells
    needing a fresh sample — the drawn sample's row indices into the
    combined table), so applying it requires no further randomness.

    Raises:
        CubeNotInitializedError: before ``initialize()``.
        TabulaError: schema mismatch, or a restored (persisted) instance
            that lacks dry-run statistics.
    """
    store = tabula.store  # raises CubeNotInitializedError when missing
    if tabula._dry is None:
        raise TabulaError(
            "incremental maintenance needs the dry-run statistics; a cube "
            "restored from disk must be re-initialized instead"
        )
    if new_rows.schema.names != tabula.table.schema.names:
        raise TabulaError(
            f"appended rows schema {new_rows.schema.names} does not match "
            f"the table schema {tabula.table.schema.names}"
        )
    config = tabula.config
    loss = config.loss
    attrs = config.cubed_attrs
    dry = tabula._dry
    rng = np.random.default_rng(seed)

    sample_values = loss.extract(store.global_sample.table)
    sample_summary = loss.prepare_sample(sample_values)

    # Stage 1: delta statistics, derived exactly like the dry run.
    delta_values = loss.extract(new_rows)
    base = group_rows(new_rows, attrs)
    base_keys = [base.decode_key(g) for g in range(base.num_groups)]
    base_stats = [
        loss.stats(delta_values[idx], sample_values) for idx in base.group_indices
    ]
    positions = {attr: i for i, attr in enumerate(attrs)}
    delta_stats: Dict[CellKey, tuple] = {}
    for gset in grouping_sets(attrs):
        projector = [positions[a] for a in gset]
        for key, stats in zip(base_keys, base_stats):
            cell = align_cell_key(gset, tuple(key[p] for p in projector), attrs)
            if cell in delta_stats:
                delta_stats[cell] = loss.merge_stats(delta_stats[cell], stats)
            else:
                delta_stats[cell] = stats

    # Stage 2: decide per cell (no mutation; RNG consumed in the same
    # deterministic order the decisions are listed).
    combined = tabula.table.concat(new_rows)
    combined_values = loss.extract(combined)
    known: Set[CellKey] = set(dry.known_cells)
    decisions: List[CellDecision] = []
    for cell, delta in delta_stats.items():
        previous = dry.cell_stats.get(cell)
        merged = delta if previous is None else loss.merge_stats(previous, delta)
        cell_loss = loss.loss_from_stats(merged, sample_summary)
        newly_known = cell not in known
        if newly_known:
            known.add(cell)
        materialized = store.sample_id_of(cell) is not None
        if cell_loss <= config.threshold:
            action = "demote" if materialized else "none"
            decisions.append(
                CellDecision(cell, action, merged, cell_loss, newly_known, materialized)
            )
            continue
        # Iceberg (now or still): the materialized answer must be valid.
        cell_rows = _cell_population(combined, attrs, cell)
        cell_data = combined_values[cell_rows]
        assigned = store.lookup(cell)
        if assigned is not None and (
            loss.loss(cell_data, loss.extract(assigned)) <= config.threshold
        ):
            decisions.append(
                CellDecision(cell, "retain", merged, cell_loss, newly_known, materialized)
            )
            continue
        result = sample_with_pool(
            loss, cell_data, config.threshold, rng, pool_size=config.pool_size,
            lazy=config.lazy_sampling,
        )
        decisions.append(
            CellDecision(
                cell,
                "resample",
                merged,
                cell_loss,
                newly_known,
                materialized,
                sample_indices=tuple(int(i) for i in cell_rows[result.indices]),
            )
        )
    return MaintenancePlan(
        batch_id=_batch_id(seed, new_rows),
        base_rows=tabula.table.num_rows,
        delta=new_rows,
        seed=seed,
        decisions=decisions,
    )


def apply_plan(tabula: Tabula, plan: MaintenancePlan) -> None:
    """Apply a maintenance plan — idempotent and convergent.

    Safe to re-run after a crash at any point: the delta concat is
    guarded by row counts, statistics are written as absolutes, demotes
    are no-ops when already demoted, and re-drawing a planned sample
    re-materializes identical rows (sample ids may differ; logical
    content — what queries observe — does not).

    Raises:
        TabulaError: the instance's table matches neither the plan's
            pre- nor post-state (the plan belongs to a different base).
    """
    store = tabula.store
    dry = tabula._dry
    if dry is None:
        raise TabulaError("cannot apply a maintenance plan without dry-run statistics")
    with tabula.write_lock:
        fault_point(FP_APPLY_CONCAT)
        if tabula.table.num_rows == plan.base_rows:
            tabula.table = tabula.table.concat(plan.delta)
        elif tabula.table.num_rows != plan.base_rows + plan.delta_rows:
            raise TabulaError(
                f"maintenance plan {plan.batch_id} expects a base of "
                f"{plan.base_rows} rows (or {plan.base_rows + plan.delta_rows} "
                f"after concat); the table has {tabula.table.num_rows}"
            )
        known: Set[CellKey] = set(dry.known_cells)
        for decision in plan.decisions:
            fault_point(FP_APPLY_DECISION)
            cell = decision.cell
            dry.cell_stats[cell] = decision.stats
            dry.cell_losses[cell] = decision.loss
            if decision.newly_known:
                known.add(cell)
                store.add_known_cell(cell)
            if decision.action == "demote":
                store.demote_to_global(cell)
            elif decision.action == "resample":
                indices = np.asarray(decision.sample_indices, dtype=np.int64)
                store.assign_new_sample(cell, tabula.table.take(indices))
            # "retain"/"none": certificates unchanged.
        dry.known_cells = frozenset(known)


def _report_from(plan: MaintenancePlan, seconds: float) -> MaintenanceReport:
    new_cells = promoted = repaired = retained = demoted = 0
    for d in plan.decisions:
        if d.newly_known:
            new_cells += 1
        if d.action == "demote":
            demoted += 1
        elif d.action == "retain":
            retained += 1
        elif d.action == "resample":
            if d.was_materialized:
                repaired += 1
            else:
                promoted += 1
    return MaintenanceReport(
        appended_rows=plan.delta_rows,
        affected_cells=len(plan.decisions),
        new_cells=new_cells,
        promoted_cells=promoted,
        repaired_cells=repaired,
        retained_cells=retained,
        demoted_cells=demoted,
        seconds=seconds,
    )


def append_rows(
    tabula: Tabula,
    new_rows: Table,
    seed: int = 0,
    journal: Optional[MaintenanceJournal] = None,
) -> MaintenanceReport:
    """Fold ``new_rows`` into an initialized middleware instance.

    After this returns, ``tabula.table`` is the concatenation and every
    cube cell again satisfies ``loss(raw answer, returned sample) <= θ``.

    With a ``journal``, the append is crash-safe: the plan is durably
    logged before any mutation and committed after, and re-submitting a
    batch whose id is already committed returns the recorded report
    without touching the store (exactly-once application).

    Raises:
        CubeNotInitializedError: before ``initialize()``.
        TabulaError: when called on a restored (persisted) instance that
            lacks dry-run statistics, or on a schema mismatch.
    """
    started = time.perf_counter()
    # One writer at a time: planning reads the table/store state that
    # apply mutates, so plan+apply must be atomic against other writers
    # (readers are unaffected — they ride the store's generation
    # counter). The RLock keeps direct apply_plan calls re-entrant.
    with tabula.write_lock:
        plan = plan_append(tabula, new_rows, seed)
        if journal is not None:
            if journal.is_committed(plan.batch_id):
                recorded = journal.committed_report(plan.batch_id)
                if recorded:
                    return MaintenanceReport(**recorded)
                return _report_from(plan, 0.0)
            journal.log_plan(plan.batch_id, _plan_payload(plan))
            fault_point(FP_PLAN_LOGGED)
        apply_plan(tabula, plan)
        report = _report_from(plan, time.perf_counter() - started)
        if journal is not None:
            fault_point(FP_COMMIT)
            journal.commit(plan.batch_id, asdict(report))
        return report


def recover_journal(tabula: Tabula, journal: MaintenanceJournal) -> List[MaintenanceReport]:
    """Replay logged-but-uncommitted maintenance batches after a crash.

    Each uncommitted plan is re-applied from its journaled post-states
    (no randomness is consumed) and then committed; the result converges
    to exactly the cube an uninterrupted :func:`append_rows` would have
    produced, whether the crash hit before, during, or after the
    original apply.

    Interior journal damage is *reported, never swallowed*: a plan whose
    batch id is journaled but whose payload fails its CRC (or any bad
    frame with durable records after it) raises a typed
    :class:`~repro.resilience.journal.JournalCorruptionError` (TAB509)
    naming the offending segment path — replaying a truncated prefix
    could silently drop a committed batch or half of one. A torn final
    line (the normal residue of a crash mid-append) still truncates
    benignly.

    Raises:
        JournalCorruptionError: the journal file is damaged beyond a
            torn tail; nothing is replayed.
    """
    journal.check_readable()
    reports: List[MaintenanceReport] = []
    with tabula.write_lock:
        for batch_id, payload in journal.uncommitted_plans():
            plan = _plan_from_payload(payload)
            apply_plan(tabula, plan)
            report = _report_from(plan, 0.0)
            journal.commit(batch_id, asdict(report))
            reports.append(report)
    return reports


def _plan_payload(plan: MaintenancePlan) -> dict:
    from repro.core.persistence import table_to_json

    return {
        "batch_id": plan.batch_id,
        "base_rows": plan.base_rows,
        "seed": plan.seed,
        "delta": table_to_json(plan.delta),
        "decisions": [
            {
                "cell": cell_to_json(d.cell),
                "action": d.action,
                "stats": stats_to_json(d.stats),
                "loss": d.loss,
                "newly_known": d.newly_known,
                "was_materialized": d.was_materialized,
                "sample_indices": list(d.sample_indices) if d.sample_indices else None,
            }
            for d in plan.decisions
        ],
    }


def _plan_from_payload(payload: dict) -> MaintenancePlan:
    from repro.core.persistence import table_from_json

    return MaintenancePlan(
        batch_id=payload["batch_id"],
        base_rows=payload["base_rows"],
        delta=table_from_json(payload["delta"]),
        seed=payload["seed"],
        decisions=[
            CellDecision(
                cell=cell_from_json(d["cell"]),
                action=d["action"],
                stats=stats_from_json(d["stats"]),
                loss=d["loss"],
                newly_known=d["newly_known"],
                was_materialized=d["was_materialized"],
                sample_indices=tuple(d["sample_indices"]) if d["sample_indices"] else None,
            )
            for d in payload["decisions"]
        ],
    )


def _cell_population(table: Table, attrs, cell: CellKey) -> np.ndarray:
    """Row indices of a cell's population in ``table``."""
    mask = np.ones(table.num_rows, dtype=bool)
    for attr, value in zip(attrs, cell):
        if value is None:
            continue
        col = table.column(attr)
        mask &= col.data == col.encode(value)
    return np.nonzero(mask)[0]
