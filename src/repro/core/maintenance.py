"""Incremental cube maintenance — append new data without a rebuild.

The paper initializes the sampling cube once; real dashboards sit on
tables that grow. This extension folds a batch of appended rows into an
initialized :class:`~repro.core.tabula.Tabula` while *preserving the
deterministic θ-guarantee*:

1. one pass over the delta computes its base-cuboid loss statistics and
   derives every affected cell's delta statistics (the same algebraic
   trick as the dry run — the raw table is never re-read);
2. each affected cell's loss against the (unchanged) global sample is
   recomputed from merged statistics:
   - loss ≤ θ and not materialized → nothing to do (global sample
     still valid — verified, not assumed);
   - loss ≤ θ but materialized → the cell is demoted to the global
     sample (its old sample is garbage-collected when orphaned);
   - loss > θ → the currently assigned sample (if any) is re-checked
     against the cell's *new* population; on violation — or if the cell
     was not materialized — a fresh local sample is drawn from the
     combined data.

Unaffected cells keep their previous certificates: their populations
did not change. The global sample itself is kept; Serfling's bound ties
its size to the relative-error target, not the table cardinality, so a
growing table does not invalidate it (the per-cell re-checks above are
what carry the guarantee).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Set

import numpy as np

from repro.core.sampling import sample_with_pool
from repro.core.tabula import Tabula
from repro.engine.cube import CellKey, align_cell_key, grouping_sets
from repro.engine.groupby import group_rows
from repro.engine.table import Table
from repro.errors import CubeNotInitializedError, TabulaError


@dataclass(frozen=True)
class MaintenanceReport:
    """What one append did to the cube."""

    appended_rows: int
    affected_cells: int
    new_cells: int
    promoted_cells: int      # newly iceberg, fresh local sample drawn
    repaired_cells: int      # iceberg whose sample no longer satisfied θ
    retained_cells: int      # iceberg whose sample still satisfies θ
    demoted_cells: int       # fell back under θ, now served globally
    seconds: float


def append_rows(tabula: Tabula, new_rows: Table, seed: int = 0) -> MaintenanceReport:
    """Fold ``new_rows`` into an initialized middleware instance.

    After this returns, ``tabula.table`` is the concatenation and every
    cube cell again satisfies ``loss(raw answer, returned sample) <= θ``.

    Raises:
        CubeNotInitializedError: before ``initialize()``.
        TabulaError: when called on a restored (persisted) instance that
            lacks dry-run statistics.
    """
    started = time.perf_counter()
    store = tabula.store  # raises CubeNotInitializedError when missing
    if tabula._dry is None:
        raise TabulaError(
            "incremental maintenance needs the dry-run statistics; a cube "
            "restored from disk must be re-initialized instead"
        )
    if new_rows.schema.names != tabula.table.schema.names:
        raise TabulaError(
            f"appended rows schema {new_rows.schema.names} does not match "
            f"the table schema {tabula.table.schema.names}"
        )
    config = tabula.config
    loss = config.loss
    attrs = config.cubed_attrs
    dry = tabula._dry
    rng = np.random.default_rng(seed)

    sample_values = loss.extract(store.global_sample.table)
    sample_summary = loss.prepare_sample(sample_values)

    # Stage 1: delta statistics, derived exactly like the dry run.
    delta_values = loss.extract(new_rows)
    base = group_rows(new_rows, attrs)
    base_keys = [base.decode_key(g) for g in range(base.num_groups)]
    base_stats = [
        loss.stats(delta_values[idx], sample_values) for idx in base.group_indices
    ]
    positions = {attr: i for i, attr in enumerate(attrs)}
    delta_stats: Dict[CellKey, tuple] = {}
    for gset in grouping_sets(attrs):
        projector = [positions[a] for a in gset]
        for key, stats in zip(base_keys, base_stats):
            cell = align_cell_key(gset, tuple(key[p] for p in projector), attrs)
            if cell in delta_stats:
                delta_stats[cell] = loss.merge_stats(delta_stats[cell], stats)
            else:
                delta_stats[cell] = stats

    # Stage 2: merge, re-check, repair.
    combined = tabula.table.concat(new_rows)
    combined_values = loss.extract(combined)
    new_cells = promoted = repaired = retained = demoted = 0
    known: Set[CellKey] = set(dry.known_cells)
    for cell, delta in delta_stats.items():
        previous = dry.cell_stats.get(cell)
        merged = delta if previous is None else loss.merge_stats(previous, delta)
        dry.cell_stats[cell] = merged
        cell_loss = loss.loss_from_stats(merged, sample_summary)
        dry.cell_losses[cell] = cell_loss
        if cell not in known:
            new_cells += 1
            known.add(cell)
            store.add_known_cell(cell)
        if cell_loss <= config.threshold:
            if store.sample_id_of(cell) is not None:
                store.demote_to_global(cell)
                demoted += 1
            continue
        # Iceberg (now or still): the materialized answer must be valid.
        cell_rows = _cell_population(combined, attrs, cell)
        cell_data = combined_values[cell_rows]
        assigned = store.lookup(cell)
        if assigned is not None:
            if loss.loss(cell_data, loss.extract(assigned)) <= config.threshold:
                retained += 1
                continue
            repaired += 1
        else:
            promoted += 1
        result = sample_with_pool(
            loss, cell_data, config.threshold, rng, pool_size=config.pool_size,
            lazy=config.lazy_sampling,
        )
        store.assign_new_sample(cell, combined.take(cell_rows[result.indices]))

    dry.known_cells = frozenset(known)
    tabula.table = combined
    return MaintenanceReport(
        appended_rows=new_rows.num_rows,
        affected_cells=len(delta_stats),
        new_cells=new_cells,
        promoted_cells=promoted,
        repaired_cells=repaired,
        retained_cells=retained,
        demoted_cells=demoted,
        seconds=time.perf_counter() - started,
    )


def _cell_population(table: Table, attrs, cell: CellKey) -> np.ndarray:
    """Row indices of a cell's population in ``table``."""
    mask = np.ones(table.num_rows, dtype=bool)
    for attr, value in zip(attrs, cell):
        if value is None:
            continue
        col = table.column(attr)
        mask &= col.data == col.encode(value)
    return np.nonzero(mask)[0]
