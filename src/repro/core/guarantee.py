"""Offline verification of the deterministic accuracy guarantee.

Operations tooling: after building (or restoring, or maintaining) a
cube, :func:`verify_cube` sweeps every cell of the data cube, fetches
the answer Tabula would return, and measures the realized loss against
the raw population. The paper's claim is that this check can never fail
(100 % confidence); this module is how a deployment convinces itself of
that — e.g. in a CI gate or after a middleware upgrade.

The sweep is exhaustive and therefore costs one pass per cell; use
``max_cells`` for spot checks on large cubes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.tabula import Tabula
from repro.engine.cube import CellKey, CubeCells, format_cell


@dataclass(frozen=True)
class CellVerification:
    """One cell's check result."""

    cell: CellKey
    source: str
    population: int
    answer_rows: int
    realized_loss: float
    within_threshold: bool


@dataclass
class GuaranteeReport:
    """Outcome of a full-cube verification sweep."""

    threshold: float
    cells_checked: int
    violations: List[CellVerification] = field(default_factory=list)
    worst: Optional[CellVerification] = None
    seconds: float = 0.0

    @property
    def holds(self) -> bool:
        """True when no cell exceeded θ — the paper's invariant."""
        return not self.violations

    def summary(self) -> str:
        status = "HOLDS" if self.holds else f"VIOLATED ({len(self.violations)} cells)"
        worst = (
            f"worst {self.worst.realized_loss:.6g} at {format_cell(self.worst.cell)}"
            if self.worst
            else "no cells"
        )
        return (
            f"guarantee {status}: {self.cells_checked} cells checked against "
            f"θ={self.threshold:g}; {worst}"
        )


def verify_cube(
    tabula: Tabula,
    max_cells: Optional[int] = None,
    tolerance: float = 1e-12,
) -> GuaranteeReport:
    """Check ``loss(raw cell, answer) <= θ`` for every cube cell.

    Args:
        tabula: an initialized (or restored) middleware instance.
        max_cells: optional cap for spot checks; cells are visited in
            cube order (base cuboid first).
        tolerance: float slack added to θ for the comparison.

    Returns:
        A :class:`GuaranteeReport`; ``report.holds`` is the verdict.
    """
    started = time.perf_counter()
    config = tabula.config
    loss = config.loss
    cube = CubeCells(tabula.table, config.cubed_attrs)
    values = loss.extract(tabula.table)

    report = GuaranteeReport(threshold=config.threshold, cells_checked=0)
    for key in cube:
        if max_cells is not None and report.cells_checked >= max_cells:
            break
        query = {
            attr: value
            for attr, value in zip(config.cubed_attrs, key)
            if value is not None
        }
        result = tabula.query(query)
        raw = values[cube.cell_indices(key)]
        realized = loss.loss(raw, loss.extract(result.sample))
        within = realized <= config.threshold + tolerance
        verification = CellVerification(
            cell=key,
            source=result.source,
            population=len(raw),
            answer_rows=result.sample.num_rows,
            realized_loss=realized,
            within_threshold=within,
        )
        report.cells_checked += 1
        if not within:
            report.violations.append(verification)
        if report.worst is None or realized > report.worst.realized_loss:
            report.worst = verification
    report.seconds = time.perf_counter() - started
    return report
