"""Physical sampling-cube storage — the cube table and sample table.

Figure 4 of the paper: the cube table stores one row per *iceberg cell*
(cell coordinates plus a sample id); the sample table stores the
representative samples themselves. Many cells share a sample id thanks
to representative sample selection. Queries hitting non-iceberg cells
are answered by the global sample, which is the third physical
component (Section V-B's memory breakdown: global sample, cube table,
sample table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.global_sample import GlobalSample
from repro.engine.column import Column
from repro.engine.cube import CellKey, format_cell
from repro.engine.schema import ColumnType
from repro.engine.table import Table


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes per physical component (the Figure 9 breakdown)."""

    global_sample_bytes: int
    cube_table_bytes: int
    sample_table_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.global_sample_bytes + self.cube_table_bytes + self.sample_table_bytes


class SamplingCubeStore:
    """The materialized sampling cube as held in the data system."""

    def __init__(
        self,
        attrs: Sequence[str],
        global_sample: GlobalSample,
        cell_to_sample_id: Dict[CellKey, int],
        samples: Dict[int, Table],
        known_cells: frozenset,
    ):
        self.attrs = tuple(attrs)
        self.global_sample = global_sample
        self._cell_to_sample_id = dict(cell_to_sample_id)
        self._samples = dict(samples)
        self._known_cells = set(known_cells)
        self._next_sample_id = max(self._samples, default=-1) + 1

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def lookup(self, cell: CellKey) -> Optional[Table]:
        """The materialized sample for ``cell``, or ``None`` if the cell
        is not an iceberg cell (caller then uses the global sample)."""
        sample_id = self._cell_to_sample_id.get(cell)
        if sample_id is None:
            return None
        return self._samples[sample_id]

    def sample_id_of(self, cell: CellKey) -> Optional[int]:
        return self._cell_to_sample_id.get(cell)

    def is_known_cell(self, cell: CellKey) -> bool:
        """Whether the cell's population is non-empty in the raw table."""
        return cell in self._known_cells

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_iceberg_cells(self) -> int:
        return len(self._cell_to_sample_id)

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    def sample_sizes(self) -> Dict[int, int]:
        return {sid: tbl.num_rows for sid, tbl in self._samples.items()}

    def memory_breakdown(self) -> MemoryBreakdown:
        return MemoryBreakdown(
            global_sample_bytes=self.global_sample.nbytes,
            cube_table_bytes=self._estimate_cube_table_bytes(),
            sample_table_bytes=sum(t.nbytes for t in self._samples.values()),
        )

    def _estimate_cube_table_bytes(self) -> int:
        """Cube-table footprint: per row, one slot per attribute + the id.

        Matches the physical layout of Figure 4a — fixed-width encoded
        cell coordinates (dictionary codes / null marker) plus a sample
        id, 8 bytes each.
        """
        row_bytes = (len(self.attrs) + 1) * 8
        return len(self._cell_to_sample_id) * row_bytes

    # ------------------------------------------------------------------
    # Incremental maintenance support
    # ------------------------------------------------------------------
    def add_known_cell(self, cell: CellKey) -> None:
        """Record a newly non-empty cell (appends can create cells)."""
        self._known_cells.add(cell)

    def assign_new_sample(self, cell: CellKey, sample: Table) -> int:
        """Materialize a fresh local sample for ``cell``; returns its id.

        Orphaned samples (no longer referenced by any cell) are garbage
        collected so repeated maintenance cannot leak memory.
        """
        sample_id = self._next_sample_id
        self._next_sample_id += 1
        self._samples[sample_id] = sample
        old = self._cell_to_sample_id.get(cell)
        self._cell_to_sample_id[cell] = sample_id
        if old is not None:
            self._collect_if_orphaned(old)
        self._known_cells.add(cell)
        return sample_id

    def demote_to_global(self, cell: CellKey) -> None:
        """Stop materializing ``cell`` (its loss fell back under θ)."""
        old = self._cell_to_sample_id.pop(cell, None)
        if old is not None:
            self._collect_if_orphaned(old)

    def _collect_if_orphaned(self, sample_id: int) -> None:
        if sample_id not in self._cell_to_sample_id.values():
            self._samples.pop(sample_id, None)

    # ------------------------------------------------------------------
    # Physical layout (Figure 4), for display and the SQL surface
    # ------------------------------------------------------------------
    def cube_table(self) -> Table:
        """The cube table as an engine table (Figure 4a)."""
        cells = list(self._cell_to_sample_id)
        data: Dict[str, List] = {attr: [] for attr in self.attrs}
        ids: List[int] = []
        for cell in cells:
            for attr, value in zip(self.attrs, cell):
                data[attr].append("(null)" if value is None else str(value))
            ids.append(self._cell_to_sample_id[cell])
        columns = [
            Column.from_values(attr, values, ColumnType.CATEGORY)
            for attr, values in data.items()
        ]
        columns.append(Column("sample_id", ColumnType.INT64, np.asarray(ids, dtype=np.int64)))
        return Table(columns)

    def sample_table_entries(self) -> List[Tuple[int, Table]]:
        """The sample table as (id, rows) pairs (Figure 4b)."""
        return sorted(self._samples.items())

    def describe(self, limit: int = 10) -> str:
        """Human-readable summary used by examples and debugging."""
        lines = [
            f"sampling cube over {self.attrs}",
            f"  iceberg cells: {self.num_iceberg_cells}",
            f"  persisted samples: {self.num_samples}",
            f"  global sample: {self.global_sample.size} tuples",
        ]
        for cell in list(self._cell_to_sample_id)[:limit]:
            lines.append(
                f"  {format_cell(cell)} -> sample {self._cell_to_sample_id[cell]}"
            )
        return "\n".join(lines)
