"""Physical sampling-cube storage — the cube table and sample table.

Figure 4 of the paper: the cube table stores one row per *iceberg cell*
(cell coordinates plus a sample id); the sample table stores the
representative samples themselves. Many cells share a sample id thanks
to representative sample selection. Queries hitting non-iceberg cells
are answered by the global sample, which is the third physical
component (Section V-B's memory breakdown: global sample, cube table,
sample table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core import spatial
from repro.core.global_sample import GlobalSample
from repro.sanitizer import create_lock, guarded_by
from repro.engine.column import Column
from repro.engine.cube import CellKey, format_cell
from repro.engine.schema import ColumnType
from repro.engine.table import Table


def _foreign_cell_reason(owner: int) -> str:
    return (
        f"cell owned by shard {owner}; this shard holds only the "
        "replicated global sample for it"
    )


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes per physical component (the Figure 9 breakdown)."""

    global_sample_bytes: int
    cube_table_bytes: int
    sample_table_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.global_sample_bytes + self.cube_table_bytes + self.sample_table_bytes


class SamplingCubeStore:
    """The materialized sampling cube as held in the data system."""

    def __init__(
        self,
        attrs: Sequence[str],
        global_sample: GlobalSample,
        cell_to_sample_id: Dict[CellKey, int],
        samples: Dict[int, Table],
        known_cells: frozenset,
        degraded_cells: Optional[Dict[CellKey, str]] = None,
    ):
        self.attrs = tuple(attrs)
        self.global_sample = global_sample
        self._cell_to_sample_id = dict(cell_to_sample_id)  # guard-writes: _swap_lock
        self._samples = dict(samples)  # guard-writes: _swap_lock
        self._known_cells = set(known_cells)  # guard-writes: _swap_lock
        self._degraded_cells: Dict[CellKey, str] = dict(degraded_cells or {})  # guard-writes: _swap_lock
        self._next_sample_id = max(self._samples, default=-1) + 1  # guard-writes: _swap_lock
        # Swap guard: every mutation of the cell→sample pointers or the
        # sample table happens under this lock and bumps the generation,
        # so a reader that raced a swap (pointer resolved, sample gone)
        # can distinguish "concurrent maintenance moved it" (generation
        # advanced → re-resolve) from "genuinely dangling" (degrade).
        # Readers are deliberately lock-free (stale-pointer retry
        # protocol), hence guard-writes rather than guard above.
        self._swap_lock = create_lock("cube_store._swap_lock", rlock=True)
        self._generation = 0  # guard-writes: _swap_lock
        # Spatial index registry (viewport queries). Indexes are pure
        # derived data over immutable sample tables: sample ids are
        # never reused, so an id→index binding is valid forever and
        # readers stay lock-free like sample reads — a racing removal
        # just falls back to the oracle scan (always correct).
        self._spatial_backend: Optional[str] = None  # guard-writes: _swap_lock
        self._spatial_resolution: Optional[int] = None  # guard-writes: _swap_lock
        self._spatial: Dict[int, spatial.SpatialIndex] = {}  # guard-writes: _swap_lock
        self._global_spatial: Optional[spatial.SpatialIndex] = None  # guard-writes: _swap_lock

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (bumped under the swap lock)."""
        return self._generation

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def lookup(self, cell: CellKey) -> Optional[Table]:
        """The materialized sample for ``cell``, or ``None`` if the cell
        is not an iceberg cell (caller then uses the global sample)."""
        sample_id = self._cell_to_sample_id.get(cell)
        if sample_id is None:
            return None
        return self._samples[sample_id]

    def sample_id_of(self, cell: CellKey) -> Optional[int]:
        return self._cell_to_sample_id.get(cell)

    def sample_for_id(self, sample_id: int) -> Optional[Table]:
        """The sample rows for an id, or ``None`` if the bytes are gone
        (dropped at load after a checksum failure, or a dangling id)."""
        return self._samples.get(sample_id)

    def is_known_cell(self, cell: CellKey) -> bool:
        """Whether the cell's population is non-empty in the raw table."""
        return cell in self._known_cells

    def resolve_many(
        self,
        cells: Sequence[CellKey],
        geometry: Optional[spatial.Geometry] = None,
    ) -> List[Tuple[str, Optional[Table]]]:
        """Classify a batch of cells in one pass under the swap lock.

        Returns, per cell, ``(kind, sample)`` where ``kind`` is one of
        ``"local"`` (sample attached), ``"stale"`` (pointer resolved but
        the sample bytes are gone — the caller's per-query retry/degrade
        protocol owns that case), ``"degraded"``, ``"global"`` (known
        non-iceberg cell) or ``"empty"`` (unknown cell).

        With a ``geometry``, local samples come back spatially filtered
        (index-backed) *inside the same lock pass*: ``"local"`` means
        the geometry retained every sample row (θ-certificate intact),
        ``"local_filtered"`` a strict subset (the caller downgrades).
        Non-local kinds are unchanged — the caller filters the global
        sample once per batch, not once per cell.

        Because every store mutation takes the swap lock and this reads
        the whole batch under it, a batch observes one consistent store
        state: concurrent maintenance can never interleave a pointer
        swap *inside* a batch the way it can between two sequential
        lookups. That single acquisition — instead of two per query —
        is also the point: it is what makes the batched query path cheap.
        """
        with self._swap_lock:
            out: List[Tuple[str, Optional[Table]]] = []
            for cell in cells:
                sample_id = self._cell_to_sample_id.get(cell)
                if sample_id is not None:
                    sample = self._samples.get(sample_id)
                    if sample is None:
                        out.append(("stale", None))
                    elif geometry is None:
                        out.append(("local", sample))
                    else:
                        filtered, covers = spatial.filter_table(
                            sample, geometry, index=self._spatial.get(sample_id)
                        )
                        out.append(("local" if covers else "local_filtered", filtered))
                elif cell in self._degraded_cells:
                    out.append(("degraded", None))
                elif cell in self._known_cells:
                    out.append(("global", None))
                else:
                    out.append(("empty", None))
            return out

    # ------------------------------------------------------------------
    # Spatial indexes (viewport queries)
    # ------------------------------------------------------------------
    @property
    def spatial_backend(self) -> Optional[str]:
        """Index backend in use (``None`` until built / non-spatial table)."""
        return self._spatial_backend

    def build_spatial_indexes(
        self, backend: str = "grid", resolution: Optional[int] = None
    ) -> bool:
        """(Re)build one index per sample plus one for the global sample.

        Called at cube build and reload time. Returns ``False`` (and
        leaves the store index-free) when the samples carry no spatial
        columns — geometry queries against such a cube raise TAB702 at
        the query layer instead.
        """
        with self._swap_lock:
            if not spatial.has_spatial_columns(self.global_sample.table):
                return False
            resolved = spatial.resolve_backend(backend)
            self._spatial_backend = resolved
            self._spatial_resolution = resolution
            self._spatial = {
                sid: self._index_for(sample) for sid, sample in self._samples.items()
            }
            self._global_spatial = self._index_for(self.global_sample.table)
            return True

    def restore_spatial(self, state: Mapping[str, Any]) -> bool:
        """Adopt a persisted ``spatial_index`` section; ``False`` → rebuild.

        Every per-sample record is verified against the sample it claims
        to index (point counts, grid assignments); any inconsistency —
        including a kd-tree record on a host without scipy — rejects the
        whole section so the caller rebuilds from the samples. The index
        is derived data: a bad section is recoverable, never fatal.
        """
        with self._swap_lock:
            if not spatial.has_spatial_columns(self.global_sample.table):
                return False
            try:
                backend = str(state["backend"])
                if backend not in ("grid", "kdtree"):
                    return False
                per_sample: Dict[int, spatial.SpatialIndex] = {}
                records = state.get("samples", {})
                for sid, sample in self._samples.items():
                    record = records.get(str(sid))
                    if record is None:
                        return False
                    xs, ys = spatial.table_points(sample)
                    per_sample[sid] = spatial.index_from_state(xs, ys, record)
                gxs, gys = spatial.table_points(self.global_sample.table)
                global_index = spatial.index_from_state(gxs, gys, state["global"])
            except (KeyError, TypeError, ValueError):
                return False
            self._spatial_backend = backend
            self._spatial_resolution = state.get("resolution")
            self._spatial = per_sample
            self._global_spatial = global_index
            return True

    def spatial_state(self) -> Optional[Dict[str, object]]:
        """Serializable construction record (the persisted v2 section)."""
        with self._swap_lock:
            if self._spatial_backend is None or self._global_spatial is None:
                return None
            return {
                "backend": self._spatial_backend,
                "resolution": self._spatial_resolution,
                "columns": [spatial.SPATIAL_X, spatial.SPATIAL_Y],
                "samples": {
                    str(sid): self._spatial[sid].state()
                    for sid in sorted(self._spatial)
                },
                "global": self._global_spatial.state(),
            }

    def filtered_global(self, geometry: spatial.Geometry) -> Tuple[Table, bool]:
        """``(filtered, covers_all)`` of the global sample (index-backed)."""
        return spatial.filter_table(
            self.global_sample.table, geometry, index=self._global_spatial
        )

    def spatial_filter(
        self,
        sample: Table,
        geometry: spatial.Geometry,
        sample_id: Optional[int] = None,
        use_global: bool = False,
    ) -> Tuple[Table, bool]:
        """``(filtered, covers_all)`` for one sample, index-backed.

        Lock-free by design (same stale-read protocol as sample reads):
        a missing or racing index entry falls back to the exact oracle
        scan inside :func:`repro.core.spatial.filter_table`.
        """
        index = self._global_spatial if use_global else (
            self._spatial.get(sample_id) if sample_id is not None else None
        )
        return spatial.filter_table(sample, geometry, index=index)

    @guarded_by("_swap_lock")
    def _index_for(self, sample: Table) -> spatial.SpatialIndex:
        xs, ys = spatial.table_points(sample)
        return spatial.build_index(
            xs, ys, backend=self._spatial_backend or "grid",
            resolution=self._spatial_resolution,
        )

    # ------------------------------------------------------------------
    # Degraded cells (corruption survivors served via the fallback ladder)
    # ------------------------------------------------------------------
    def is_degraded(self, cell: CellKey) -> bool:
        return cell in self._degraded_cells

    def degraded_reason(self, cell: CellKey) -> str:
        return self._degraded_cells.get(cell, "")

    @property
    def degraded_cells(self) -> Dict[CellKey, str]:
        return dict(self._degraded_cells)

    def mark_degraded(self, cell: CellKey, reason: str) -> None:
        """An iceberg cell whose certified sample is unavailable.

        Its cube-table row is dropped (there is nothing to look up) but
        the cell stays *known* and is remembered here so the query path
        answers it via the fallback ladder with an honest
        :class:`~repro.core.tabula.GuaranteeStatus` instead of raising.
        """
        with self._swap_lock:
            self._generation += 1
            old = self._cell_to_sample_id.pop(cell, None)
            if old is not None:
                self._collect_if_orphaned(old)
            self._degraded_cells[cell] = reason
            self._known_cells.add(cell)

    def drop_sample(self, sample_id: int, reason: str) -> List[CellKey]:
        """Remove a (corrupt) sample; every cell it served degrades."""
        with self._swap_lock:
            affected = [c for c, sid in self._cell_to_sample_id.items() if sid == sample_id]
            for cell in affected:
                self.mark_degraded(cell, reason)
            self._generation += 1
            self._samples.pop(sample_id, None)
            self._spatial.pop(sample_id, None)
            return affected

    def reassign(self, cell: CellKey, sample_id: int) -> None:
        """Bind a degraded cell to an existing (re-verified) sample."""
        with self._swap_lock:
            if sample_id not in self._samples:
                raise KeyError(f"no sample with id {sample_id}")
            self._generation += 1
            self._cell_to_sample_id[cell] = sample_id
            self._degraded_cells.pop(cell, None)
            self._known_cells.add(cell)

    # ------------------------------------------------------------------
    # Shard slicing (the sharded serving tier's per-worker store)
    # ------------------------------------------------------------------
    def shard_slice(
        self, owner_of: Callable[[CellKey], int], shard_id: Optional[int]
    ) -> "SamplingCubeStore":
        """A new store holding only the iceberg samples this shard owns.

        ``owner_of`` is the placement function (cell → shard id).  The
        slice keeps the cube-table rows and sample bytes of owned cells
        only, but retains full knowledge of the cube: the global sample
        (shared by reference — it is replicated to every worker anyway),
        the complete known-cell set, and the *existence* of every
        foreign iceberg cell, recorded as degraded with a reason naming
        its owning shard.  A query landing on the wrong shard (replica
        failover) therefore still answers — from the global sample, with
        ``GuaranteeStatus.DOWNGRADED`` — instead of lying with a
        CERTIFIED global answer or raising.

        ``shard_id=None`` produces the router's own slice: it owns
        nothing, so every iceberg cell degrades to the global sample
        (the universal last rung when all workers are unreachable).
        """
        with self._swap_lock:
            owned = {
                cell: sid
                for cell, sid in self._cell_to_sample_id.items()
                if owner_of(cell) == shard_id
            }
            kept_ids = set(owned.values())
            samples = {sid: tbl for sid, tbl in self._samples.items() if sid in kept_ids}
            degraded: Dict[CellKey, str] = {}
            for cell, reason in self._degraded_cells.items():
                if owner_of(cell) == shard_id:
                    degraded[cell] = reason
                else:
                    degraded[cell] = _foreign_cell_reason(owner_of(cell))
            for cell in self._cell_to_sample_id:
                if cell not in owned:
                    degraded[cell] = _foreign_cell_reason(owner_of(cell))
            sliced = SamplingCubeStore(
                attrs=self.attrs,
                global_sample=self.global_sample,
                cell_to_sample_id=owned,
                samples=samples,
                known_cells=frozenset(self._known_cells),
                degraded_cells=degraded,
            )
            # Spatial indexes are immutable derived data over immutable
            # sample tables — share them by reference into the slice
            # instead of rebuilding per shard.
            sliced._spatial_backend = self._spatial_backend
            sliced._spatial_resolution = self._spatial_resolution
            sliced._spatial = {
                sid: idx for sid, idx in self._spatial.items() if sid in kept_ids
            }
            sliced._global_spatial = self._global_spatial
            return sliced

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_iceberg_cells(self) -> int:
        return len(self._cell_to_sample_id)

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    def sample_sizes(self) -> Dict[int, int]:
        return {sid: tbl.num_rows for sid, tbl in self._samples.items()}

    def memory_breakdown(self) -> MemoryBreakdown:
        return MemoryBreakdown(
            global_sample_bytes=self.global_sample.nbytes,
            cube_table_bytes=self._estimate_cube_table_bytes(),
            sample_table_bytes=sum(t.nbytes for t in self._samples.values()),
        )

    def _estimate_cube_table_bytes(self) -> int:
        """Cube-table footprint: per row, one slot per attribute + the id.

        Matches the physical layout of Figure 4a — fixed-width encoded
        cell coordinates (dictionary codes / null marker) plus a sample
        id, 8 bytes each.
        """
        row_bytes = (len(self.attrs) + 1) * 8
        return len(self._cell_to_sample_id) * row_bytes

    # ------------------------------------------------------------------
    # Incremental maintenance support
    # ------------------------------------------------------------------
    def add_known_cell(self, cell: CellKey) -> None:
        """Record a newly non-empty cell (appends can create cells)."""
        with self._swap_lock:
            self._known_cells.add(cell)

    def assign_new_sample(self, cell: CellKey, sample: Table) -> int:
        """Materialize a fresh local sample for ``cell``; returns its id.

        Orphaned samples (no longer referenced by any cell) are garbage
        collected so repeated maintenance cannot leak memory.
        """
        with self._swap_lock:
            self._generation += 1
            sample_id = self._next_sample_id
            self._next_sample_id += 1
            self._samples[sample_id] = sample
            if self._spatial_backend is not None:
                self._spatial[sample_id] = self._index_for(sample)
            old = self._cell_to_sample_id.get(cell)
            self._cell_to_sample_id[cell] = sample_id
            if old is not None:
                self._collect_if_orphaned(old)
            self._known_cells.add(cell)
            self._degraded_cells.pop(cell, None)
            return sample_id

    def demote_to_global(self, cell: CellKey) -> None:
        """Stop materializing ``cell`` (its loss fell back under θ)."""
        with self._swap_lock:
            self._generation += 1
            old = self._cell_to_sample_id.pop(cell, None)
            if old is not None:
                self._collect_if_orphaned(old)

    @guarded_by("_swap_lock")
    def _collect_if_orphaned(self, sample_id: int) -> None:
        if sample_id not in self._cell_to_sample_id.values():
            self._samples.pop(sample_id, None)
            self._spatial.pop(sample_id, None)

    # ------------------------------------------------------------------
    # Physical layout (Figure 4), for display and the SQL surface
    # ------------------------------------------------------------------
    def cube_table(self) -> Table:
        """The cube table as an engine table (Figure 4a)."""
        cells = list(self._cell_to_sample_id)
        data: Dict[str, List] = {attr: [] for attr in self.attrs}
        ids: List[int] = []
        for cell in cells:
            for attr, value in zip(self.attrs, cell):
                data[attr].append("(null)" if value is None else str(value))
            ids.append(self._cell_to_sample_id[cell])
        columns = [
            Column.from_values(attr, values, ColumnType.CATEGORY)
            for attr, values in data.items()
        ]
        columns.append(Column("sample_id", ColumnType.INT64, np.asarray(ids, dtype=np.int64)))
        return Table(columns)

    def sample_table_entries(self) -> List[Tuple[int, Table]]:
        """The sample table as (id, rows) pairs (Figure 4b)."""
        return sorted(self._samples.items())

    def content_digest(self) -> str:
        """Digest of the store's *logical* content.

        Sample ids are an internal allocation detail (replaying a
        journaled batch re-allocates them), so equality is defined on
        what queries can observe: each cell's answer rows, the known and
        degraded cell sets, and the global sample. Two stores with equal
        digests answer every dashboard query identically.
        """
        import hashlib
        import json

        def cell_key(cell: CellKey) -> str:
            return repr(cell)

        payload = {
            "attrs": list(self.attrs),
            "cells": {
                cell_key(cell): self._samples[sid].to_pydict()
                for cell, sid in self._cell_to_sample_id.items()
                if sid in self._samples
            },
            "known": sorted(cell_key(c) for c in self._known_cells),
            "degraded": {cell_key(c): r for c, r in self._degraded_cells.items()},
            "global_sample": self.global_sample.table.to_pydict(),
        }
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def describe(self, limit: int = 10) -> str:
        """Human-readable summary used by examples and debugging."""
        lines = [
            f"sampling cube over {self.attrs}",
            f"  iceberg cells: {self.num_iceberg_cells}",
            f"  persisted samples: {self.num_samples}",
            f"  global sample: {self.global_sample.size} tuples",
        ]
        for cell in list(self._cell_to_sample_id)[:limit]:
            lines.append(
                f"  {format_cell(cell)} -> sample {self._cell_to_sample_id[cell]}"
            )
        return "\n".join(lines)
