"""Back-of-envelope extrapolation from laptop scale to the paper's testbed.

The reproduction runs on 10⁴–10⁶ synthetic rows in one process; the
paper's numbers come from 700M rows on a 4-worker Spark cluster. This
module makes the relationship explicit instead of leaving it implied:
each approach's data-system time is classified as *scan-bound* (grows
linearly with the table, parallelizable across the cluster) or
*lookup-bound* (independent of the table — a hash probe into the
materialized cube), and measured times are extrapolated accordingly.

This is an illustration, not a measurement: it ignores network shuffle,
stragglers, JVM constants and cache effects. Its purpose is to show
that the measured laptop-scale *shape* is consistent with the paper's
headline ("600 ms data-to-visualization over 700M rows for Tabula,
~20× more for SampleOnTheFly").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Cost classes per approach (see classify_approach).
SCAN_BOUND = "scan-bound"
LOOKUP_BOUND = "lookup-bound"
SAMPLE_SCAN_BOUND = "sample-scan-bound"  # scans its own pre-built sample

_APPROACH_CLASSES = {
    "SamFly": SCAN_BOUND,
    "SampleOnTheFly": SCAN_BOUND,
    "POIsam": SCAN_BOUND,
    "Tabula": LOOKUP_BOUND,
    "Tabula*": LOOKUP_BOUND,
    "FullSamCube": LOOKUP_BOUND,
    "PartSamCube": LOOKUP_BOUND,
}


def classify_approach(name: str) -> str:
    """Cost class of an approach by (prefix of) its display name."""
    for prefix, kind in _APPROACH_CLASSES.items():
        if name.startswith(prefix):
            return kind
    if name.startswith("SamFirst") or name.startswith("SampleFirst"):
        return SAMPLE_SCAN_BOUND
    if name.startswith("SnappyData"):
        return SAMPLE_SCAN_BOUND
    return SCAN_BOUND  # conservative default


@dataclass(frozen=True)
class ScalingModel:
    """Linear scan scaling with cluster parallelism.

    Attributes:
        measured_rows: table size the measurements were taken on.
        target_rows: the paper's table size.
        parallelism: effective parallel speedup of the paper's cluster
            (4 workers × 12 cores by default).
        sample_fraction: pre-built-sample fraction for
            sample-scan-bound approaches (their scan grows with the
            sample, not the table).
    """

    measured_rows: int
    target_rows: int = 700_000_000
    parallelism: float = 48.0
    sample_fraction: float = 0.01

    def __post_init__(self):
        if self.measured_rows <= 0 or self.target_rows <= 0:
            raise ValueError("row counts must be positive")
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")

    @property
    def scan_factor(self) -> float:
        """Multiplier applied to scan-bound measured times."""
        return (self.target_rows / self.measured_rows) / self.parallelism

    def predict(self, approach_name: str, measured_seconds: float) -> float:
        """Extrapolated per-query data-system time at target scale."""
        kind = classify_approach(approach_name)
        if kind == LOOKUP_BOUND:
            return measured_seconds  # hash probe; table size irrelevant
        if kind == SAMPLE_SCAN_BOUND:
            # The pre-built sample grows with the table but stays tiny;
            # scanning it parallelizes the same way.
            return measured_seconds * self.scan_factor * self.sample_fraction
        return measured_seconds * self.scan_factor

    def predict_all(self, measured: Dict[str, float]) -> Dict[str, float]:
        """Extrapolate a whole ``{approach: seconds}`` mapping."""
        return {name: self.predict(name, t) for name, t in measured.items()}

    def speedup_vs(self, measured: Dict[str, float], baseline: str, target: str) -> float:
        """Predicted ``baseline/target`` time ratio at target scale."""
        predictions = self.predict_all(measured)
        if predictions[target] == 0:
            return float("inf")
        return predictions[baseline] / predictions[target]
