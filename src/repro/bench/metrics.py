"""Measurement primitives shared by the benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class TimingSummary:
    """Aggregate of per-query timings (seconds)."""

    mean: float
    minimum: float
    maximum: float
    total: float
    count: int

    @classmethod
    def of(cls, samples: Sequence[float]) -> "TimingSummary":
        arr = np.asarray(list(samples), dtype=float)
        if len(arr) == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0)
        return cls(
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            total=float(arr.sum()),
            count=len(arr),
        )


@dataclass(frozen=True)
class LossSummary:
    """Min/avg/max of realized accuracy losses — the Figure 11b error bars.

    Infinite losses (empty answers from SampleFirst on unmatched
    populations) are counted separately so averages stay meaningful.
    """

    mean: float
    minimum: float
    maximum: float
    count: int
    infinite_count: int

    @classmethod
    def of(cls, samples: Sequence[float]) -> "LossSummary":
        arr = np.asarray(list(samples), dtype=float)
        finite = arr[np.isfinite(arr)]
        infinite = int(len(arr) - len(finite))
        if len(finite) == 0:
            return cls(math.inf, math.inf, math.inf, len(arr), infinite)
        return cls(
            mean=float(finite.mean()),
            minimum=float(finite.min()),
            maximum=float(finite.max()) if infinite == 0 else math.inf,
            count=len(arr),
            infinite_count=infinite,
        )


def format_seconds(seconds: float) -> str:
    """Human-scale rendering: µs/ms/s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def format_bytes(num_bytes: float) -> str:
    """Human-scale rendering: B/KB/MB/GB."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB"):
        if value < 1024:
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.2f}GB"
