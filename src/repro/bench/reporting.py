"""Paper-style plain-text reporting for the benchmark harness.

Figures become series tables (one row per approach, one column per
swept parameter value); tables become, well, tables. Everything prints
through a single writer so bench output is easy to tee into
``bench_output.txt`` and diff across runs.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Sequence


def _emit(line: str) -> None:
    """Default writer: the *real* stdout.

    Benchmarks run under pytest, which captures ``sys.stdout`` and only
    replays it on failure — the regenerated figures would vanish from
    ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``.
    Writing to ``sys.__stdout__`` bypasses the capture so the tables
    always reach the terminal / tee.
    """
    stream = sys.__stdout__ if sys.__stdout__ is not None else sys.stdout
    print(line, file=stream, flush=True)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    writer: Callable[[str], None] = _emit,
) -> None:
    """Render an aligned plain-text table."""
    headers = [str(h) for h in headers]
    str_rows = [[str(v) for v in row] for row in rows]
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(headers[j])
        for j in range(len(headers))
    ]
    writer("")
    writer(f"=== {title} ===")
    writer(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    writer("-+-".join("-" * w for w in widths))
    for row in str_rows:
        writer(" | ".join(v.ljust(w) for v, w in zip(row, widths)))


def print_series(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence],
    value_format: Callable[[object], str] = str,
    writer: Callable[[str], None] = _emit,
) -> None:
    """Render a figure as a series table: rows = series, columns = x.

    ``series`` maps a series name (an approach, or an init stage) to its
    values aligned with ``x_values``.
    """
    headers = [f"{x_label} ->"] + [str(x) for x in x_values]
    rows: List[List[str]] = []
    for name, values in series.items():
        rows.append([name] + [value_format(v) for v in values])
    print_table(title, headers, rows, writer=writer)
