"""Machine-readable cube benchmarks (``repro bench cube`` / ``bench query``).

These benches seed the repo's performance trajectory: each run emits a
JSON document (``BENCH_cube_init.json`` / ``BENCH_query.json``) with
wall-clock numbers, a per-phase breakdown, the parallel speedup over a
``workers=1`` baseline, and the cube-quality invariants that must NOT
move when only the worker count changes:

- iceberg-cell count and known-cell count,
- number of local samples and total sample tuples,
- per-iceberg-cell achieved loss ``<= θ`` (the paper's guarantee),
- the store content digest — byte-level determinism across workers.

Timings drift with hardware; invariants never may. ``check_cube_doc``
separates the two so CI can gate on drift without flaking on slow
runners. Schema details live in ``benchmarks/README.md``.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.loss.registry import LossRegistry
from repro.core.tabula import GuaranteeStatus, Tabula, TabulaConfig
from repro.data.nyctaxi import generate_nyctaxi
from repro.data.workload import generate_workload
from repro.engine.cube import CubeCells

#: Bump when the emitted JSON layout changes incompatibly.
#: v2 (additive): ``latency_seconds`` gained ``p99``; ``bench query``
#: gained ``clients``/``throughput_qps``; new ``bench serving`` document.
#: v3 (additive): ``bench cube`` gained per-stage ``execution`` audit
#: records and the ``speedup_gate`` block; ``bench query`` gained the
#: ``batch`` section (``--batch``). Every earlier field keeps its name.
#: v4 (additive): ``bench serving`` phase ``breaker`` blocks gained
#: per-phase deltas (``phase_opens``/``phase_rejected`` — the cumulative
#: ``opens_total``/``rejected_total`` stay); new ``sharded`` section
#: (``--shards N``): single-shard vs N-shard throughput, a chaos phase
#: that SIGKILLs a worker under load, per-shard worker stats and router
#: breaker deltas, and a ``recovery`` record with the supervisor's
#: restart outcome. Every earlier field keeps its name.
#: v5 (additive): ``bench serving`` gained a ``workload`` field
#: (``"cells"`` — the v4 behaviour and still the default — or
#: ``"viewport"``) and, for viewport runs, a ``viewport`` section: the
#: zoom-level session workload driven with per-query geometries, a
#: brute-force spatial oracle replay (``oracle_mismatches``), a
#: row-containment audit (``rows_outside_viewport``), a guarantee audit
#: (``certified_violations`` — a CERTIFIED answer whose sample was
#: strictly narrowed by the viewport), and per-zoom latency stats.
#: Every earlier field keeps its name.
#: v6 (additive): new ``bench ingest`` document
#: (:mod:`repro.bench.ingest_bench` → ``BENCH_ingest.json``): streaming
#: ingest under concurrent queries — idle vs under-ingest query latency,
#: durable throughput, backpressure/accounting counters, watermark
#: catch-up, and a ``recovery`` section whose WAL-replay digest must
#: equal the live cube's. Every earlier document keeps every field.
SCHEMA_VERSION = 6


@dataclass(frozen=True)
class BenchSettings:
    """Everything that determines a bench run's workload (not its speed)."""

    num_rows: int = 20_000
    seed: int = 0
    attrs: Tuple[str, ...] = ("payment_type", "rate_code", "passenger_count")
    loss_name: str = "mean_loss"
    target: Tuple[str, ...] = ("fare_amount",)
    theta: float = 0.05
    partitions: int = 16

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_rows": self.num_rows,
            "seed": self.seed,
            "attrs": list(self.attrs),
            "loss": self.loss_name,
            "target": list(self.target),
            "theta": self.theta,
            "partitions": self.partitions,
        }


def _make_tabula(table, settings: BenchSettings) -> Tabula:
    loss = LossRegistry().bind(settings.loss_name, settings.target)
    config = TabulaConfig(
        cubed_attrs=settings.attrs,
        threshold=settings.theta,
        loss=loss,
        seed=settings.seed,
        partitions=settings.partitions,
    )
    return Tabula(table, config)


def _build(table, settings: BenchSettings, workers: int):
    """Initialize one cube; returns ``(tabula, report, wall_seconds)``."""
    tabula = _make_tabula(table, settings)
    started = time.perf_counter()
    report = tabula.initialize(workers=workers)
    return tabula, report, time.perf_counter() - started


def cube_invariants(tabula: Tabula, table) -> Dict[str, object]:
    """Quality invariants of a built cube — identical across worker counts.

    ``max_achieved_loss`` re-measures every materialized iceberg-cell
    sample against its raw population, so the reported θ-guarantee is a
    fact about the artifact, not a replay of the builder's bookkeeping.
    """
    store = tabula.store
    loss = tabula.config.loss
    values = loss.extract(table)
    cube = CubeCells(table, tabula.config.cubed_attrs)
    max_loss = 0.0
    for cell in store._cell_to_sample_id:
        sample = store.lookup(cell)
        if sample is None:
            continue
        raw = values[cube.cell_indices(cell)]
        max_loss = max(max_loss, loss.loss(raw, loss.extract(sample)))
    total_sample_tuples = sum(
        sample.num_rows for _, sample in store.sample_table_entries()
    )
    return {
        "iceberg_cells": store.num_iceberg_cells,
        "known_cells": len(store._known_cells),
        "num_samples": store.num_samples,
        "total_sample_tuples": total_sample_tuples,
        "global_sample_size": store.global_sample.size,
        "max_achieved_loss": max_loss,
        "threshold": tabula.config.threshold,
        "loss_bound_ok": bool(max_loss <= tabula.config.threshold + 1e-9),
        "content_digest": store.content_digest(),
    }


def _phase_breakdown(report) -> Dict[str, float]:
    return {
        "dry_run_seconds": report.dry_run_seconds,
        "real_run_seconds": report.real_run_seconds,
        "selection_seconds": report.selection_seconds,
        "total_seconds": report.total_seconds,
    }


def _execution_audit(report) -> Dict[str, Optional[Dict[str, object]]]:
    """Per-stage :class:`~repro.core.parallel.PoolExecution` records.

    ``None`` for a stage means it ran on the serial code path (no pool
    engine involved); a record with ``fallback_kind == "error"`` means
    the pool engine *tried* to fan out and silently fell back inline —
    the regression this bench exists to catch.
    """
    out: Dict[str, Optional[Dict[str, object]]] = {}
    for stage, execution in (
        ("dry_run", getattr(report, "dry_run_execution", None)),
        ("real_run", getattr(report, "real_run_execution", None)),
    ):
        out[stage] = execution.to_dict() if execution is not None else None
    return out


def _speedup_gate(workers: int) -> Dict[str, object]:
    """Whether ``check_cube_doc`` should enforce ``speedup_vs_serial > 1``.

    A 1-core runner cannot show wall-clock speedup from process
    parallelism, so the gate is recorded as not-enforced there (the
    invariant-digest gate stays unconditional). CI pins the bench-smoke
    job to a multi-core runner precisely so this gate is live somewhere.
    """
    import multiprocessing

    cpu_count = multiprocessing.cpu_count()
    if workers < 2:
        return {
            "enforced": False,
            "cpu_count": cpu_count,
            "reason": f"workers={workers} < 2: no parallel run to gate",
        }
    if cpu_count < 2:
        return {
            "enforced": False,
            "cpu_count": cpu_count,
            "reason": f"cpu_count={cpu_count} < 2: speedup unobservable on this machine",
        }
    return {
        "enforced": True,
        "cpu_count": cpu_count,
        "reason": f"cpu_count={cpu_count} >= 2 and workers={workers} >= 2",
    }


def bench_cube(
    settings: Optional[BenchSettings] = None,
    workers: int = 4,
) -> Dict[str, object]:
    """Benchmark cube construction: ``workers=1`` baseline vs ``workers=N``.

    Both runs go through the parallel engine (the serial baseline is
    ``workers=1``), so the byte-identity invariant is exact rather than
    subject to chunked-summation float drift.
    """
    settings = settings or BenchSettings()
    table = generate_nyctaxi(num_rows=settings.num_rows, seed=settings.seed)

    serial_tabula, serial_report, serial_wall = _build(table, settings, workers=1)
    parallel_tabula, parallel_report, parallel_wall = _build(
        table, settings, workers=workers
    )

    serial_inv = cube_invariants(serial_tabula, table)
    parallel_inv = cube_invariants(parallel_tabula, table)
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "cube_init",
        "settings": settings.as_dict(),
        "environment": _environment(),
        "workers": workers,
        "serial": {
            "workers": 1,
            "wall_seconds": serial_wall,
            "phases": _phase_breakdown(serial_report),
            "invariants": serial_inv,
            "execution": _execution_audit(serial_report),
        },
        "parallel": {
            "workers": workers,
            "wall_seconds": parallel_wall,
            "phases": _phase_breakdown(parallel_report),
            "invariants": parallel_inv,
            "execution": _execution_audit(parallel_report),
        },
        "speedup_vs_serial": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "digests_equal": serial_inv["content_digest"] == parallel_inv["content_digest"],
        "speedup_gate": _speedup_gate(workers),
    }


def _latency_stats(latencies: List[float]) -> Dict[str, float]:
    """v1 latency fields plus the v2 tail (p99)."""
    if not latencies:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0, "total": 0.0}
    lat = np.asarray(latencies)
    return {
        "mean": float(lat.mean()),
        "p50": float(np.percentile(lat, 50)),
        "p95": float(np.percentile(lat, 95)),
        "p99": float(np.percentile(lat, 99)),
        "max": float(lat.max()),
        "total": float(lat.sum()),
    }


def bench_query(
    settings: Optional[BenchSettings] = None,
    workers: int = 1,
    num_queries: int = 100,
    workload_seed: int = 0,
    clients: int = 1,
    batch_size: Optional[int] = None,
) -> Dict[str, object]:
    """Benchmark the dashboard query path over a fixed random workload.

    With ``clients > 1`` the same workload is drained by that many
    threads hammering one shared ``Tabula`` — the dashboard's actual
    deployment shape — which exercises the store's swap-generation
    guards and reports aggregate throughput alongside the latency tail.

    With ``batch_size`` set, a second phase replays the same workload
    through a single-worker :class:`ServingGateway` twice — once as
    individual requests, once via ``query_many`` in viewport-sized
    batches (the multi-cell fetch a dashboard pan/zoom issues). Each
    individual request pays one admission-queue round-trip and one
    future handoff; a batch pays that once for ``batch_size`` answers,
    which is the speedup being measured. The document gains a ``batch``
    section: both throughputs, the speedup, and
    ``answers_match_single`` — the equivalence fact ``--check`` gates
    on (throughput is hardware-dependent; the answers never may
    differ).
    """
    settings = settings or BenchSettings()
    table = generate_nyctaxi(num_rows=settings.num_rows, seed=settings.seed)
    tabula, report, _ = _build(table, settings, workers=workers)

    workload = generate_workload(
        table, settings.attrs, num_queries=num_queries, seed=workload_seed
    )
    latencies: List[float] = []
    sources: Dict[str, int] = {}
    guarantees: Dict[str, int] = {}
    record_lock = threading.Lock()

    def run_one(query) -> None:
        started = time.perf_counter()
        result = tabula.query(query)
        elapsed = time.perf_counter() - started
        with record_lock:
            latencies.append(elapsed)
            sources[result.source] = sources.get(result.source, 0) + 1
            name = result.guarantee.name
            guarantees[name] = guarantees.get(name, 0) + 1

    wall_started = time.perf_counter()
    if clients <= 1:
        for query in workload:
            run_one(query)
    else:
        pending = list(workload)
        cursor = {"next": 0}

        def client() -> None:
            while True:
                with record_lock:
                    index = cursor["next"]
                    if index >= len(pending):
                        return
                    cursor["next"] = index + 1
                run_one(pending[index])

        threads = [threading.Thread(target=client) for _ in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    wall = time.perf_counter() - wall_started

    batch_section: Optional[Dict[str, object]] = None
    if batch_size is not None and batch_size > 0:
        from repro.serving.gateway import ServingConfig, ServingGateway

        gateway = ServingGateway(
            tabula,
            config=ServingConfig(workers=1, queue_depth=max(batch_size, 64)),
        )
        with gateway:
            # Warm pass so both measured passes see the same caches.
            gateway.query_many(workload[:batch_size])

            single_started = time.perf_counter()
            single_results = [gateway.query(query) for query in workload]
            single_wall = time.perf_counter() - single_started

            batch_started = time.perf_counter()
            batch_results: List = []
            for start in range(0, len(workload), batch_size):
                batch_results.extend(
                    gateway.query_many(workload[start : start + batch_size])
                )
            batch_wall = time.perf_counter() - batch_started

        answers_match = len(single_results) == len(batch_results) and all(
            s.source == b.source
            and s.guarantee == b.guarantee
            and s.outcome == b.outcome
            and s.cell == b.cell
            and s.sample.to_pydict() == b.sample.to_pydict()
            for s, b in zip(single_results, batch_results)
        )
        batch_section = {
            "batch_size": batch_size,
            "num_queries": len(workload),
            "single_wall_seconds": single_wall,
            "single_throughput_qps": len(workload) / single_wall if single_wall > 0 else 0.0,
            "batch_wall_seconds": batch_wall,
            "batch_throughput_qps": len(workload) / batch_wall if batch_wall > 0 else 0.0,
            "speedup_vs_single": single_wall / batch_wall if batch_wall > 0 else 0.0,
            "answers_match_single": answers_match,
        }

    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "query",
        "settings": settings.as_dict(),
        "environment": _environment(),
        "workers": workers,
        "clients": clients,
        "num_queries": len(workload),
        "latency_seconds": _latency_stats(latencies),
        "throughput_qps": len(workload) / wall if wall > 0 else 0.0,
        "source_mix": sources,
        "guarantee_mix": guarantees,
        "void_answers": guarantees.get(GuaranteeStatus.VOID.name, 0),
        "init_total_seconds": report.total_seconds,
        "invariants": cube_invariants(tabula, table),
        "batch": batch_section,
    }


def bench_serving(
    settings: Optional[BenchSettings] = None,
    workers: int = 2,
    queue_depth: int = 4,
    clients: int = 16,
    num_queries: int = 200,
    min_service_seconds: float = 0.002,
    deadline_seconds: Optional[float] = None,
    workload_seed: int = 0,
    shards: int = 0,
    workload: str = "cells",
) -> Dict[str, object]:
    """Benchmark the serving gateway in a steady and an overloaded regime.

    Two phases over the same workload:

    - **steady** — a well-provisioned gateway (no artificial service
      floor, clients ≤ workers): the baseline latency tail.
    - **overload** — a deliberately under-provisioned gateway
      (``min_service_seconds`` service floor, ``clients`` ≫ workers +
      queue): offered load exceeds capacity, so the gateway *must* shed;
      the document records throughput, shed rate and the p99 of the
      requests that were actually served.

    Shedding is the designed overload response, so ``shed_rate`` is a
    descriptive metric here — ``check_serving_doc`` gates the accounting
    invariants (every request disposed exactly once, outcomes well
    formed), never the timing- and scheduler-dependent rate itself.

    With ``shards >= 1`` the document gains a ``sharded`` section: the
    same workload driven through the fault-tolerant sharded tier — one
    single-shard cluster as the baseline, an N-shard cluster for the
    scaling phase, then a chaos phase that SIGKILLs one worker mid-load
    and a recovery record proving the supervisor restarted it back to
    CERTIFIED answers. The ≥1.5x scaling gate follows the
    ``speedup_gate`` convention: recorded but not enforced on <2-core
    machines (process parallelism cannot show wall-clock speedup there).

    With ``workload="viewport"`` the same two phases run over a
    zoom-level-aware viewport session workload — every request carries a
    bbox geometry — and the document gains a ``viewport`` section whose
    oracle replay ``--check`` gates on (see :func:`check_serving_doc`).
    """
    from repro.serving.breaker import BreakerConfig
    from repro.serving.gateway import ServingConfig, ServingGateway

    if workload not in ("cells", "viewport"):
        raise ValueError(f"unknown serving workload: {workload!r}")
    settings = settings or BenchSettings()
    table = generate_nyctaxi(num_rows=settings.num_rows, seed=settings.seed)
    tabula, _, _ = _build(table, settings, workers=1)
    geometries: Optional[List[Dict[str, object]]] = None
    viewport_workload = None
    if workload == "viewport":
        from repro.data.workload import generate_viewport_workload

        viewport_workload = generate_viewport_workload(
            table, settings.attrs, num_queries=num_queries, seed=workload_seed
        )
        queries = [dict(q) for q in viewport_workload.queries]
        geometries = [dict(g) for g in viewport_workload.geometries]
    else:
        queries = [
            dict(q)
            for q in generate_workload(
                table, settings.attrs, num_queries=num_queries, seed=workload_seed
            )
        ]

    def run_phase(config: ServingConfig, phase_clients: int) -> Dict[str, object]:
        gateway = ServingGateway(tabula, config=config)
        breaker_before = gateway.breaker.snapshot()
        outcomes: Dict[str, int] = {}
        served_latencies: List[float] = []
        lock = threading.Lock()
        cursor = {"next": 0}

        def client() -> None:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(queries):
                        return
                    cursor["next"] = index + 1
                response = gateway.query(
                    queries[index],
                    deadline_seconds=deadline_seconds,
                    geometry=geometries[index] if geometries is not None else None,
                )
                with lock:
                    outcomes[response.outcome.value] = (
                        outcomes.get(response.outcome.value, 0) + 1
                    )
                    if response.answered:
                        served_latencies.append(response.elapsed_seconds)

        threads = [threading.Thread(target=client) for _ in range(phase_clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        stats = gateway.stats()
        gateway.close()
        served = sum(
            count for name, count in outcomes.items() if name not in ("shed",)
        )
        return {
            "clients": phase_clients,
            "workers": config.workers,
            "queue_depth": config.queue_depth,
            "min_service_seconds": config.min_service_seconds,
            "offered": len(queries),
            "outcomes": outcomes,
            "served": served,
            "shed": outcomes.get("shed", 0),
            "shed_rate": outcomes.get("shed", 0) / len(queries) if queries else 0.0,
            "throughput_rps": len(queries) / wall if wall > 0 else 0.0,
            "latency_seconds": _latency_stats(served_latencies),
            "breaker": _breaker_delta(breaker_before, stats["breaker"]),
        }

    steady = run_phase(
        ServingConfig(
            workers=max(workers, 4),
            queue_depth=max(queue_depth, len(queries)),
            breaker=BreakerConfig(),
        ),
        phase_clients=min(clients, max(workers, 4)),
    )
    overload = run_phase(
        ServingConfig(
            workers=workers,
            queue_depth=queue_depth,
            min_service_seconds=min_service_seconds,
            breaker=BreakerConfig(),
        ),
        phase_clients=clients,
    )
    document: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "bench": "serving",
        "settings": settings.as_dict(),
        "environment": _environment(),
        "deadline_seconds": deadline_seconds,
        "workload": workload,
        "phases": {"steady": steady, "overload": overload},
    }
    if viewport_workload is not None:
        document["viewport"] = _bench_viewport(tabula, viewport_workload)
    if shards >= 1:
        document["sharded"] = _bench_sharded(
            settings=settings,
            tabula=tabula,
            table=table,
            workload=queries,
            shards=shards,
            clients=clients,
            min_service_seconds=max(min_service_seconds, 0.005),
        )
    return document


def _bench_viewport(tabula: Tabula, viewport_workload) -> Dict[str, object]:
    """The viewport oracle phase: drive, then refute against brute force.

    A well-provisioned single-worker gateway (deep queue, no service
    floor, no deadline) answers every viewport request, so the answers
    are rung-deterministic; each is then replayed against a brute-force
    oracle — the *unfiltered* answer for the same cell with the geometry
    applied by plain point-in-shape arithmetic, no spatial index — and
    three audits are recorded:

    - ``oracle_mismatches`` — index-filtered rows differ from the
      brute-force rows (the tentpole equivalence fact);
    - ``rows_outside_viewport`` — an answer contains a row outside its
      own geometry (containment must hold regardless of rung);
    - ``certified_violations`` — a CERTIFIED sampled answer whose rows
      were strictly narrowed by the viewport (the θ-certificate does
      not cover a spatially narrowed estimator, so this must downgrade).

    All three are ``--check``-gated at zero.  Per-zoom latency stats
    ride along for the trajectory (not gated).
    """
    from repro.core import spatial
    from repro.serving.gateway import ServingConfig, ServingGateway

    queries = [dict(q) for q in viewport_workload.queries]
    geometries = [spatial.parse_geometry(g) for g in viewport_workload.geometries]
    zooms = list(viewport_workload.zooms)

    responses: List = [None] * len(queries)
    gateway = ServingGateway(
        tabula,
        config=ServingConfig(workers=1, queue_depth=max(64, len(queries))),
    )
    started = time.perf_counter()
    with gateway:
        for index, (query, geom) in enumerate(zip(queries, geometries)):
            responses[index] = gateway.query(query, geometry=geom)
    wall = time.perf_counter() - started

    outcomes: Dict[str, int] = {}
    guarantees: Dict[str, int] = {}
    sources: Dict[str, int] = {}
    oracle_mismatches: List[str] = []
    rows_outside: List[str] = []
    certified_violations: List[str] = []
    by_zoom: Dict[int, List[float]] = {}
    filtered_answers = 0

    for index, response in enumerate(responses):
        geom = geometries[index]
        outcomes[response.outcome.value] = outcomes.get(response.outcome.value, 0) + 1
        guarantees[response.guarantee.value] = (
            guarantees.get(response.guarantee.value, 0) + 1
        )
        sources[response.source] = sources.get(response.source, 0) + 1
        by_zoom.setdefault(zooms[index], []).append(response.elapsed_seconds)
        if response.sample is None:
            continue
        # Containment: every returned row lies inside its own viewport.
        inside = spatial.oracle_rows(response.sample, geom)
        if len(inside) != response.sample.num_rows:
            rows_outside.append(
                f"query {index}: {response.sample.num_rows - len(inside)} of "
                f"{response.sample.num_rows} rows outside {geom.to_dict()}"
            )
        # Equivalence: replay the unfiltered rung through the brute-force
        # oracle (filter_table without an index) and compare rows.
        base = tabula.query(queries[index])
        if base.sample is None or base.source != response.source:
            continue  # different rung answered; no comparable baseline
        expected, covers = spatial.filter_table(base.sample, geom)
        if expected.to_pydict() != response.sample.to_pydict():
            oracle_mismatches.append(
                f"query {index}: index-filtered answer differs from "
                f"brute-force oracle ({response.sample.num_rows} vs "
                f"{expected.num_rows} rows, source={response.source})"
            )
        if not covers:
            filtered_answers += 1
            if (
                response.guarantee is GuaranteeStatus.CERTIFIED
                and response.source in ("local", "global", "representative")
            ):
                certified_violations.append(
                    f"query {index}: CERTIFIED {response.source} answer was "
                    f"strictly narrowed ({base.sample.num_rows} -> "
                    f"{expected.num_rows} rows) without a downgrade"
                )

    zoom_stats = {
        str(zoom): {"count": len(latencies), **_latency_stats(latencies)}
        for zoom, latencies in sorted(by_zoom.items())
    }
    return {
        "offered": len(queries),
        "disposed": sum(outcomes.values()),
        "outcomes": outcomes,
        "guarantees": guarantees,
        "sources": sources,
        "spatial_filtered_answers": sum(
            1 for r in responses if r is not None and r.spatial_filtered
        ),
        "strict_subset_answers": filtered_answers,
        "oracle_mismatches": oracle_mismatches,
        "rows_outside_viewport": rows_outside,
        "certified_violations": certified_violations,
        "throughput_rps": len(queries) / wall if wall > 0 else 0.0,
        "latency_by_zoom": zoom_stats,
        "zoom_range": [min(zooms), max(zooms)] if zooms else [0, 0],
    }


def _breaker_delta(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """Per-phase breaker activity: cumulative snapshot + in-phase deltas.

    The cumulative ``opens_total``/``rejected_total`` counters survive
    across phases sharing a breaker, which used to make per-phase
    reports read as all-zero (or as the *previous* phase's trips); the
    ``phase_*`` keys subtract the phase-start snapshot so each phase
    reports its own activity. Additive: all v3 keys keep their meaning.
    """
    merged: Dict[str, object] = dict(after)
    merged["phase_opens"] = int(after.get("opens_total", 0)) - int(
        before.get("opens_total", 0)
    )
    merged["phase_rejected"] = int(after.get("rejected_total", 0)) - int(
        before.get("rejected_total", 0)
    )
    return merged


def _bench_sharded(
    settings: BenchSettings,
    tabula: Tabula,
    table,
    workload: List[Dict[str, object]],
    shards: int,
    clients: int,
    min_service_seconds: float,
) -> Dict[str, object]:
    """The sharded-tier phases: scaling, chaos (SIGKILL), recovery."""
    import os
    import signal
    import sys
    import tempfile

    from repro.core.persistence import load_cube, save_cube
    from repro.engine.io import read_csv, write_csv
    from repro.engine.schema import ColumnType
    from repro.serving.placement import Placement, shard_transform
    from repro.serving.router import RouterConfig, ShardRouter
    from repro.serving.supervisor import (
        ShardSupervisor,
        SupervisorConfig,
        default_worker_factory,
    )

    workdir = tempfile.mkdtemp(prefix="bench_serving_sharded_")
    csv_path = os.path.join(workdir, "rides.csv")
    cube_path = os.path.join(workdir, "cube.json")
    write_csv(table, csv_path)
    save_cube(tabula, cube_path)
    # Workers re-read the CSV themselves; the router's fallback slice
    # must use the same CATEGORY-typed re-read for identical cells.
    served_table = read_csv(
        csv_path, types={a: ColumnType.CATEGORY for a in settings.attrs}
    )

    def boot(num_shards: int) -> ShardRouter:
        placement = Placement(num_shards)

        def worker_argv(shard: int) -> List[str]:
            return [
                sys.executable, "-m", "repro.serving.shard_worker",
                "--cube", cube_path, "--table", csv_path,
                "--shard", str(shard), "--num-shards", str(num_shards),
                "--workers", "2", "--queue-depth", str(max(64, len(workload))),
                "--min-service-seconds", str(min_service_seconds),
            ]

        supervisor = ShardSupervisor(
            default_worker_factory(worker_argv),
            num_shards,
            config=SupervisorConfig(
                heartbeat_interval_seconds=0.2,
                heartbeat_timeout_seconds=0.5,
                liveness_misses=3,
                backoff_base_seconds=0.1,
                backoff_cap_seconds=1.0,
            ),
        )
        supervisor.start()
        fallback = shard_transform(placement, None)(load_cube(cube_path, served_table))
        return ShardRouter(
            supervisor,
            placement,
            fallback,
            cube_path=cube_path,
            config=RouterConfig(wire_row_limit=8),
        )

    def drive(
        router: ShardRouter,
        phase_clients: int,
        kill_shard: Optional[int] = None,
    ) -> Dict[str, object]:
        breakers_before = {
            shard: router.breaker_state(shard)
            for shard in range(router.placement.num_shards)
        }
        stats_before = router.stats()
        outcomes: Dict[str, int] = {}
        guarantees: Dict[str, int] = {}
        latencies: List[float] = []
        errors: List[str] = []
        lock = threading.Lock()
        cursor = {"next": 0}
        kill_at = len(workload) // 4
        killed = {"pid": None}

        def client() -> None:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(workload):
                        return
                    cursor["next"] = index + 1
                if kill_shard is not None and index == kill_at:
                    pid = router.supervisor.health()[kill_shard]["pid"]
                    if pid is not None:
                        os.kill(pid, signal.SIGKILL)
                        with lock:
                            killed["pid"] = pid
                try:
                    response = router.query(workload[index], deadline_seconds=10.0)
                except Exception as exc:  # the never-500 contract: record, gate
                    with lock:
                        errors.append(f"{type(exc).__name__}: {exc}")
                    continue
                with lock:
                    outcomes[response.outcome.value] = (
                        outcomes.get(response.outcome.value, 0) + 1
                    )
                    guarantees[response.guarantee.value] = (
                        guarantees.get(response.guarantee.value, 0) + 1
                    )
                    if response.answered:
                        latencies.append(response.elapsed_seconds)

        threads = [threading.Thread(target=client) for _ in range(phase_clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        stats_after = router.stats()
        rpc_delta = {
            key: int(stats_after["rpc"][key]) - int(stats_before["rpc"][key])
            for key in stats_after["rpc"]
        }
        record: Dict[str, object] = {
            "clients": phase_clients,
            "offered": len(workload),
            "outcomes": outcomes,
            "guarantees": guarantees,
            "served": sum(v for k, v in outcomes.items() if k != "shed"),
            "shed": outcomes.get("shed", 0),
            "shed_rate": outcomes.get("shed", 0) / len(workload) if workload else 0.0,
            "downgraded": guarantees.get("downgraded", 0),
            "errors": errors,
            "throughput_rps": len(workload) / wall if wall > 0 else 0.0,
            "latency_seconds": _latency_stats(latencies),
            "rpc": rpc_delta,
            "router_breakers": {
                str(shard): {
                    "before": breakers_before[shard].value,
                    "after": router.breaker_state(shard).value,
                }
                for shard in range(router.placement.num_shards)
            },
        }
        if kill_shard is not None:
            record["killed_shard"] = kill_shard
            record["killed_pid"] = killed["pid"]
        return record

    single = boot(1)
    try:
        single_phase = drive(single, phase_clients=clients)
    finally:
        single.close()

    cluster = boot(shards)
    try:
        steady_phase = drive(cluster, phase_clients=clients)
        # Chaos: SIGKILL the owner of the most-loaded shard mid-run.
        placement = cluster.placement
        cells = list(tabula.store._cell_to_sample_id)
        spread = placement.spread(cells)
        victim = max(spread, key=lambda shard: spread[shard])
        chaos_phase = drive(cluster, phase_clients=clients, kill_shard=victim)
        recovery = _await_recovery(cluster, victim, cells, settings)
        per_shard = cluster.shard_stats()
        shard_health = cluster.shard_health()
    finally:
        cluster.close()

    speedup = (
        steady_phase["throughput_rps"] / single_phase["throughput_rps"]
        if single_phase["throughput_rps"]
        else 0.0
    )
    gate = _scaling_gate(shards)
    return {
        "shards": shards,
        "min_service_seconds": min_service_seconds,
        "phases": {
            "single_shard": single_phase,
            "sharded_steady": steady_phase,
            "chaos": chaos_phase,
        },
        "speedup_vs_single_shard": speedup,
        "scaling_gate": gate,
        "recovery": recovery,
        "per_shard_stats": per_shard,
        "shard_health": shard_health,
    }


def _await_recovery(
    router, victim: int, cells: List[tuple], settings: BenchSettings
) -> Dict[str, object]:
    """Wait for the supervisor to restart the killed shard and for its
    cells to answer CERTIFIED again (the chaos criterion's second half)."""
    from repro.serving.supervisor import WorkerState

    started = time.perf_counter()
    deadline = started + 60.0
    while time.perf_counter() < deadline:
        if router.supervisor.state_of(victim) is WorkerState.UP:
            break
        time.sleep(0.1)
    victim_cells = [c for c in cells if router.placement.shard_of(c) == victim]
    probe_cells = victim_cells[:3]
    recovered = False
    while time.perf_counter() < deadline:
        if not probe_cells:
            # The victim owned no iceberg cells (tiny cube): recovery is
            # just the supervisor reporting it UP again.
            recovered = router.supervisor.state_of(victim) is WorkerState.UP
            break
        responses = [
            router.query(
                {a: v for a, v in zip(settings.attrs, cell) if v is not None},
                deadline_seconds=10.0,
            )
            for cell in probe_cells
        ]
        if all(r.guarantee is GuaranteeStatus.CERTIFIED for r in responses):
            recovered = True
            break
        time.sleep(0.2)
    return {
        "recovered": recovered,
        "recovery_seconds": time.perf_counter() - started,
        "victim_shard": victim,
        "victim_iceberg_cells": len(victim_cells),
        "probed_cells": len(probe_cells),
        "restarts_total": router.supervisor.health()[victim]["restarts_total"],
    }


def _scaling_gate(shards: int) -> Dict[str, object]:
    """``speedup_gate`` convention for the sharded tier (≥1.5x over 1 shard)."""
    import multiprocessing

    cpu_count = multiprocessing.cpu_count()
    if shards < 2:
        return {
            "enforced": False,
            "cpu_count": cpu_count,
            "required_speedup": 1.5,
            "reason": f"shards={shards} < 2: no scaling to gate",
        }
    if cpu_count < 2:
        return {
            "enforced": False,
            "cpu_count": cpu_count,
            "required_speedup": 1.5,
            "reason": f"cpu_count={cpu_count} < 2: speedup unobservable on this machine",
        }
    return {
        "enforced": True,
        "cpu_count": cpu_count,
        "required_speedup": 1.5,
        "reason": "",
    }


def check_cube_doc(doc: Dict[str, object]) -> List[str]:
    """Validate a ``bench cube`` document's quality invariants.

    Returns human-readable failure strings (empty = healthy). Timings
    are deliberately NOT checked — only determinism and the θ-bound,
    which must hold on any hardware.
    """
    failures: List[str] = []
    if not doc.get("digests_equal"):
        failures.append(
            "content digest drifted between workers=1 and workers=N builds"
        )
    for side in ("serial", "parallel"):
        inv = doc.get(side, {}).get("invariants", {})
        if not inv.get("loss_bound_ok"):
            failures.append(
                f"{side}: max achieved loss {inv.get('max_achieved_loss')} "
                f"exceeds threshold {inv.get('threshold')}"
            )
    serial_inv = doc.get("serial", {}).get("invariants", {})
    parallel_inv = doc.get("parallel", {}).get("invariants", {})
    for key in ("iceberg_cells", "known_cells", "num_samples", "total_sample_tuples"):
        if serial_inv.get(key) != parallel_inv.get(key):
            failures.append(
                f"invariant {key!r} differs: serial={serial_inv.get(key)} "
                f"parallel={parallel_inv.get(key)}"
            )
    # A parallel build that silently degraded to inline execution is the
    # regression this bench exists to catch — fail it even though the
    # invariants (necessarily) still hold.
    for stage, execution in (doc.get("parallel", {}).get("execution") or {}).items():
        if execution and execution.get("fallback_kind") == "error":
            failures.append(
                f"parallel {stage}: pool fan-out silently degraded to inline "
                f"({execution.get('fallback_reason', 'unknown reason')})"
            )
    gate = doc.get("speedup_gate", {})
    if gate.get("enforced") and doc.get("speedup_vs_serial", 0.0) <= 1.0:
        failures.append(
            f"speedup_vs_serial={doc.get('speedup_vs_serial'):.3f} <= 1.0 on a "
            f"{gate.get('cpu_count')}-core machine — parallel build is a regression"
        )
    return failures


def check_query_doc(doc: Dict[str, object]) -> List[str]:
    """Validate a ``bench query`` document: θ-bound holds, no VOID answers."""
    failures: List[str] = []
    inv = doc.get("invariants", {})
    if not inv.get("loss_bound_ok"):
        failures.append(
            f"max achieved loss {inv.get('max_achieved_loss')} exceeds "
            f"threshold {inv.get('threshold')}"
        )
    if doc.get("void_answers", 0):
        failures.append(f"{doc['void_answers']} VOID answer(s) in the workload")
    batch = doc.get("batch")
    if batch and not batch.get("answers_match_single"):
        failures.append(
            "batched query_many answers diverged from sequential query answers"
        )
    return failures


def check_serving_doc(doc: Dict[str, object]) -> List[str]:
    """Validate a ``bench serving`` document's accounting invariants.

    Gated: every offered request disposed exactly once, outcome names
    well formed, shed count consistent. NOT gated: shed rate, throughput
    and latencies — those are scheduler- and hardware-dependent.
    """
    valid_outcomes = {"ok", "degraded", "shed", "deadline_exceeded", "circuit_open"}
    failures: List[str] = []
    for name, phase in doc.get("phases", {}).items():
        outcomes = phase.get("outcomes", {})
        unknown = set(outcomes) - valid_outcomes
        if unknown:
            failures.append(f"{name}: unknown outcome(s) {sorted(unknown)}")
        disposed = sum(outcomes.values())
        if disposed != phase.get("offered"):
            failures.append(
                f"{name}: {phase.get('offered')} requests offered but "
                f"{disposed} disposed — requests lost or double-counted"
            )
        if phase.get("shed") != outcomes.get("shed", 0):
            failures.append(f"{name}: shed count inconsistent with outcomes")
        if phase.get("served", 0) + phase.get("shed", 0) != disposed:
            failures.append(f"{name}: served + shed != disposed")
    viewport = doc.get("viewport")
    if viewport:
        failures.extend(_check_viewport_section(viewport))
    sharded = doc.get("sharded")
    if sharded:
        failures.extend(_check_sharded_section(sharded))
    return failures


def _check_viewport_section(viewport: Dict[str, object]) -> List[str]:
    """Gate the viewport oracle phase: the three audits must be empty.

    Timings (throughput, per-zoom latencies) are trajectory data, never
    gated; the oracle facts must hold on any hardware.
    """
    failures: List[str] = []
    if viewport.get("disposed") != viewport.get("offered"):
        failures.append(
            f"viewport: {viewport.get('offered')} requests offered but "
            f"{viewport.get('disposed')} disposed — requests lost or double-counted"
        )
    for key in ("oracle_mismatches", "rows_outside_viewport", "certified_violations"):
        problems = viewport.get(key) or []
        if problems:
            failures.append(
                f"viewport: {len(problems)} {key} (first: {problems[0]})"
            )
    valid_guarantees = {"certified", "downgraded", "void"}
    bad = set(viewport.get("guarantees", {})) - valid_guarantees
    if bad:
        failures.append(f"viewport: unknown guarantee(s) {sorted(bad)}")
    return failures


def _check_sharded_section(sharded: Dict[str, object]) -> List[str]:
    """Gate the sharded tier's chaos criterion and (where live) scaling.

    Gated everywhere: per-phase accounting, chaos phase raised zero
    exceptions (the never-500 contract), every chaos guarantee is a
    valid status, the killed shard recovered to CERTIFIED answers.
    Gated only when ``scaling_gate.enforced``: N-shard throughput is
    >= 1.5x the single-shard baseline.
    """
    valid_outcomes = {"ok", "degraded", "shed", "deadline_exceeded", "circuit_open"}
    valid_guarantees = {"certified", "downgraded", "void"}
    failures: List[str] = []
    for name, phase in sharded.get("phases", {}).items():
        label = f"sharded/{name}"
        outcomes = phase.get("outcomes", {})
        unknown = set(outcomes) - valid_outcomes
        if unknown:
            failures.append(f"{label}: unknown outcome(s) {sorted(unknown)}")
        guarantees = phase.get("guarantees", {})
        bad = set(guarantees) - valid_guarantees
        if bad:
            failures.append(f"{label}: unknown guarantee(s) {sorted(bad)}")
        disposed = sum(outcomes.values()) + len(phase.get("errors", []))
        if disposed != phase.get("offered"):
            failures.append(
                f"{label}: {phase.get('offered')} requests offered but "
                f"{disposed} disposed — requests lost or double-counted"
            )
        if phase.get("errors"):
            failures.append(
                f"{label}: {len(phase['errors'])} request(s) raised instead of "
                f"degrading (first: {phase['errors'][0]}) — never-500 contract broken"
            )
    chaos = sharded.get("phases", {}).get("chaos", {})
    if chaos and chaos.get("killed_pid") is None:
        failures.append("sharded/chaos: no worker was actually killed")
    recovery = sharded.get("recovery", {})
    if not recovery.get("recovered"):
        failures.append(
            f"sharded/recovery: shard {recovery.get('victim_shard')} did not "
            f"return to CERTIFIED answers within the recovery window"
        )
    gate = sharded.get("scaling_gate", {})
    speedup = sharded.get("speedup_vs_single_shard", 0.0)
    if gate.get("enforced") and speedup < gate.get("required_speedup", 1.5):
        failures.append(
            f"sharded: speedup_vs_single_shard={speedup:.3f} < "
            f"{gate.get('required_speedup', 1.5)} on a "
            f"{gate.get('cpu_count')}-core machine — sharding is a regression"
        )
    return failures


def write_bench_doc(doc: Dict[str, object], path: Union[str, Path]) -> Path:
    """Write a bench document as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def _environment() -> Dict[str, object]:
    import multiprocessing

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": multiprocessing.cpu_count(),
    }


def compare_runs(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """Compare two ``bench cube`` documents from the same settings.

    Invariant drift is reported as failures; timing movement is reported
    as ratios (after/before) for the trajectory, never as a failure.
    """
    failures: List[str] = []
    b_inv = before.get("parallel", {}).get("invariants", {})
    a_inv = after.get("parallel", {}).get("invariants", {})
    if before.get("settings") != after.get("settings"):
        failures.append("settings differ; timings are not comparable")
    for key in ("iceberg_cells", "num_samples", "total_sample_tuples", "content_digest"):
        if b_inv.get(key) != a_inv.get(key):
            failures.append(
                f"invariant {key!r} drifted: {b_inv.get(key)} -> {a_inv.get(key)}"
            )
    ratios = {}
    for side in ("serial", "parallel"):
        b = before.get(side, {}).get("wall_seconds")
        a = after.get(side, {}).get("wall_seconds")
        if b and a:
            ratios[side] = a / b
    return {"failures": failures, "wall_ratio_after_over_before": ratios}
