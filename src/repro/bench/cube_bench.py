"""Machine-readable cube benchmarks (``repro bench cube`` / ``bench query``).

These benches seed the repo's performance trajectory: each run emits a
JSON document (``BENCH_cube_init.json`` / ``BENCH_query.json``) with
wall-clock numbers, a per-phase breakdown, the parallel speedup over a
``workers=1`` baseline, and the cube-quality invariants that must NOT
move when only the worker count changes:

- iceberg-cell count and known-cell count,
- number of local samples and total sample tuples,
- per-iceberg-cell achieved loss ``<= θ`` (the paper's guarantee),
- the store content digest — byte-level determinism across workers.

Timings drift with hardware; invariants never may. ``check_cube_doc``
separates the two so CI can gate on drift without flaking on slow
runners. Schema details live in ``benchmarks/README.md``.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.loss.registry import LossRegistry
from repro.core.tabula import GuaranteeStatus, Tabula, TabulaConfig
from repro.data.nyctaxi import generate_nyctaxi
from repro.data.workload import generate_workload
from repro.engine.cube import CubeCells

#: Bump when the emitted JSON layout changes incompatibly.
#: v2 (additive): ``latency_seconds`` gained ``p99``; ``bench query``
#: gained ``clients``/``throughput_qps``; new ``bench serving`` document.
#: v3 (additive): ``bench cube`` gained per-stage ``execution`` audit
#: records and the ``speedup_gate`` block; ``bench query`` gained the
#: ``batch`` section (``--batch``). Every earlier field keeps its name.
SCHEMA_VERSION = 3


@dataclass(frozen=True)
class BenchSettings:
    """Everything that determines a bench run's workload (not its speed)."""

    num_rows: int = 20_000
    seed: int = 0
    attrs: Tuple[str, ...] = ("payment_type", "rate_code", "passenger_count")
    loss_name: str = "mean_loss"
    target: Tuple[str, ...] = ("fare_amount",)
    theta: float = 0.05
    partitions: int = 16

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_rows": self.num_rows,
            "seed": self.seed,
            "attrs": list(self.attrs),
            "loss": self.loss_name,
            "target": list(self.target),
            "theta": self.theta,
            "partitions": self.partitions,
        }


def _make_tabula(table, settings: BenchSettings) -> Tabula:
    loss = LossRegistry().bind(settings.loss_name, settings.target)
    config = TabulaConfig(
        cubed_attrs=settings.attrs,
        threshold=settings.theta,
        loss=loss,
        seed=settings.seed,
        partitions=settings.partitions,
    )
    return Tabula(table, config)


def _build(table, settings: BenchSettings, workers: int):
    """Initialize one cube; returns ``(tabula, report, wall_seconds)``."""
    tabula = _make_tabula(table, settings)
    started = time.perf_counter()
    report = tabula.initialize(workers=workers)
    return tabula, report, time.perf_counter() - started


def cube_invariants(tabula: Tabula, table) -> Dict[str, object]:
    """Quality invariants of a built cube — identical across worker counts.

    ``max_achieved_loss`` re-measures every materialized iceberg-cell
    sample against its raw population, so the reported θ-guarantee is a
    fact about the artifact, not a replay of the builder's bookkeeping.
    """
    store = tabula.store
    loss = tabula.config.loss
    values = loss.extract(table)
    cube = CubeCells(table, tabula.config.cubed_attrs)
    max_loss = 0.0
    for cell in store._cell_to_sample_id:
        sample = store.lookup(cell)
        if sample is None:
            continue
        raw = values[cube.cell_indices(cell)]
        max_loss = max(max_loss, loss.loss(raw, loss.extract(sample)))
    total_sample_tuples = sum(
        sample.num_rows for _, sample in store.sample_table_entries()
    )
    return {
        "iceberg_cells": store.num_iceberg_cells,
        "known_cells": len(store._known_cells),
        "num_samples": store.num_samples,
        "total_sample_tuples": total_sample_tuples,
        "global_sample_size": store.global_sample.size,
        "max_achieved_loss": max_loss,
        "threshold": tabula.config.threshold,
        "loss_bound_ok": bool(max_loss <= tabula.config.threshold + 1e-9),
        "content_digest": store.content_digest(),
    }


def _phase_breakdown(report) -> Dict[str, float]:
    return {
        "dry_run_seconds": report.dry_run_seconds,
        "real_run_seconds": report.real_run_seconds,
        "selection_seconds": report.selection_seconds,
        "total_seconds": report.total_seconds,
    }


def _execution_audit(report) -> Dict[str, Optional[Dict[str, object]]]:
    """Per-stage :class:`~repro.core.parallel.PoolExecution` records.

    ``None`` for a stage means it ran on the serial code path (no pool
    engine involved); a record with ``fallback_kind == "error"`` means
    the pool engine *tried* to fan out and silently fell back inline —
    the regression this bench exists to catch.
    """
    out: Dict[str, Optional[Dict[str, object]]] = {}
    for stage, execution in (
        ("dry_run", getattr(report, "dry_run_execution", None)),
        ("real_run", getattr(report, "real_run_execution", None)),
    ):
        out[stage] = execution.to_dict() if execution is not None else None
    return out


def _speedup_gate(workers: int) -> Dict[str, object]:
    """Whether ``check_cube_doc`` should enforce ``speedup_vs_serial > 1``.

    A 1-core runner cannot show wall-clock speedup from process
    parallelism, so the gate is recorded as not-enforced there (the
    invariant-digest gate stays unconditional). CI pins the bench-smoke
    job to a multi-core runner precisely so this gate is live somewhere.
    """
    import multiprocessing

    cpu_count = multiprocessing.cpu_count()
    if workers < 2:
        return {
            "enforced": False,
            "cpu_count": cpu_count,
            "reason": f"workers={workers} < 2: no parallel run to gate",
        }
    if cpu_count < 2:
        return {
            "enforced": False,
            "cpu_count": cpu_count,
            "reason": f"cpu_count={cpu_count} < 2: speedup unobservable on this machine",
        }
    return {
        "enforced": True,
        "cpu_count": cpu_count,
        "reason": f"cpu_count={cpu_count} >= 2 and workers={workers} >= 2",
    }


def bench_cube(
    settings: Optional[BenchSettings] = None,
    workers: int = 4,
) -> Dict[str, object]:
    """Benchmark cube construction: ``workers=1`` baseline vs ``workers=N``.

    Both runs go through the parallel engine (the serial baseline is
    ``workers=1``), so the byte-identity invariant is exact rather than
    subject to chunked-summation float drift.
    """
    settings = settings or BenchSettings()
    table = generate_nyctaxi(num_rows=settings.num_rows, seed=settings.seed)

    serial_tabula, serial_report, serial_wall = _build(table, settings, workers=1)
    parallel_tabula, parallel_report, parallel_wall = _build(
        table, settings, workers=workers
    )

    serial_inv = cube_invariants(serial_tabula, table)
    parallel_inv = cube_invariants(parallel_tabula, table)
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "cube_init",
        "settings": settings.as_dict(),
        "environment": _environment(),
        "workers": workers,
        "serial": {
            "workers": 1,
            "wall_seconds": serial_wall,
            "phases": _phase_breakdown(serial_report),
            "invariants": serial_inv,
            "execution": _execution_audit(serial_report),
        },
        "parallel": {
            "workers": workers,
            "wall_seconds": parallel_wall,
            "phases": _phase_breakdown(parallel_report),
            "invariants": parallel_inv,
            "execution": _execution_audit(parallel_report),
        },
        "speedup_vs_serial": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "digests_equal": serial_inv["content_digest"] == parallel_inv["content_digest"],
        "speedup_gate": _speedup_gate(workers),
    }


def _latency_stats(latencies: List[float]) -> Dict[str, float]:
    """v1 latency fields plus the v2 tail (p99)."""
    if not latencies:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0, "total": 0.0}
    lat = np.asarray(latencies)
    return {
        "mean": float(lat.mean()),
        "p50": float(np.percentile(lat, 50)),
        "p95": float(np.percentile(lat, 95)),
        "p99": float(np.percentile(lat, 99)),
        "max": float(lat.max()),
        "total": float(lat.sum()),
    }


def bench_query(
    settings: Optional[BenchSettings] = None,
    workers: int = 1,
    num_queries: int = 100,
    workload_seed: int = 0,
    clients: int = 1,
    batch_size: Optional[int] = None,
) -> Dict[str, object]:
    """Benchmark the dashboard query path over a fixed random workload.

    With ``clients > 1`` the same workload is drained by that many
    threads hammering one shared ``Tabula`` — the dashboard's actual
    deployment shape — which exercises the store's swap-generation
    guards and reports aggregate throughput alongside the latency tail.

    With ``batch_size`` set, a second phase replays the same workload
    through a single-worker :class:`ServingGateway` twice — once as
    individual requests, once via ``query_many`` in viewport-sized
    batches (the multi-cell fetch a dashboard pan/zoom issues). Each
    individual request pays one admission-queue round-trip and one
    future handoff; a batch pays that once for ``batch_size`` answers,
    which is the speedup being measured. The document gains a ``batch``
    section: both throughputs, the speedup, and
    ``answers_match_single`` — the equivalence fact ``--check`` gates
    on (throughput is hardware-dependent; the answers never may
    differ).
    """
    settings = settings or BenchSettings()
    table = generate_nyctaxi(num_rows=settings.num_rows, seed=settings.seed)
    tabula, report, _ = _build(table, settings, workers=workers)

    workload = generate_workload(
        table, settings.attrs, num_queries=num_queries, seed=workload_seed
    )
    latencies: List[float] = []
    sources: Dict[str, int] = {}
    guarantees: Dict[str, int] = {}
    record_lock = threading.Lock()

    def run_one(query) -> None:
        started = time.perf_counter()
        result = tabula.query(query)
        elapsed = time.perf_counter() - started
        with record_lock:
            latencies.append(elapsed)
            sources[result.source] = sources.get(result.source, 0) + 1
            name = result.guarantee.name
            guarantees[name] = guarantees.get(name, 0) + 1

    wall_started = time.perf_counter()
    if clients <= 1:
        for query in workload:
            run_one(query)
    else:
        pending = list(workload)
        cursor = {"next": 0}

        def client() -> None:
            while True:
                with record_lock:
                    index = cursor["next"]
                    if index >= len(pending):
                        return
                    cursor["next"] = index + 1
                run_one(pending[index])

        threads = [threading.Thread(target=client) for _ in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    wall = time.perf_counter() - wall_started

    batch_section: Optional[Dict[str, object]] = None
    if batch_size is not None and batch_size > 0:
        from repro.serving.gateway import ServingConfig, ServingGateway

        gateway = ServingGateway(
            tabula,
            config=ServingConfig(workers=1, queue_depth=max(batch_size, 64)),
        )
        with gateway:
            # Warm pass so both measured passes see the same caches.
            gateway.query_many(workload[:batch_size])

            single_started = time.perf_counter()
            single_results = [gateway.query(query) for query in workload]
            single_wall = time.perf_counter() - single_started

            batch_started = time.perf_counter()
            batch_results: List = []
            for start in range(0, len(workload), batch_size):
                batch_results.extend(
                    gateway.query_many(workload[start : start + batch_size])
                )
            batch_wall = time.perf_counter() - batch_started

        answers_match = len(single_results) == len(batch_results) and all(
            s.source == b.source
            and s.guarantee == b.guarantee
            and s.outcome == b.outcome
            and s.cell == b.cell
            and s.sample.to_pydict() == b.sample.to_pydict()
            for s, b in zip(single_results, batch_results)
        )
        batch_section = {
            "batch_size": batch_size,
            "num_queries": len(workload),
            "single_wall_seconds": single_wall,
            "single_throughput_qps": len(workload) / single_wall if single_wall > 0 else 0.0,
            "batch_wall_seconds": batch_wall,
            "batch_throughput_qps": len(workload) / batch_wall if batch_wall > 0 else 0.0,
            "speedup_vs_single": single_wall / batch_wall if batch_wall > 0 else 0.0,
            "answers_match_single": answers_match,
        }

    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "query",
        "settings": settings.as_dict(),
        "environment": _environment(),
        "workers": workers,
        "clients": clients,
        "num_queries": len(workload),
        "latency_seconds": _latency_stats(latencies),
        "throughput_qps": len(workload) / wall if wall > 0 else 0.0,
        "source_mix": sources,
        "guarantee_mix": guarantees,
        "void_answers": guarantees.get(GuaranteeStatus.VOID.name, 0),
        "init_total_seconds": report.total_seconds,
        "invariants": cube_invariants(tabula, table),
        "batch": batch_section,
    }


def bench_serving(
    settings: Optional[BenchSettings] = None,
    workers: int = 2,
    queue_depth: int = 4,
    clients: int = 16,
    num_queries: int = 200,
    min_service_seconds: float = 0.002,
    deadline_seconds: Optional[float] = None,
    workload_seed: int = 0,
) -> Dict[str, object]:
    """Benchmark the serving gateway in a steady and an overloaded regime.

    Two phases over the same workload:

    - **steady** — a well-provisioned gateway (no artificial service
      floor, clients ≤ workers): the baseline latency tail.
    - **overload** — a deliberately under-provisioned gateway
      (``min_service_seconds`` service floor, ``clients`` ≫ workers +
      queue): offered load exceeds capacity, so the gateway *must* shed;
      the document records throughput, shed rate and the p99 of the
      requests that were actually served.

    Shedding is the designed overload response, so ``shed_rate`` is a
    descriptive metric here — ``check_serving_doc`` gates the accounting
    invariants (every request disposed exactly once, outcomes well
    formed), never the timing- and scheduler-dependent rate itself.
    """
    from repro.serving.breaker import BreakerConfig
    from repro.serving.gateway import ServingConfig, ServingGateway

    settings = settings or BenchSettings()
    table = generate_nyctaxi(num_rows=settings.num_rows, seed=settings.seed)
    tabula, _, _ = _build(table, settings, workers=1)
    workload = generate_workload(
        table, settings.attrs, num_queries=num_queries, seed=workload_seed
    )

    def run_phase(config: ServingConfig, phase_clients: int) -> Dict[str, object]:
        gateway = ServingGateway(tabula, config=config)
        outcomes: Dict[str, int] = {}
        served_latencies: List[float] = []
        lock = threading.Lock()
        cursor = {"next": 0}

        def client() -> None:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(workload):
                        return
                    cursor["next"] = index + 1
                response = gateway.query(
                    workload[index], deadline_seconds=deadline_seconds
                )
                with lock:
                    outcomes[response.outcome.value] = (
                        outcomes.get(response.outcome.value, 0) + 1
                    )
                    if response.answered:
                        served_latencies.append(response.elapsed_seconds)

        threads = [threading.Thread(target=client) for _ in range(phase_clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        stats = gateway.stats()
        gateway.close()
        served = sum(
            count for name, count in outcomes.items() if name not in ("shed",)
        )
        return {
            "clients": phase_clients,
            "workers": config.workers,
            "queue_depth": config.queue_depth,
            "min_service_seconds": config.min_service_seconds,
            "offered": len(workload),
            "outcomes": outcomes,
            "served": served,
            "shed": outcomes.get("shed", 0),
            "shed_rate": outcomes.get("shed", 0) / len(workload) if workload else 0.0,
            "throughput_rps": len(workload) / wall if wall > 0 else 0.0,
            "latency_seconds": _latency_stats(served_latencies),
            "breaker": stats["breaker"],
        }

    steady = run_phase(
        ServingConfig(
            workers=max(workers, 4),
            queue_depth=max(queue_depth, len(workload)),
            breaker=BreakerConfig(),
        ),
        phase_clients=min(clients, max(workers, 4)),
    )
    overload = run_phase(
        ServingConfig(
            workers=workers,
            queue_depth=queue_depth,
            min_service_seconds=min_service_seconds,
            breaker=BreakerConfig(),
        ),
        phase_clients=clients,
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "serving",
        "settings": settings.as_dict(),
        "environment": _environment(),
        "deadline_seconds": deadline_seconds,
        "phases": {"steady": steady, "overload": overload},
    }


def check_cube_doc(doc: Dict[str, object]) -> List[str]:
    """Validate a ``bench cube`` document's quality invariants.

    Returns human-readable failure strings (empty = healthy). Timings
    are deliberately NOT checked — only determinism and the θ-bound,
    which must hold on any hardware.
    """
    failures: List[str] = []
    if not doc.get("digests_equal"):
        failures.append(
            "content digest drifted between workers=1 and workers=N builds"
        )
    for side in ("serial", "parallel"):
        inv = doc.get(side, {}).get("invariants", {})
        if not inv.get("loss_bound_ok"):
            failures.append(
                f"{side}: max achieved loss {inv.get('max_achieved_loss')} "
                f"exceeds threshold {inv.get('threshold')}"
            )
    serial_inv = doc.get("serial", {}).get("invariants", {})
    parallel_inv = doc.get("parallel", {}).get("invariants", {})
    for key in ("iceberg_cells", "known_cells", "num_samples", "total_sample_tuples"):
        if serial_inv.get(key) != parallel_inv.get(key):
            failures.append(
                f"invariant {key!r} differs: serial={serial_inv.get(key)} "
                f"parallel={parallel_inv.get(key)}"
            )
    # A parallel build that silently degraded to inline execution is the
    # regression this bench exists to catch — fail it even though the
    # invariants (necessarily) still hold.
    for stage, execution in (doc.get("parallel", {}).get("execution") or {}).items():
        if execution and execution.get("fallback_kind") == "error":
            failures.append(
                f"parallel {stage}: pool fan-out silently degraded to inline "
                f"({execution.get('fallback_reason', 'unknown reason')})"
            )
    gate = doc.get("speedup_gate", {})
    if gate.get("enforced") and doc.get("speedup_vs_serial", 0.0) <= 1.0:
        failures.append(
            f"speedup_vs_serial={doc.get('speedup_vs_serial'):.3f} <= 1.0 on a "
            f"{gate.get('cpu_count')}-core machine — parallel build is a regression"
        )
    return failures


def check_query_doc(doc: Dict[str, object]) -> List[str]:
    """Validate a ``bench query`` document: θ-bound holds, no VOID answers."""
    failures: List[str] = []
    inv = doc.get("invariants", {})
    if not inv.get("loss_bound_ok"):
        failures.append(
            f"max achieved loss {inv.get('max_achieved_loss')} exceeds "
            f"threshold {inv.get('threshold')}"
        )
    if doc.get("void_answers", 0):
        failures.append(f"{doc['void_answers']} VOID answer(s) in the workload")
    batch = doc.get("batch")
    if batch and not batch.get("answers_match_single"):
        failures.append(
            "batched query_many answers diverged from sequential query answers"
        )
    return failures


def check_serving_doc(doc: Dict[str, object]) -> List[str]:
    """Validate a ``bench serving`` document's accounting invariants.

    Gated: every offered request disposed exactly once, outcome names
    well formed, shed count consistent. NOT gated: shed rate, throughput
    and latencies — those are scheduler- and hardware-dependent.
    """
    valid_outcomes = {"ok", "degraded", "shed", "deadline_exceeded", "circuit_open"}
    failures: List[str] = []
    for name, phase in doc.get("phases", {}).items():
        outcomes = phase.get("outcomes", {})
        unknown = set(outcomes) - valid_outcomes
        if unknown:
            failures.append(f"{name}: unknown outcome(s) {sorted(unknown)}")
        disposed = sum(outcomes.values())
        if disposed != phase.get("offered"):
            failures.append(
                f"{name}: {phase.get('offered')} requests offered but "
                f"{disposed} disposed — requests lost or double-counted"
            )
        if phase.get("shed") != outcomes.get("shed", 0):
            failures.append(f"{name}: shed count inconsistent with outcomes")
        if phase.get("served", 0) + phase.get("shed", 0) != disposed:
            failures.append(f"{name}: served + shed != disposed")
    return failures


def write_bench_doc(doc: Dict[str, object], path: Union[str, Path]) -> Path:
    """Write a bench document as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def _environment() -> Dict[str, object]:
    import multiprocessing

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": multiprocessing.cpu_count(),
    }


def compare_runs(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """Compare two ``bench cube`` documents from the same settings.

    Invariant drift is reported as failures; timing movement is reported
    as ratios (after/before) for the trajectory, never as a failure.
    """
    failures: List[str] = []
    b_inv = before.get("parallel", {}).get("invariants", {})
    a_inv = after.get("parallel", {}).get("invariants", {})
    if before.get("settings") != after.get("settings"):
        failures.append("settings differ; timings are not comparable")
    for key in ("iceberg_cells", "num_samples", "total_sample_tuples", "content_digest"):
        if b_inv.get(key) != a_inv.get(key):
            failures.append(
                f"invariant {key!r} drifted: {b_inv.get(key)} -> {a_inv.get(key)}"
            )
    ratios = {}
    for side in ("serial", "parallel"):
        b = before.get(side, {}).get("wall_seconds")
        a = after.get(side, {}).get("wall_seconds")
        if b and a:
            ratios[side] = a / b
    return {"failures": failures, "wall_ratio_after_over_before": ratios}
