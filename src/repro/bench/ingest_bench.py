"""Machine-readable streaming-ingest benchmark (``repro bench ingest``).

One run drives the full crash-safe ingest pipeline the way a dashboard
deployment would: writer threads submit micro-batches through the
bounded queue (retrying on typed backpressure), query clients keep
reading the same cube the whole time, and the maintainer applies
batches in the background. The emitted ``BENCH_ingest.json`` records
three kinds of facts:

- **throughput trajectory** — durable rows/second, applied catch-up
  time, and query latency under ingest vs an idle baseline. Timings
  drift with hardware and are never gated (except the coarse
  ``latency_gate``, which follows the ``speedup_gate`` skip-with-reason
  convention);
- **accounting invariants** — every offered submission disposed exactly
  once (accepted / backpressured / rejected-closed), zero untyped
  failures on either the writer or the query side, the queue bound
  never exceeded, and ``applied_seq`` catching ``durable_seq`` once
  writers stop. These must hold on any hardware and ``--check`` gates
  them;
- **recovery equivalence** — after the live run, a fresh cube built
  from the same base table replays the run's WAL/journal through
  :func:`~repro.ingest.stream.recover_ingest`; its content digest must
  equal the live cube's. This is the crash-safety contract measured as
  a byte-level fact rather than asserted in prose.

Schema details live in ``benchmarks/README.md``.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.cube_bench import (
    SCHEMA_VERSION,
    BenchSettings,
    _build,
    _environment,
    _latency_stats,
)
from repro.data.nyctaxi import generate_nyctaxi
from repro.data.workload import generate_workload

__all__ = ["bench_ingest", "check_ingest_doc"]


def _latency_gate(query_clients: int) -> Dict[str, object]:
    """Whether ``check_ingest_doc`` should enforce the p99-under-ingest bound.

    The gate asks for ingest-phase query p99 ≤ 2x the idle baseline
    (with a small absolute floor so microsecond-scale baselines don't
    turn scheduler jitter into failures). On a <4-core machine the
    writer, maintainer and query threads contend for the same cores and
    the ratio measures the scheduler, not the pipeline — recorded but
    not enforced there, mirroring ``speedup_gate``.
    """
    import multiprocessing

    cpu_count = multiprocessing.cpu_count()
    if cpu_count < 4:
        return {
            "enforced": False,
            "cpu_count": cpu_count,
            "required_ratio": 2.0,
            "floor_seconds": 0.005,
            "reason": (
                f"cpu_count={cpu_count} < 4: ingest/query threads share cores, "
                "the latency ratio measures the scheduler"
            ),
        }
    return {
        "enforced": True,
        "cpu_count": cpu_count,
        "required_ratio": 2.0,
        "floor_seconds": 0.005,
        "reason": f"cpu_count={cpu_count} >= 4 with {query_clients} query client(s)",
    }


def bench_ingest(
    settings: Optional[BenchSettings] = None,
    batches: int = 30,
    batch_rows: int = 50,
    writers: int = 2,
    query_clients: int = 2,
    num_queries: int = 80,
    maintain_delay_seconds: float = 0.0,
    max_queued_rows: int = 2048,
    workload_seed: int = 0,
    ingest_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Benchmark the streaming-ingest pipeline under concurrent queries.

    Four phases over one cube:

    - **idle** — the query workload against the pre-ingest cube: the
      latency baseline;
    - **ingest** — ``writers`` threads submit ``batches`` micro-batches
      of ``batch_rows`` rows (retrying on backpressure, never dropping)
      while ``query_clients`` threads keep draining the workload and
      recording per-answer staleness;
    - **drain** — writers done; wait for ``applied_seq`` to catch
      ``durable_seq`` and record how long the catch-up took;
    - **recovery** — rebuild the base cube from scratch and replay the
      run's WAL/journal through ``recover_ingest``; the digests must
      match byte-for-byte.

    ``maintain_delay_seconds`` artificially slows the maintainer so the
    backpressure and staleness paths actually exercise (drills only;
    keep 0 for throughput numbers).
    """
    from repro.ingest.stream import IngestConfig, StreamIngestor, recover_ingest
    from repro.serving.gateway import ServingGateway

    settings = settings or BenchSettings()
    table = generate_nyctaxi(num_rows=settings.num_rows, seed=settings.seed)
    tabula, _, _ = _build(table, settings, workers=1)
    queries = [
        dict(q)
        for q in generate_workload(
            table, settings.attrs, num_queries=num_queries, seed=workload_seed
        )
    ]
    delta = generate_nyctaxi(num_rows=batches * batch_rows, seed=settings.seed + 1)

    gateway = ServingGateway(tabula)

    # ---- idle baseline -------------------------------------------------
    idle_latencies: List[float] = []
    for where in queries:
        response = gateway.query(where)
        idle_latencies.append(response.elapsed_seconds)

    # ---- live ingest under concurrent queries --------------------------
    directory = Path(ingest_dir) if ingest_dir else Path(tempfile.mkdtemp(prefix="bench_ingest_"))
    directory.mkdir(parents=True, exist_ok=True)
    wal_path = directory / "ingest.wal"
    journal_path = directory / "maintenance.journal"
    config = IngestConfig(
        max_queued_rows=max_queued_rows,
        flush_interval_seconds=0.005,
        maintain_delay_seconds=maintain_delay_seconds,
    )
    ingestor = StreamIngestor(tabula, wal_path, journal_path, config=config)
    gateway.attach_ingestor(ingestor)

    lock = threading.Lock()
    cursor = {"next": 0}
    submit_errors: List[str] = []
    query_errors: List[str] = []
    ingest_latencies: List[float] = []
    staleness_samples: List[int] = []
    state = {
        "backpressure_retries": 0,
        "max_queued_rows_observed": 0,
        "writers_done": False,
    }

    def writer() -> None:
        while True:
            with lock:
                index = cursor["next"]
                if index >= batches:
                    return
                cursor["next"] = index + 1
            rows = delta.slice(index * batch_rows, (index + 1) * batch_rows)
            seed = 1_000_000 + index  # client-stable idempotency key
            deadline = time.monotonic() + 60.0
            while True:
                result = ingestor.submit(rows, seed=seed, wait_durable=True)
                with lock:
                    state["max_queued_rows_observed"] = max(
                        state["max_queued_rows_observed"], result.queued_rows
                    )
                if result.accepted:
                    return_code = None
                    break
                if result.outcome.value == "backpressure":
                    with lock:
                        state["backpressure_retries"] += 1
                    if time.monotonic() > deadline:
                        return_code = f"batch {index}: backpressure never cleared"
                        break
                    time.sleep(result.retry_after_seconds)
                    continue
                return_code = f"batch {index}: rejected as closed: {result.detail}"
                break
            if return_code is not None:
                with lock:
                    submit_errors.append(return_code)

    def query_client() -> None:
        position = 0
        while True:
            with lock:
                if state["writers_done"]:
                    return
            where = queries[position % len(queries)]
            position += 1
            try:
                response = gateway.query(where)
            except Exception as exc:  # untyped failure — the gated bug
                with lock:
                    query_errors.append(f"{type(exc).__name__}: {exc}")
                return
            with lock:
                ingest_latencies.append(response.elapsed_seconds)
                staleness_samples.append(response.staleness_batches)

    writer_threads = [threading.Thread(target=writer) for _ in range(max(1, writers))]
    query_threads = [
        threading.Thread(target=query_client) for _ in range(max(0, query_clients))
    ]
    ingest_started = time.perf_counter()
    for thread in writer_threads + query_threads:
        thread.start()
    for thread in writer_threads:
        thread.join()
    submit_wall = time.perf_counter() - ingest_started

    # ---- drain: applied catches durable --------------------------------
    drain_started = time.perf_counter()
    caught_up = ingestor.wait_applied(timeout=120.0)
    catchup_seconds = time.perf_counter() - drain_started
    with lock:
        state["writers_done"] = True
    for thread in query_threads:
        thread.join()
    stats = ingestor.stats()
    ingestor.close(drain=True)

    # ---- recovery equivalence ------------------------------------------
    fresh, _, _ = _build(table, settings, workers=1)
    recovery = recover_ingest(fresh, wal_path, journal_path)
    live_digest = tabula.store.content_digest()
    recovered_digest = fresh.store.content_digest()
    gateway.close()

    rows_ingested = batches * batch_rows
    watermarks = dict(stats["watermarks"])
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "ingest",
        "settings": settings.as_dict(),
        "environment": _environment(),
        "workload": {
            "batches": batches,
            "batch_rows": batch_rows,
            "writers": max(1, writers),
            "query_clients": max(0, query_clients),
            "num_queries": num_queries,
        },
        "config": {
            "max_queued_rows": config.max_queued_rows,
            "max_queued_batches": config.max_queued_batches,
            "maintain_delay_seconds": config.maintain_delay_seconds,
        },
        "idle": {
            "offered": len(queries),
            "latency_seconds": _latency_stats(idle_latencies),
        },
        "ingest": {
            "rows_ingested": rows_ingested,
            "submit_wall_seconds": submit_wall,
            "durable_rows_per_second": (
                rows_ingested / submit_wall if submit_wall > 0 else 0.0
            ),
            "applied_catchup_seconds": catchup_seconds,
            "applied_caught_up": bool(caught_up),
            "backpressure_retries": state["backpressure_retries"],
            "max_queued_rows_observed": state["max_queued_rows_observed"],
            "queue_bound_rows": config.max_queued_rows,
            "submit_errors": submit_errors,
            "query_errors": query_errors,
            "queries_answered": len(ingest_latencies),
            "latency_seconds": _latency_stats(ingest_latencies),
            "max_staleness_batches": max(staleness_samples) if staleness_samples else 0,
            "counters": dict(stats["counters"]),
            "watermarks": watermarks,
            "pipeline_failure": str(stats["failure"]),
        },
        "recovery": {
            "digests_equal": live_digest == recovered_digest,
            "live_digest": live_digest,
            "recovered_digest": recovered_digest,
            "replayed_plans": recovery.replayed_plans,
            "reapplied_batches": recovery.reapplied_batches,
            "skipped_batches": recovery.skipped_batches,
            "dropped_wal_lines": recovery.dropped_wal_lines,
            "rows_after": fresh.table.num_rows,
        },
        "latency_gate": _latency_gate(query_clients),
    }


def check_ingest_doc(doc: Dict[str, object]) -> List[str]:
    """Validate a ``bench ingest`` document's robustness invariants.

    Gated: submission accounting closes (offered = accepted +
    backpressured + rejected-closed, and exactly-once apply), zero
    untyped failures, the queue bound held, applied caught durable, the
    recovery digest matches the live cube. NOT gated: throughput,
    catch-up time and latency percentiles — hardware-dependent — except
    the coarse ``latency_gate`` ratio when ``enforced``.
    """
    failures: List[str] = []
    ingest = doc.get("ingest", {})
    counters = ingest.get("counters", {})
    offered = counters.get("offered", 0)
    disposed = (
        counters.get("accepted", 0)
        + counters.get("backpressured", 0)
        + counters.get("rejected_closed", 0)
    )
    if offered != disposed:
        failures.append(
            f"ingest: {offered} submissions offered but {disposed} disposed — "
            "a batch was lost or double-counted"
        )
    if counters.get("rejected_closed", 0):
        failures.append(
            f"ingest: {counters['rejected_closed']} submission(s) rejected as "
            "closed while the pipeline was open"
        )
    # applied_batches counts every disposed batch (deduplicated_batches
    # is the subset acknowledged without re-applying).
    if counters.get("applied_batches", 0) != counters.get("accepted", 0):
        failures.append(
            f"ingest: {counters.get('accepted', 0)} accepted batches but "
            f"{counters.get('applied_batches', 0)} disposed by the maintainer "
            "— exactly-once accounting broken"
        )
    for key in ("submit_errors", "query_errors"):
        errors = ingest.get(key) or []
        if errors:
            failures.append(
                f"ingest: {len(errors)} untyped {key.replace('_', ' ')} "
                f"(first: {errors[0]})"
            )
    if ingest.get("pipeline_failure"):
        failures.append(f"ingest: pipeline failed: {ingest['pipeline_failure']}")
    if not ingest.get("applied_caught_up"):
        failures.append("ingest: applied_seq never caught durable_seq after drain")
    watermarks = ingest.get("watermarks", {})
    if watermarks.get("lag_batches", 0) or watermarks.get("queued_rows", 0):
        failures.append(
            f"ingest: residual lag after drain — watermarks {watermarks}"
        )
    observed = ingest.get("max_queued_rows_observed", 0)
    bound = ingest.get("queue_bound_rows", 0)
    if bound and observed > bound:
        failures.append(
            f"ingest: observed queue depth {observed} rows exceeds the "
            f"configured bound {bound} — backpressure is not bounding memory"
        )
    recovery = doc.get("recovery", {})
    if not recovery.get("digests_equal"):
        failures.append(
            "recovery: replaying the WAL/journal onto a fresh base cube "
            f"produced digest {recovery.get('recovered_digest')!r} != live "
            f"digest {recovery.get('live_digest')!r}"
        )
    if recovery.get("dropped_wal_lines", 0):
        failures.append(
            f"recovery: {recovery['dropped_wal_lines']} torn WAL line(s) in a "
            "run with no injected crash"
        )
    gate = doc.get("latency_gate", {})
    if gate.get("enforced"):
        idle_p99 = doc.get("idle", {}).get("latency_seconds", {}).get("p99", 0.0)
        ingest_p99 = ingest.get("latency_seconds", {}).get("p99", 0.0)
        baseline = max(idle_p99, gate.get("floor_seconds", 0.005))
        ratio = gate.get("required_ratio", 2.0)
        if ingest_latencies_gated(ingest) and ingest_p99 > baseline * ratio:
            failures.append(
                f"ingest: query p99 {ingest_p99:.4f}s under ingest exceeds "
                f"{ratio}x the idle baseline ({baseline:.4f}s) on a "
                f"{gate.get('cpu_count')}-core machine"
            )
    return failures


def ingest_latencies_gated(ingest: Dict[str, object]) -> bool:
    """The latency gate needs a real sample to be meaningful."""
    return int(ingest.get("queries_answered", 0)) >= 20
