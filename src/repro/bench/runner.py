"""Run a query workload through an approach and collect paper metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.base import Approach, ApproachAnswer, select_population
from repro.bench.metrics import LossSummary, TimingSummary
from repro.core.loss.base import LossFunction
from repro.engine.table import Table
from repro.viz.dashboard import Dashboard


@dataclass(frozen=True)
class WorkloadMetrics:
    """Everything Section V reports for one (approach, workload) pair."""

    approach: str
    data_system: TimingSummary
    visualization: Optional[TimingSummary]
    actual_loss: LossSummary
    answer_rows_mean: float

    @property
    def data_to_visualization_mean(self) -> float:
        viz = self.visualization.mean if self.visualization else 0.0
        return self.data_system.mean + viz


def actual_loss_of_answer(
    table: Table,
    query: Dict[str, object],
    answer: ApproachAnswer,
    loss: LossFunction,
) -> float:
    """Realized accuracy loss of one answer against the raw population.

    Aggregate answers (SnappyData's AVG) are scored with the relative
    mean error — the same quantity the mean loss function measures.
    """
    raw = select_population(table, query)
    if answer.aggregate is not None:
        values = loss.extract(raw)
        if values.ndim != 1:
            raise ValueError("aggregate answers only support 1-D target attributes")
        if len(values) == 0:
            return 0.0
        raw_mean = float(np.mean(values))
        if raw_mean == 0.0:
            return 0.0 if answer.aggregate == 0.0 else float("inf")
        return abs((raw_mean - answer.aggregate) / raw_mean)
    return loss.loss_tables(raw, answer.sample)


def run_workload(
    approach: Approach,
    table: Table,
    queries: Sequence[Dict[str, object]],
    loss: LossFunction,
    dashboard: Optional[Dashboard] = None,
    measure_loss: bool = True,
) -> WorkloadMetrics:
    """Answer every query; collect timing, loss and answer-size metrics.

    Args:
        approach: an initialized (or initializable) approach.
        table: the raw table, for ground-truth loss evaluation.
        queries: the shared workload.
        loss: the loss function scoring realized accuracy.
        dashboard: when given, run its visual-analysis task on every
            answer and record the visualization time (Table II).
        measure_loss: disable to skip the (expensive) raw-population
            ground-truth pass for timing-only sweeps.
    """
    approach.initialize()
    ds_times = []
    viz_times = []
    losses = []
    rows = []
    for query in queries:
        answer = approach.answer(query)
        ds_times.append(answer.data_system_seconds)
        rows.append(answer.sample.num_rows)
        if dashboard is not None and answer.aggregate is None:
            interaction_started = time.perf_counter()
            dashboard.analyze(answer.sample)
            viz_times.append(time.perf_counter() - interaction_started)
        if measure_loss:
            losses.append(actual_loss_of_answer(table, query, answer, loss))
    return WorkloadMetrics(
        approach=approach.name,
        data_system=TimingSummary.of(ds_times),
        visualization=TimingSummary.of(viz_times) if dashboard is not None else None,
        actual_loss=LossSummary.of(losses) if measure_loss else LossSummary.of([]),
        answer_rows_mean=float(np.mean(rows)) if rows else 0.0,
    )
