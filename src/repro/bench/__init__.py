"""Benchmark harness: metrics, runners and paper-style reporting.

Every figure/table of Section V has a bench in ``benchmarks/`` built on
these utilities; :mod:`repro.bench.runner` runs a workload through an
approach and collects the exact quantities the paper plots
(initialization time per stage, memory footprint per component,
data-system time, actual accuracy loss with min/avg/max error bars,
query answer size, visualization time).
"""

from repro.bench.metrics import LossSummary, TimingSummary, format_bytes, format_seconds
from repro.bench.reporting import print_series, print_table
from repro.bench.runner import WorkloadMetrics, actual_loss_of_answer, run_workload

__all__ = [
    "LossSummary",
    "TimingSummary",
    "WorkloadMetrics",
    "actual_loss_of_answer",
    "format_bytes",
    "format_seconds",
    "print_series",
    "print_table",
    "run_workload",
]
