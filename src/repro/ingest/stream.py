"""Crash-safe streaming ingest: bounded queue → WAL → background apply.

The pipeline turns the synchronous ``append_rows`` batch call into a
continuously fed, continuously served system with explicit robustness
semantics:

- **bounded admission, typed backpressure** — ``submit(rows)`` either
  accepts into a bounded in-memory queue or returns a typed
  ``BACKPRESSURE`` outcome carrying a retry-after hint. There is no
  unbounded buffer and no silent drop: every offered batch is accounted
  as accepted, backpressured, or rejected-closed;
- **group-commit durability** — a writer thread drains the queue into
  the CRC-framed ingest WAL with one fsync per micro-batch group, then
  publishes the ``durable_seq`` watermark. Durability is acknowledged
  per batch (``submit`` can wait on it), and many concurrent submitters
  share a single disk sync;
- **background maintenance** — a maintainer thread applies durable
  batches through the journaled ``append_rows`` plan/apply protocol
  (exactly-once by content-hashed batch id) and publishes
  ``applied_seq``. When it lags, queries keep serving the pre-append
  state — staleness is *visible* (``durable_seq - applied_seq``), never
  silent — and the bounded queue eventually pushes back on writers;
- **drift sweeps** — every N applied batches the maintainer runs a
  bounded :func:`~repro.ingest.drift.run_drift_sweep`, demoting
  materialized cells the global sample now covers and
  promoting/repairing cells whose exact loss crossed θ;
- **kill -9 anywhere** — every stage carries a registered fault point
  (enqueue → WAL write → WAL durable → apply start → apply done →
  drift), and :func:`recover_ingest` replays the WAL through the
  journal's committed-batch ledger so recovery is exactly-once whether
  the crash hit before, during, or after an apply.

Client-stable seeds: the ``seed`` passed to ``submit`` (default: the
assigned sequence number) is the batch's idempotency key — a client
that re-submits the same rows with the same seed after a crash lands on
the same batch id and is deduplicated, while intentional duplicate
data needs a fresh seed.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from collections import deque

from repro.core.maintenance import append_rows, batch_id_for, recover_journal
from repro.core.tabula import Tabula
from repro.engine.table import Table
from repro.errors import TabulaError
from repro.ingest.drift import run_drift_sweep
from repro.ingest.wal import IngestWAL, WalBatch
from repro.resilience.faults import fault_point, register_fault_point
from repro.resilience.journal import MaintenanceJournal
from repro.sanitizer import create_lock, guarded_by

FP_ACCEPT = register_fault_point(
    "ingest.accept",
    "batch accepted into the bounded queue, nothing durable yet "
    "(a crash here loses only unacknowledged rows)",
)
FP_APPLY_START = register_fault_point(
    "ingest.apply.start",
    "durable batch dequeued by the maintainer, maintenance apply not started",
)
FP_APPLY_DONE = register_fault_point(
    "ingest.apply.done",
    "batch applied and journal-committed, applied watermark not yet published",
)
FP_DRIFT = register_fault_point(
    "ingest.drift.sweep",
    "drift sweep about to plan+apply one bounded promotion/demotion cycle",
)


class IngestOutcome(enum.Enum):
    """How ``submit`` disposed of one offered batch.

    - ``ACCEPTED`` — queued (and, when ``wait_durable`` held, fsynced);
    - ``BACKPRESSURE`` — the bounded queue is full; retry after the
      hinted delay. The rows were *not* buffered anywhere;
    - ``CLOSED`` — the ingestor is closed or its pipeline has failed;
      nothing was queued.
    """

    ACCEPTED = "accepted"
    BACKPRESSURE = "backpressure"
    CLOSED = "closed"


@dataclass(frozen=True)
class SubmitResult:
    """Typed disposal of one ``submit`` call — never a silent drop."""

    outcome: IngestOutcome
    seq: int = 0
    durable: bool = False
    retry_after_seconds: float = 0.0
    queued_rows: int = 0
    detail: str = ""

    @property
    def accepted(self) -> bool:
        return self.outcome is IngestOutcome.ACCEPTED


@dataclass(frozen=True)
class IngestConfig:
    """Pipeline sizing and pacing knobs.

    Attributes:
        max_queued_rows: bound on accepted-but-not-yet-applied rows;
            beyond it ``submit`` returns ``BACKPRESSURE``. This is the
            lever that makes a lagging maintainer *visible* to writers
            instead of an unbounded buffer.
        max_queued_batches: companion bound on batch count (guards
            against floods of tiny batches).
        flush_interval_seconds: writer-thread poll when idle; the group
            commit window. Submissions arriving within one window share
            one fsync.
        retry_after_seconds: hint carried by ``BACKPRESSURE`` results.
        maintain_delay_seconds: artificial pause before each apply.
            Zero in production; tests and the progressive-query demos
            raise it to create a deterministically lagging maintainer.
        drift_interval_batches: run one drift sweep every N applied
            batches (0 disables sweeping).
        drift_max_cells: bounded work per drift cycle.
    """

    max_queued_rows: int = 8192
    max_queued_batches: int = 64
    flush_interval_seconds: float = 0.02
    retry_after_seconds: float = 0.05
    maintain_delay_seconds: float = 0.0
    drift_interval_batches: int = 0
    drift_max_cells: int = 16

    def __post_init__(self) -> None:
        if self.max_queued_rows < 1:
            raise ValueError(f"max_queued_rows must be >= 1, got {self.max_queued_rows}")
        if self.max_queued_batches < 1:
            raise ValueError(
                f"max_queued_batches must be >= 1, got {self.max_queued_batches}"
            )


@dataclass(frozen=True)
class IngestRecovery:
    """What :func:`recover_ingest` replayed after a restart."""

    replayed_plans: int      # journaled-but-uncommitted plans finished
    reapplied_batches: int   # durable WAL batches applied fresh
    skipped_batches: int     # WAL batches already committed (dedup)
    durable_seq: int
    dropped_wal_lines: int   # torn tail truncated from the WAL


def recover_ingest(
    tabula: Tabula,
    wal_path: Union[str, Path],
    journal_path: Union[str, Path],
) -> IngestRecovery:
    """Replay the ingest WAL after a crash — exactly-once per batch.

    ``tabula`` may be restored to *any* point along the pipeline's
    deterministic state sequence: the pre-ingest base (the common
    restart path — re-initialize or reload the cube file that predates
    the WAL), a mid-stream snapshot, or an in-memory instance that
    survived with a half-applied batch. Recovery locates the restored
    state on the batch-boundary ladder anchored by the WAL's recorded
    base row count, then walks the WAL in seq order:

    - effects already in the state **and** committed → skip (the batch
      is done);
    - delta concatenated but store possibly partial (a crash mid-apply
      on a surviving instance) → converge from the journaled plan's
      post-states and commit it;
    - effects absent → re-apply. A batch the ledger already marks
      committed (the ledger outlived a snapshot that predates it) is
      re-applied from its journaled plan payload — identical post-states,
      no randomness — while a batch that never reached the journal goes
      through the normal journaled ``append_rows``.

    The content-hashed batch id ties all three cases together: no batch
    is lost, none is applied twice.

    Raises:
        JournalCorruptionError: interior damage (TAB509) in either log;
            nothing is replayed past it.
        TabulaError: the restored state does not lie on this WAL's
            batch-boundary ladder (wrong cube for these logs).
    """
    from repro.core.maintenance import _plan_from_payload, apply_plan, plan_append

    journal = MaintenanceJournal(journal_path)
    wal = IngestWAL(wal_path)
    wal.check_readable()
    journal.check_readable()
    result = wal.read_batches()
    payloads = journal.plan_payloads()
    base_rows = result.base_rows
    if base_rows is None:
        base_rows = tabula.table.num_rows - sum(
            b.rows.num_rows for b in result.batches
        )
        if base_rows < 0:
            base_rows = tabula.table.num_rows
    replayed = reapplied = skipped = 0
    with tabula.write_lock:
        expected = base_rows
        for batch in result.batches:
            boundary_after = expected + batch.rows.num_rows
            rows_now = tabula.table.num_rows
            batch_id = batch_id_for(batch.seed, batch.rows)
            committed = journal.is_committed(batch_id)
            payload = payloads.get(batch_id)
            if rows_now >= boundary_after:
                if committed:
                    skipped += 1
                elif payload is not None:
                    # Delta already concatenated, store possibly
                    # partial: converge from the journaled post-states.
                    apply_plan(tabula, _plan_from_payload(payload))
                    journal.commit(batch_id)
                    replayed += 1
                else:
                    skipped += 1
            else:
                if rows_now != expected:
                    raise TabulaError(
                        f"restored table has {rows_now} rows but ingest batch "
                        f"seq {batch.seq} expects the boundary {expected}; the "
                        "cube does not belong to this WAL/journal pair"
                    )
                if payload is not None:
                    # Journaled plan (committed or not) beats fresh
                    # planning: identical post-states, no randomness.
                    apply_plan(tabula, _plan_from_payload(payload))
                    if not committed:
                        journal.commit(batch_id)
                    reapplied += 1
                elif committed:
                    # Commit marker without a payload cannot happen via
                    # the pipeline (plans are logged before commit), but
                    # re-derive deterministically rather than lose rows.
                    plan = plan_append(tabula, batch.rows, seed=batch.seed)
                    apply_plan(tabula, plan)
                    reapplied += 1
                else:
                    append_rows(
                        tabula, batch.rows, seed=batch.seed, journal=journal
                    )
                    reapplied += 1
            expected = boundary_after
    return IngestRecovery(
        replayed_plans=replayed,
        reapplied_batches=reapplied,
        skipped_batches=skipped,
        durable_seq=result.max_seq,
        dropped_wal_lines=result.dropped_lines,
    )


class StreamIngestor:
    """Continuously accept rows; durably log, then apply in background.

    Usage::

        ingestor = StreamIngestor(tabula, wal_path, journal_path)
        with ingestor:
            result = ingestor.submit(rows)
            if result.outcome is IngestOutcome.BACKPRESSURE:
                ...retry after result.retry_after_seconds...
        # close() drains: queued batches are fsynced and applied.

    After a crash, call :func:`recover_ingest` on a fresh ``Tabula``
    before constructing the new ingestor over the same paths — the
    constructor resumes sequence numbering from the WAL's durable tail.
    """

    def __init__(
        self,
        tabula: Tabula,
        wal_path: Union[str, Path],
        journal_path: Union[str, Path],
        config: Optional[IngestConfig] = None,
        start: bool = True,
    ) -> None:
        self.config = config or IngestConfig()
        self.tabula = tabula
        self.wal = IngestWAL(wal_path)
        self.journal = MaintenanceJournal(journal_path)
        resume_seq = 0
        if Path(wal_path).exists():
            resume_seq = self.wal.read_batches().max_seq
        else:
            # Anchor recovery: record the pre-ingest base row count so a
            # restart can locate any restored snapshot on the
            # batch-boundary ladder.
            self.wal.write_open(tabula.table.num_rows)
        self._state_lock = create_lock("ingest._state_lock")
        self._pending: Deque[WalBatch] = deque()  # guard: _state_lock
        self._applying: Deque[WalBatch] = deque()  # guard: _state_lock
        self._submitted_seq = resume_seq  # guard: _state_lock
        self._durable_seq = resume_seq  # guard: _state_lock
        self._applied_seq = resume_seq  # guard: _state_lock
        self._queued_rows = 0  # guard: _state_lock
        self._counters: Dict[str, int] = {  # guard: _state_lock
            "offered": 0,
            "accepted": 0,
            "accepted_rows": 0,
            "backpressured": 0,
            "rejected_closed": 0,
            "applied_batches": 0,
            "applied_rows": 0,
            "deduplicated_batches": 0,
            "drift_sweeps": 0,
            "drift_demoted": 0,
            "drift_promoted": 0,
            "drift_repaired": 0,
            "fsyncs": 0,
        }
        self._closed = False  # guard: _state_lock
        self._failure = ""  # guard: _state_lock
        self._drift_cursor = 0  # maintainer-thread private
        self._drift_seed = resume_seq  # maintainer-thread private
        self._wake_writer = threading.Event()
        self._wake_maintainer = threading.Event()
        self._writer: Optional[threading.Thread] = None
        self._maintainer: Optional[threading.Thread] = None
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    def submit(
        self,
        rows: Table,
        seed: Optional[int] = None,
        wait_durable: bool = True,
        timeout: Optional[float] = 5.0,
    ) -> SubmitResult:
        """Offer one batch of rows to the pipeline — typed, never silent.

        ``seed`` is the batch's idempotency key (defaults to the
        assigned sequence number): a client retrying the same rows with
        the same seed after a crash is deduplicated by the maintenance
        journal's committed-batch ledger. With ``wait_durable`` the call
        returns only once the batch is fsynced in the WAL (sharing the
        writer's group commit); on timeout the batch stays queued and
        the result reports ``durable=False``.
        """
        if rows.num_rows == 0:
            return SubmitResult(IngestOutcome.ACCEPTED, seq=0, detail="empty batch")
        if rows.schema.names != self.tabula.table.schema.names:
            raise TabulaError(
                f"ingested rows schema {rows.schema.names} does not match "
                f"the table schema {self.tabula.table.schema.names}"
            )
        with self._state_lock:
            self._counters["offered"] += 1
            if self._closed or self._failure:
                self._counters["rejected_closed"] += 1
                detail = self._failure or "ingestor is closed"
                return SubmitResult(IngestOutcome.CLOSED, detail=detail)
            over_rows = self._queued_rows + rows.num_rows > self.config.max_queued_rows
            over_batches = (
                len(self._pending) + len(self._applying) + 1
                > self.config.max_queued_batches
            )
            if over_rows or over_batches:
                self._counters["backpressured"] += 1
                return SubmitResult(
                    IngestOutcome.BACKPRESSURE,
                    retry_after_seconds=self.config.retry_after_seconds,
                    queued_rows=self._queued_rows,
                    detail=(
                        f"ingest queue full ({self._queued_rows} rows queued, "
                        f"bound {self.config.max_queued_rows}); retry after "
                        f"{self.config.retry_after_seconds}s"
                    ),
                )
            self._submitted_seq += 1
            seq = self._submitted_seq
            batch = WalBatch(seq=seq, seed=seq if seed is None else seed, rows=rows)
            self._pending.append(batch)
            self._queued_rows += rows.num_rows
            self._counters["accepted"] += 1
            self._counters["accepted_rows"] += rows.num_rows
            queued_rows = self._queued_rows
        fault_point(FP_ACCEPT)
        self._wake_writer.set()
        durable = False
        if wait_durable:
            durable = self.wait_durable(seq, timeout=timeout)
        return SubmitResult(
            IngestOutcome.ACCEPTED, seq=seq, durable=durable, queued_rows=queued_rows
        )

    def wait_durable(self, seq: int, timeout: Optional[float] = 5.0) -> bool:
        """Block until batch ``seq`` is fsynced in the WAL (or timeout)."""
        return self._wait(lambda: self._durable_reached(seq), timeout)

    def wait_applied(
        self, seq: Optional[int] = None, timeout: Optional[float] = 5.0
    ) -> bool:
        """Block until ``applied_seq`` catches ``seq`` (default: durable)."""
        return self._wait(lambda: self._applied_reached(seq), timeout)

    @guarded_by("_state_lock")
    def _durable_reached(self, seq: int) -> bool:
        return self._durable_seq >= seq

    @guarded_by("_state_lock")
    def _applied_reached(self, seq: Optional[int]) -> bool:
        target = self._durable_seq if seq is None else seq
        return self._applied_seq >= target and not self._pending

    def _wait(self, predicate, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._state_lock:
                done = predicate()
                failed = bool(self._failure)
            if done:
                return True
            if failed:
                return False
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.002)

    # ------------------------------------------------------------------
    # Background pipeline
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the writer and maintainer threads (idempotent)."""
        if self._writer is None:
            self._writer = threading.Thread(
                target=self._writer_loop, name="ingest-writer", daemon=True
            )
            self._writer.start()
        if self._maintainer is None:
            self._maintainer = threading.Thread(
                target=self._maintainer_loop, name="ingest-maintainer", daemon=True
            )
            self._maintainer.start()

    def _writer_loop(self) -> None:
        try:
            while True:
                self._wake_writer.wait(timeout=self.config.flush_interval_seconds)
                self._wake_writer.clear()
                with self._state_lock:
                    group = list(self._pending)
                    closed = self._closed
                if group:
                    # One fsync for the whole group — outside the lock,
                    # so submitters keep getting typed answers while the
                    # disk syncs.
                    self.wal.append_batches(group)
                    with self._state_lock:
                        for _ in group:
                            self._pending.popleft()
                        self._applying.extend(group)
                        self._durable_seq = group[-1].seq
                        self._counters["fsyncs"] += 1
                    self._wake_maintainer.set()
                elif closed:
                    return
        except BaseException as exc:  # InjectedCrash = simulated kill -9
            self._note_failure("writer", exc)

    def _maintainer_loop(self) -> None:
        try:
            while True:
                self._wake_maintainer.wait(timeout=self.config.flush_interval_seconds)
                with self._state_lock:
                    batch = self._applying[0] if self._applying else None
                    stop = (self._closed and not self._pending) or bool(self._failure)
                if batch is None:
                    self._wake_maintainer.clear()
                    if stop:
                        return
                    continue
                if self.config.maintain_delay_seconds:
                    time.sleep(self.config.maintain_delay_seconds)
                fault_point(FP_APPLY_START)
                # Exactly-once: a batch whose content-hashed id is
                # already in the committed ledger (client retry after a
                # crash-and-recover) is acknowledged without re-applying.
                deduplicated = self.journal.is_committed(
                    batch_id_for(batch.seed, batch.rows)
                )
                if not deduplicated:
                    append_rows(
                        self.tabula, batch.rows, seed=batch.seed, journal=self.journal
                    )
                fault_point(FP_APPLY_DONE)
                with self._state_lock:
                    self._applying.popleft()
                    self._applied_seq = batch.seq
                    self._queued_rows -= batch.rows.num_rows
                    self._counters["applied_batches"] += 1
                    self._counters["applied_rows"] += batch.rows.num_rows
                    if deduplicated:
                        self._counters["deduplicated_batches"] += 1
                    applied = self._counters["applied_batches"]
                interval = self.config.drift_interval_batches
                if interval and applied % interval == 0:
                    self._drift_once()
        except BaseException as exc:
            self._note_failure("maintainer", exc)

    def _drift_once(self) -> None:
        fault_point(FP_DRIFT)
        self._drift_seed += 1
        report = run_drift_sweep(
            self.tabula,
            seed=self._drift_seed,
            max_cells=self.config.drift_max_cells,
            cursor=self._drift_cursor,
        )
        self._drift_cursor = report.next_cursor
        with self._state_lock:
            self._counters["drift_sweeps"] += 1
            self._counters["drift_demoted"] += report.demoted_cells
            self._counters["drift_promoted"] += report.promoted_cells
            self._counters["drift_repaired"] += report.repaired_cells

    def _note_failure(self, stage: str, exc: BaseException) -> None:
        # A simulated (or real) death of a pipeline thread: record the
        # typed cause and stop accepting work. This is *not* recovery —
        # the process must restart and replay via recover_ingest.
        with self._state_lock:
            self._failure = f"{stage} thread died: {type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------
    def watermarks(self) -> Dict[str, int]:
        """The pipeline's progress triple plus derived lag/queue gauges."""
        with self._state_lock:
            return {
                "submitted_seq": self._submitted_seq,
                "durable_seq": self._durable_seq,
                "applied_seq": self._applied_seq,
                "lag_batches": self._durable_seq - self._applied_seq,
                "queued_batches": len(self._pending) + len(self._applying),
                "queued_rows": self._queued_rows,
            }

    def staleness_batches(self) -> int:
        """Durable-but-unapplied batches right now (0 = fully fresh)."""
        with self._state_lock:
            return (self._durable_seq - self._applied_seq) + len(self._pending)

    def stats(self) -> Dict[str, object]:
        """Counters + watermarks for ``/stats`` and the ingest bench."""
        with self._state_lock:
            counters = dict(self._counters)
            failure = self._failure
            closed = self._closed
        stats: Dict[str, object] = {
            "counters": counters,
            "watermarks": self.watermarks(),
            "closed": closed,
            "failure": failure,
            "queue_bound_rows": self.config.max_queued_rows,
            "queue_bound_batches": self.config.max_queued_batches,
            "writer_alive": self._writer.is_alive() if self._writer else False,
            "maintainer_alive": (
                self._maintainer.is_alive() if self._maintainer else False
            ),
        }
        return stats

    @property
    def healthy(self) -> bool:
        with self._state_lock:
            failed = bool(self._failure)
            closed = self._closed
        return not failed and not closed

    def close(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting; optionally drain queued batches to applied."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            self.wait_applied(timeout=timeout)
        self._wake_writer.set()
        self._wake_maintainer.set()
        for thread in (self._writer, self._maintainer):
            if thread is not None:
                thread.join(timeout=timeout)

    def __enter__(self) -> "StreamIngestor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
