"""Crash-safe streaming ingest with backpressure and progressive answers.

The package closes the ROADMAP's "streaming ingest" gap: rows arrive
continuously, are micro-batched into a CRC-framed WAL with group-commit
fsync, and are folded into the sampling cube by a background maintainer
thread through the journaled plan/apply protocol — bounded queue with
typed backpressure on the way in, ``durable_seq``/``applied_seq``
watermarks on the way out, and ``kill -9`` survivable at every stage.

- :mod:`repro.ingest.wal` — the durable micro-batch log;
- :mod:`repro.ingest.stream` — :class:`StreamIngestor` (the pipeline)
  and :func:`recover_ingest` (exactly-once WAL replay);
- :mod:`repro.ingest.drift` — background iceberg promotion/demotion;
- :mod:`repro.ingest.progressive` — monotone progressive answers.
"""

from repro.ingest.drift import DriftSweepReport, plan_drift_sweep, run_drift_sweep
from repro.ingest.progressive import ProgressiveFrame, progressive_query
from repro.ingest.stream import (
    IngestConfig,
    IngestOutcome,
    IngestRecovery,
    StreamIngestor,
    SubmitResult,
    recover_ingest,
)
from repro.ingest.wal import IngestWAL, WalBatch, WalReadResult

__all__ = [
    "DriftSweepReport",
    "IngestConfig",
    "IngestOutcome",
    "IngestRecovery",
    "IngestWAL",
    "ProgressiveFrame",
    "StreamIngestor",
    "SubmitResult",
    "WalBatch",
    "WalReadResult",
    "plan_drift_sweep",
    "progressive_query",
    "recover_ingest",
    "run_drift_sweep",
]
