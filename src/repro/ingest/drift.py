"""Background iceberg promotion/demotion as loss estimates drift.

Incremental maintenance (:func:`repro.core.maintenance.plan_append`)
decides each affected cell's fate from *merged sufficient statistics* —
the algebraic estimate that makes appends cheap. The estimate is
faithful but not exact: after many merges the stats-derived loss can
drift from the loss computed directly on the raw data, so a cell can
sit materialized when the global sample would now serve it within θ
(wasted memory) or sit unmaterialized when its true loss crossed θ
(a guarantee served only by the re-check on the next append that
happens to touch it).

The drift sweep closes that gap in the background: each cycle takes a
bounded slice of known cells (round-robin cursor, so every cell is
eventually revisited), recomputes the **exact** loss of serving each
from the global sample, and emits the same
:class:`~repro.core.maintenance.CellDecision` post-states the append
planner uses — demote when exact loss ≤ θ, retain when the assigned
sample still satisfies θ, resample otherwise. Applying through
:func:`~repro.core.maintenance.apply_plan` (with an empty delta) keeps
the sweep idempotent and convergent; it deliberately runs *unjournaled*
because every individual decision preserves the cube invariant on its
own — a crash mid-sweep leaves a cube that is still θ-valid cell by
cell, just less tidy, and the next sweep converges it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.maintenance import (
    CellDecision,
    MaintenancePlan,
    _cell_population,
    apply_plan,
)
from repro.core.sampling import sample_with_pool
from repro.core.tabula import Tabula


@dataclass(frozen=True)
class DriftSweepReport:
    """What one bounded drift cycle did."""

    examined_cells: int
    demoted_cells: int
    promoted_cells: int
    repaired_cells: int
    retained_cells: int
    next_cursor: int


def plan_drift_sweep(
    tabula: Tabula, seed: int, max_cells: int = 16, cursor: int = 0
) -> Tuple[MaintenancePlan, int]:
    """Plan one bounded promotion/demotion cycle — pure.

    The caller must hold ``tabula.write_lock`` across plan *and* apply
    (the stream ingestor's maintainer thread does); the plan's empty
    delta makes :func:`apply_plan` a pure per-cell certificate refresh.
    Returns the plan plus the advanced round-robin cursor.
    """
    store = tabula.store
    dry = tabula._dry
    config = tabula.config
    loss = config.loss
    known = sorted(dry.known_cells, key=repr) if dry is not None else []
    decisions: List[CellDecision] = []
    if not known or max_cells < 1:
        empty = tabula.table.head(0)
        plan = MaintenancePlan(
            batch_id=f"drift:{seed}",
            base_rows=tabula.table.num_rows,
            delta=empty,
            seed=seed,
            decisions=decisions,
        )
        return plan, cursor
    start = cursor % len(known)
    picked = [known[(start + i) % len(known)] for i in range(min(max_cells, len(known)))]
    next_cursor = (start + len(picked)) % len(known)
    rng = np.random.default_rng(seed)
    sample_values = loss.extract(store.global_sample.table)
    table_values = loss.extract(tabula.table)
    attrs = config.cubed_attrs
    for cell in picked:
        cell_rows = _cell_population(tabula.table, attrs, cell)
        if cell_rows.size == 0:
            continue
        cell_data = table_values[cell_rows]
        exact_loss = float(loss.loss(cell_data, sample_values))
        materialized = store.sample_id_of(cell) is not None
        stats = dry.cell_stats.get(cell)
        if stats is None:
            stats = loss.stats(cell_data, sample_values)
        if exact_loss <= config.threshold:
            if materialized:
                decisions.append(
                    CellDecision(cell, "demote", stats, exact_loss, False, True)
                )
            continue
        assigned = store.lookup(cell)
        if assigned is not None and (
            float(loss.loss(cell_data, loss.extract(assigned))) <= config.threshold
        ):
            decisions.append(
                CellDecision(cell, "retain", stats, exact_loss, False, materialized)
            )
            continue
        result = sample_with_pool(
            loss,
            cell_data,
            config.threshold,
            rng,
            pool_size=config.pool_size,
            lazy=config.lazy_sampling,
        )
        decisions.append(
            CellDecision(
                cell,
                "resample",
                stats,
                exact_loss,
                False,
                materialized,
                sample_indices=tuple(int(i) for i in cell_rows[result.indices]),
            )
        )
    plan = MaintenancePlan(
        batch_id=f"drift:{seed}",
        base_rows=tabula.table.num_rows,
        delta=tabula.table.head(0),
        seed=seed,
        decisions=decisions,
    )
    return plan, next_cursor


def run_drift_sweep(
    tabula: Tabula, seed: int, max_cells: int = 16, cursor: int = 0
) -> DriftSweepReport:
    """Plan and apply one drift cycle atomically against other writers."""
    with tabula.write_lock:
        plan, next_cursor = plan_drift_sweep(
            tabula, seed, max_cells=max_cells, cursor=cursor
        )
        if plan.decisions:
            apply_plan(tabula, plan)
    demoted = promoted = repaired = retained = 0
    for decision in plan.decisions:
        if decision.action == "demote":
            demoted += 1
        elif decision.action == "retain":
            retained += 1
        elif decision.action == "resample":
            if decision.was_materialized:
                repaired += 1
            else:
                promoted += 1
    return DriftSweepReport(
        examined_cells=len(plan.decisions),
        demoted_cells=demoted,
        promoted_cells=promoted,
        repaired_cells=repaired,
        retained_cells=retained,
        next_cursor=next_cursor,
    )
