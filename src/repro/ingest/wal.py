"""The ingest write-ahead log: durable micro-batches, group-commit fsync.

The streaming pipeline's durability story has two logs with distinct
jobs:

- **this WAL** records every accepted micro-batch (its ``seq``, its
  client-stable ``seed`` and its rows) *before* any maintenance work
  starts. A group of batches is written with a **single** fsync
  (:meth:`IngestWAL.append_batches` rides
  :meth:`~repro.resilience.journal.AppendOnlyLog.append_many`), which is
  what lets many concurrent ``submit()`` callers share one disk sync —
  the classic group commit;
- the existing :class:`~repro.resilience.journal.MaintenanceJournal`
  records the *plan/commit* protocol per batch, giving exactly-once
  apply via content-hashed batch ids.

Recovery replays this WAL in seq order through
``append_rows(seed=<stored seed>)``; committed batch ids make the
replay exactly-once whether the crash hit before, during, or after the
original apply.

Both logs share the CRC-framed JSONL format, so a torn tail truncates
benignly while interior corruption surfaces as a typed
:class:`~repro.resilience.journal.JournalCorruptionError` (TAB509).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.engine.table import Table
from repro.resilience.faults import fault_point, register_fault_point
from repro.resilience.journal import (
    AppendOnlyLog,
    JournalCorruptionError,
    LogCorruption,
)

FP_WAL_WRITE = register_fault_point(
    "ingest.wal.write",
    "micro-batch group serialized, nothing written to the ingest WAL yet",
)
FP_WAL_DURABLE = register_fault_point(
    "ingest.wal.durable",
    "micro-batch group written+fsynced, durable watermark not yet published",
)


@dataclass(frozen=True)
class WalBatch:
    """One durable micro-batch as recorded in the ingest WAL."""

    seq: int
    seed: int
    rows: Table


@dataclass(frozen=True)
class WalReadResult:
    """Durable batches plus any damage classification from the log."""

    batches: Tuple[WalBatch, ...]
    dropped_lines: int
    corruptions: Tuple[LogCorruption, ...]
    #: Row count of the cube's raw table when this WAL was opened —
    #: the anchor recovery uses to locate a restored snapshot along the
    #: deterministic batch-boundary sequence. ``None`` for a WAL that
    #: predates the open record (or is empty).
    base_rows: Optional[int] = None

    @property
    def max_seq(self) -> int:
        """Highest durable sequence number (0 when the WAL is empty)."""
        return max((b.seq for b in self.batches), default=0)


class IngestWAL:
    """CRC-framed, group-committed log of accepted ingest batches."""

    def __init__(self, path: Union[str, Path], fsync: bool = True):
        self.path = Path(path)
        self._log = AppendOnlyLog(path, fsync=fsync)

    def write_open(self, base_rows: int) -> None:
        """Record the pre-ingest base row count (first record, once)."""
        self._log.append({"kind": "open", "base_rows": int(base_rows)})

    def append_batches(self, batches: Sequence[WalBatch]) -> None:
        """Durably record a group of batches with one fsync.

        A crash mid-call leaves a durable *prefix* of the group plus at
        most one torn line; nothing after the tear was ever
        acknowledged as durable, so truncating it on read is the
        contract.
        """
        if not batches:
            return
        from repro.core.persistence import table_to_json

        records = [
            {
                "kind": "batch",
                "seq": batch.seq,
                "seed": batch.seed,
                "rows": table_to_json(batch.rows),
            }
            for batch in batches
        ]
        fault_point(FP_WAL_WRITE)
        self._log.append_many(records)
        fault_point(FP_WAL_DURABLE)

    def read_batches(self) -> WalReadResult:
        """Every durable batch in append (= seq) order."""
        from repro.core.persistence import table_from_json

        result = self._log.read()
        batches: List[WalBatch] = []
        base_rows = None
        for record in result.records:
            kind = record.get("kind")
            if kind == "open" and base_rows is None:
                base_rows = int(record["base_rows"])
                continue
            if kind != "batch":
                continue
            batches.append(
                WalBatch(
                    seq=int(record["seq"]),
                    seed=int(record["seed"]),
                    rows=table_from_json(record["rows"]),
                )
            )
        return WalReadResult(
            batches=tuple(batches),
            dropped_lines=result.dropped_lines,
            corruptions=result.corruptions,
            base_rows=base_rows,
        )

    def check_readable(self) -> None:
        """Raise typed TAB509 on interior damage (torn tails pass)."""
        damaged = self._log.read().interior_corruptions
        if damaged:
            raise JournalCorruptionError(self.path, damaged)
