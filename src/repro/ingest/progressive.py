"""Progressive query answers over a lagging ingest pipeline.

InfiniViz's motivating UX: answer *now* from the sample, then refine as
better data arrives. Here the refinement axis is ingest freshness — the
first frame is the sample-rung answer from the currently served
snapshot, and follow-up frames re-answer as the background maintainer
folds durable batches in (``applied_seq`` climbing toward
``durable_seq``). Each frame carries the watermark pair plus the
staleness it was answered at, so a dashboard can render "answer as of
batch N, catching up".

Guarantee transitions are **monotone by construction**: the stream
tracks the best :class:`~repro.core.tabula.GuaranteeStatus` rank it has
emitted and suppresses any re-answer that would regress it (counted in
``suppressed_regressions``, never silently dropped) — a consumer never
observes CERTIFIED followed by DOWNGRADED within one stream. The final
frame is the fresh non-progressive answer whenever that answer honors
monotonicity, which in the normal catching-up scenario it does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional

from repro.serving.gateway import ServingGateway, ServingResponse

WhereClause = Mapping[str, object]


@dataclass(frozen=True)
class ProgressiveFrame:
    """One answer in a progressive stream.

    ``kind`` is ``"initial"`` (the immediate sample-rung answer),
    ``"refine"`` (a re-answer after the maintainer advanced), or
    ``"final"`` (the stream's last word — the non-progressive answer,
    monotone-clamped).
    """

    index: int
    kind: str
    response: ServingResponse
    durable_seq: int
    applied_seq: int
    staleness_batches: int
    suppressed_regressions: int = 0

    @property
    def is_final(self) -> bool:
        return self.kind == "final"


def _watermarks(ingestor: Optional[Any]) -> tuple:
    if ingestor is None:
        return 0, 0, 0
    marks = ingestor.watermarks()
    staleness = ingestor.staleness_batches()
    return int(marks["durable_seq"]), int(marks["applied_seq"]), int(staleness)


def progressive_query(
    gateway: ServingGateway,
    where: WhereClause,
    deadline_seconds: Optional[float] = None,
    geometry: Optional[object] = None,
    max_frames: int = 8,
    poll_seconds: float = 0.01,
    max_wait_seconds: float = 10.0,
    ingestor: Optional[Any] = None,
) -> Iterator[ProgressiveFrame]:
    """Stream progressively fresher answers for one query.

    Yields the immediate answer first, then one refinement per
    maintainer advance while the pipeline is catching up (bounded by
    ``max_frames`` and ``max_wait_seconds``), then a final frame equal
    to the non-progressive answer (unless emitting it would regress the
    guarantee, in which case the best answer seen is re-emitted and the
    regression is counted). Without an attached ingestor the stream
    degenerates to initial + final, both answered from the current
    snapshot.
    """
    if max_frames < 2:
        raise ValueError(f"max_frames must be >= 2, got {max_frames}")
    ingestor = ingestor if ingestor is not None else getattr(gateway, "ingestor", None)
    suppressed = 0
    durable, applied, staleness = _watermarks(ingestor)
    response = gateway.query(
        where, deadline_seconds=deadline_seconds, geometry=geometry
    )
    best_rank = response.guarantee.rank
    last_emitted = response
    index = 0
    yield ProgressiveFrame(
        index=index,
        kind="initial",
        response=response,
        durable_seq=durable,
        applied_seq=applied,
        staleness_batches=staleness,
    )
    index += 1
    budget = time.monotonic() + max_wait_seconds
    last_applied = applied
    if ingestor is not None:
        # Leave room for the final frame: refinements stop one short.
        while index < max_frames - 1 and time.monotonic() < budget:
            durable, applied, staleness = _watermarks(ingestor)
            if staleness <= 0 and applied >= durable:
                break  # caught up; the final frame says the last word
            if applied > last_applied:
                last_applied = applied
                response = gateway.query(
                    where, deadline_seconds=deadline_seconds, geometry=geometry
                )
                if response.guarantee.rank <= best_rank:
                    best_rank = response.guarantee.rank
                    last_emitted = response
                    yield ProgressiveFrame(
                        index=index,
                        kind="refine",
                        response=response,
                        durable_seq=durable,
                        applied_seq=applied,
                        staleness_batches=staleness,
                        suppressed_regressions=suppressed,
                    )
                    index += 1
                else:
                    suppressed += 1
            else:
                time.sleep(poll_seconds)
    durable, applied, staleness = _watermarks(ingestor)
    final = gateway.query(where, deadline_seconds=deadline_seconds, geometry=geometry)
    if final.guarantee.rank > best_rank:
        # Emitting would regress the guarantee mid-stream; re-emit the
        # best answer seen and record the clamp.
        suppressed += 1
        final = last_emitted
    yield ProgressiveFrame(
        index=index,
        kind="final",
        response=final,
        durable_seq=durable,
        applied_seq=applied,
        staleness_batches=staleness,
        suppressed_regressions=suppressed,
    )
