"""Checksummed append-only logs and the maintenance write-ahead journal.

Two layers:

- :class:`AppendOnlyLog` — a JSONL file where every line carries a
  CRC32 of its canonical payload. Appends are flushed and fsynced per
  record; reads stop at the first unparseable/CRC-failing line. The
  *reason* the tail was dropped is classified, not discarded: a torn
  final line (the signature of a mid-append crash) is benign and
  truncates silently, while **interior corruption** — a bad line with
  durable records after it, or a line whose frame parses but whose CRC
  does not match its payload (bit rot, not a torn write) — is reported
  per line as a :class:`LogCorruption` so callers can refuse to replay
  over it.

- :class:`MaintenanceJournal` — the write-ahead journal for
  :func:`repro.core.maintenance.append_rows`. A delta batch is logged
  (with every cell-level decision *and* the drawn sample indices, so
  replay needs no randomness) **before** the store is mutated, and a
  commit marker is logged after. Replay applies logged-but-uncommitted
  plans; committed batch ids make re-submission of the same batch a
  no-op — a batch is never double-applied.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import TabulaError
from repro.resilience.faults import fault_point, register_fault_point

#: Typed persistence code for interior journal corruption (continues the
#: TAB501–TAB508 range owned by :mod:`repro.core.persistence`).
TAB509_JOURNAL_CORRUPT = "TAB509"

FP_LOG_BEFORE_APPEND = register_fault_point(
    "journal.before_append", "record serialized, nothing written yet"
)
FP_LOG_APPENDED = register_fault_point(
    "journal.appended", "record written+fsynced to the log"
)


def canonical_json(payload: object) -> str:
    """Deterministic JSON used for checksums (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def crc_of(payload: object) -> int:
    return zlib.crc32(canonical_json(payload).encode("utf-8"))


@dataclass(frozen=True)
class LogCorruption:
    """One unreadable log line, classified.

    ``kind`` is ``"torn_tail"`` (the final non-empty line did not parse
    — the expected residue of a crash mid-append, safe to truncate) or
    ``"interior"`` (a bad line *followed by durable records*, or a
    frame that parsed but failed its CRC — on-disk corruption that
    replay must not silently skip). ``batch_id`` is recovered from the
    frame when the JSON parsed but the checksum did not match, so the
    error can name the poisoned batch.
    """

    kind: str
    line_number: int
    detail: str
    batch_id: str = ""


@dataclass(frozen=True)
class LogReadResult:
    """Records recovered from a log plus how much tail was dropped."""

    records: Tuple[dict, ...]
    dropped_lines: int
    corruptions: Tuple[LogCorruption, ...] = ()

    @property
    def interior_corruptions(self) -> Tuple[LogCorruption, ...]:
        """Corruptions that are *not* a benign torn tail."""
        return tuple(c for c in self.corruptions if c.kind == "interior")


class JournalCorruptionError(TabulaError):
    """Interior corruption in a journal segment (typed ``TAB509``).

    Raised instead of silently truncating when a journaled record fails
    its CRC mid-file (or a torn line is followed by durable records):
    replaying past the damage could drop a committed batch or re-apply
    a partial one. Carries the offending segment ``path``, the 1-based
    ``line_number`` of the first damaged frame and — when the frame's
    JSON still parsed — the ``batch_id`` whose payload is poisoned.
    """

    def __init__(self, path: Union[str, Path], corruptions: Sequence[LogCorruption]):
        self.code = TAB509_JOURNAL_CORRUPT
        self.path = str(path)
        self.corruptions = tuple(corruptions)
        first = self.corruptions[0]
        self.line_number = first.line_number
        self.batch_id = first.batch_id
        batch = f" (batch {first.batch_id})" if first.batch_id else ""
        super().__init__(
            f"[{self.code}] journal segment {self.path} is corrupt at line "
            f"{first.line_number}{batch}: {first.detail}; "
            f"{len(self.corruptions)} damaged frame(s) total — refusing to "
            "replay past interior damage"
        )


class AppendOnlyLog:
    """A crash-tolerant JSONL log with per-record CRC32 framing."""

    def __init__(self, path: Union[str, Path], fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        line = json.dumps({"crc": crc_of(record), "rec": record}) + "\n"
        fault_point(FP_LOG_BEFORE_APPEND)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        fault_point(FP_LOG_APPENDED)

    def append_many(self, records: Sequence[dict]) -> None:
        """Durably append a group of records with a *single* fsync.

        The group-commit primitive for streaming ingest: every record
        is framed and written in one buffered pass, then flushed and
        fsynced once, amortizing the sync over the whole micro-batch. A
        crash mid-call leaves at most a torn tail (a prefix of the
        group is durable), which :meth:`read` truncates benignly.
        """
        if not records:
            return
        lines = [
            json.dumps({"crc": crc_of(record), "rec": record}) + "\n"
            for record in records
        ]
        fault_point(FP_LOG_BEFORE_APPEND)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.writelines(lines)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        fault_point(FP_LOG_APPENDED)

    def read(self) -> LogReadResult:
        """All durable records up to the first torn/corrupt line.

        Replay never proceeds past damage (everything after an
        unreadable line is untrusted), but the damage itself is
        classified in ``corruptions``: a torn final line is the normal
        residue of a mid-append crash, while interior damage — a bad
        line with durable lines after it, or a parseable frame whose
        CRC fails — means the file was corrupted in place and callers
        like :func:`repro.core.maintenance.recover_journal` must
        surface it rather than quietly dropping the tail.
        """
        if not self.path.exists():
            return LogReadResult((), 0)
        records: List[dict] = []
        corruptions: List[LogCorruption] = []
        dropped = 0
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.readlines()
        for i, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            batch_id = ""
            crc_mismatch = False
            try:
                frame = json.loads(stripped)
                record = frame["rec"]
                if frame.get("crc") != crc_of(record):
                    crc_mismatch = True
                    if isinstance(record, dict):
                        batch_id = str(record.get("batch_id", ""))
                    raise ValueError("crc mismatch")
            except (ValueError, KeyError, TypeError) as exc:
                dropped = sum(1 for rest in lines[i:] if rest.strip())
                has_successors = dropped > 1
                if crc_mismatch or has_successors:
                    # A frame that parses but fails its checksum is bit
                    # rot, not a torn write — torn writes truncate the
                    # JSON. A bad line with lines after it cannot be a
                    # crash tail either.
                    kind = "interior"
                else:
                    kind = "torn_tail"
                corruptions.append(
                    LogCorruption(
                        kind=kind,
                        line_number=i + 1,
                        detail=str(exc) if str(exc) else type(exc).__name__,
                        batch_id=batch_id,
                    )
                )
                break
            records.append(record)
        return LogReadResult(tuple(records), dropped, tuple(corruptions))


# ---------------------------------------------------------------------------
# Maintenance write-ahead journal
# ---------------------------------------------------------------------------


class MaintenanceJournal:
    """Idempotent WAL for incremental cube maintenance.

    Protocol per batch: ``log_plan`` (everything needed to redo the
    mutation deterministically) → mutate the store → ``commit``. After a
    crash, :meth:`uncommitted_plans` yields exactly the batches whose
    effects may be partial; re-applying a plan is convergent because the
    plan stores post-states (merged statistics, drawn sample indices),
    not deltas.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True):
        self.path = Path(path)
        self._log = AppendOnlyLog(path, fsync=fsync)

    def log_plan(self, batch_id: str, payload: dict) -> None:
        self._log.append({"kind": "plan", "batch_id": batch_id, "payload": payload})

    def commit(self, batch_id: str, report: Optional[dict] = None) -> None:
        self._log.append({"kind": "commit", "batch_id": batch_id, "report": report or {}})

    def _scan(self) -> Tuple[Dict[str, dict], Dict[str, dict], List[str]]:
        plans: Dict[str, dict] = {}
        commits: Dict[str, dict] = {}
        order: List[str] = []
        for record in self._log.read().records:
            batch_id = record.get("batch_id", "")
            if record.get("kind") == "plan":
                if batch_id not in plans:
                    order.append(batch_id)
                plans[batch_id] = record.get("payload", {})
            elif record.get("kind") == "commit":
                commits[batch_id] = record.get("report", {})
        return plans, commits, order

    def is_committed(self, batch_id: str) -> bool:
        _, commits, _ = self._scan()
        return batch_id in commits

    def committed_report(self, batch_id: str) -> Optional[dict]:
        _, commits, _ = self._scan()
        return commits.get(batch_id)

    def uncommitted_plans(self) -> List[Tuple[str, dict]]:
        """(batch_id, payload) of logged batches with no commit marker."""
        plans, commits, order = self._scan()
        return [(b, plans[b]) for b in order if b not in commits]

    def plan_payloads(self) -> Dict[str, dict]:
        """batch_id -> plan payload for *every* logged plan.

        Unlike :meth:`uncommitted_plans` this includes committed
        batches: ingest recovery onto a cube snapshot *older* than the
        ledger re-applies a committed batch from its journaled
        post-states rather than trusting the commit marker, so the
        payloads must stay reachable.
        """
        plans, _, _ = self._scan()
        return plans

    def interior_corruptions(self) -> Tuple[LogCorruption, ...]:
        """Damage in this journal that is *not* a benign torn tail."""
        return self._log.read().interior_corruptions

    def check_readable(self) -> None:
        """Raise :class:`JournalCorruptionError` on interior damage.

        A torn final line (crash mid-append) passes: the partially
        written record was never acknowledged, so truncating it is the
        contract. A CRC-failing frame mid-file — or a bad line with
        durable records after it — does not: replaying a prefix of a
        damaged journal could silently drop a committed batch.
        """
        damaged = self.interior_corruptions()
        if damaged:
            raise JournalCorruptionError(self.path, damaged)
