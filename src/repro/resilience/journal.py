"""Checksummed append-only logs and the maintenance write-ahead journal.

Two layers:

- :class:`AppendOnlyLog` — a JSONL file where every line carries a
  CRC32 of its canonical payload. Appends are flushed and fsynced per
  record; reads stop at the first unparseable/CRC-failing line, so a
  torn tail (the signature of a mid-append crash) silently truncates to
  the last durable record instead of poisoning replay.

- :class:`MaintenanceJournal` — the write-ahead journal for
  :func:`repro.core.maintenance.append_rows`. A delta batch is logged
  (with every cell-level decision *and* the drawn sample indices, so
  replay needs no randomness) **before** the store is mutated, and a
  commit marker is logged after. Replay applies logged-but-uncommitted
  plans; committed batch ids make re-submission of the same batch a
  no-op — a batch is never double-applied.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.resilience.faults import fault_point, register_fault_point

FP_LOG_BEFORE_APPEND = register_fault_point(
    "journal.before_append", "record serialized, nothing written yet"
)
FP_LOG_APPENDED = register_fault_point(
    "journal.appended", "record written+fsynced to the log"
)


def canonical_json(payload: object) -> str:
    """Deterministic JSON used for checksums (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def crc_of(payload: object) -> int:
    return zlib.crc32(canonical_json(payload).encode("utf-8"))


@dataclass(frozen=True)
class LogReadResult:
    """Records recovered from a log plus how much tail was dropped."""

    records: Tuple[dict, ...]
    dropped_lines: int


class AppendOnlyLog:
    """A crash-tolerant JSONL log with per-record CRC32 framing."""

    def __init__(self, path: Union[str, Path], fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        line = json.dumps({"crc": crc_of(record), "rec": record}) + "\n"
        fault_point(FP_LOG_BEFORE_APPEND)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        fault_point(FP_LOG_APPENDED)

    def read(self) -> LogReadResult:
        """All durable records; stops at the first torn/corrupt line."""
        if not self.path.exists():
            return LogReadResult((), 0)
        records: List[dict] = []
        dropped = 0
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.readlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                frame = json.loads(line)
                record = frame["rec"]
                if frame.get("crc") != crc_of(record):
                    raise ValueError("crc mismatch")
            except (ValueError, KeyError, TypeError):
                # Torn or corrupt: everything from here on is untrusted.
                dropped = sum(1 for rest in lines[i:] if rest.strip())
                break
            records.append(record)
        return LogReadResult(tuple(records), dropped)


# ---------------------------------------------------------------------------
# Maintenance write-ahead journal
# ---------------------------------------------------------------------------


class MaintenanceJournal:
    """Idempotent WAL for incremental cube maintenance.

    Protocol per batch: ``log_plan`` (everything needed to redo the
    mutation deterministically) → mutate the store → ``commit``. After a
    crash, :meth:`uncommitted_plans` yields exactly the batches whose
    effects may be partial; re-applying a plan is convergent because the
    plan stores post-states (merged statistics, drawn sample indices),
    not deltas.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True):
        self.path = Path(path)
        self._log = AppendOnlyLog(path, fsync=fsync)

    def log_plan(self, batch_id: str, payload: dict) -> None:
        self._log.append({"kind": "plan", "batch_id": batch_id, "payload": payload})

    def commit(self, batch_id: str, report: Optional[dict] = None) -> None:
        self._log.append({"kind": "commit", "batch_id": batch_id, "report": report or {}})

    def _scan(self) -> Tuple[Dict[str, dict], Dict[str, dict], List[str]]:
        plans: Dict[str, dict] = {}
        commits: Dict[str, dict] = {}
        order: List[str] = []
        for record in self._log.read().records:
            batch_id = record.get("batch_id", "")
            if record.get("kind") == "plan":
                if batch_id not in plans:
                    order.append(batch_id)
                plans[batch_id] = record.get("payload", {})
            elif record.get("kind") == "commit":
                commits[batch_id] = record.get("report", {})
        return plans, commits, order

    def is_committed(self, batch_id: str) -> bool:
        _, commits, _ = self._scan()
        return batch_id in commits

    def committed_report(self, batch_id: str) -> Optional[dict]:
        _, commits, _ = self._scan()
        return commits.get(batch_id)

    def uncommitted_plans(self) -> List[Tuple[str, dict]]:
        """(batch_id, payload) of logged batches with no commit marker."""
        plans, commits, order = self._scan()
        return [(b, plans[b]) for b in order if b not in commits]
