"""Request deadlines that propagate through the query path.

A :class:`Deadline` is an absolute point on a monotonic clock. It is
created once at the edge (the serving gateway, a CLI flag, a test) and
threaded *down* through ``Tabula.query`` so every expensive step — most
importantly the raw-table fallback rung — can ask "is there budget
left?" before starting work it cannot finish in time.

The clock is injectable so tests can drive time deterministically
instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro import sanitizer
from repro.errors import DeadlineExceeded

__all__ = ["Deadline", "DeadlineExceeded"]


class Deadline:
    """An absolute expiry instant on a monotonic clock."""

    __slots__ = ("expires_at", "_clock", "_started", "_sanbox", "__weakref__")

    def __init__(
        self,
        expires_at: float,
        clock: Callable[[], float] = time.monotonic,
        started: Optional[float] = None,
    ):
        self.expires_at = expires_at
        self._clock = clock
        self._started = clock() if started is None else started
        # Sanitizer accounting: a deadline that dies without ever being
        # consulted was dropped on the floor by some call path. The box
        # is None in production mode (zero overhead beyond this check).
        self._sanbox = sanitizer.track_deadline(self) if sanitizer.is_enabled() else None

    def _touch(self) -> None:
        box = self._sanbox
        if box is not None:
            box[0] = True

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now."""
        now = clock()
        return cls(now + seconds, clock=clock, started=now)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        self._touch()
        return max(0.0, self.expires_at - self._clock())

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return self._clock() - self._started

    @property
    def expired(self) -> bool:
        self._touch()
        return self._clock() >= self.expires_at

    def check(self, doing: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is gone."""
        if self.expired:
            raise DeadlineExceeded(
                f"deadline exceeded {doing}", elapsed=self.elapsed()
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.4f}s)"
