"""Resumable-initialization checkpoints.

``Tabula.initialize(checkpoint_dir=...)`` journals its progress here so
a build killed at any point resumes from the last completed cell
instead of restarting — the paper-scale build is on the order of an
hour, so losing it to a crash is the single most expensive failure the
middleware has.

Checkpoint directory layout::

    meta.json    fingerprint of (config, table) — a resumed build must
                 be byte-compatible with the one that started it
    dryrun.json  the global-sample indices + every cell's partition
                 statistics and loss from the dry run (stage 1)
    cells.log    append-only, CRC-framed: one record per materialized
                 iceberg cell (sample row indices + θ-certificate)

All single-file writes are atomic (:mod:`repro.resilience.atomic`);
``cells.log`` tolerates a torn tail (:class:`AppendOnlyLog`). Combined
with per-cell seeded randomness in the real run, a resumed build
produces a cube store *identical* to an uninterrupted one — a property
the fault-injection suite asserts at every registered fault point.
"""

from __future__ import annotations

import json
import shutil
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.dryrun import DryRunResult
from repro.core.global_sample import GlobalSample
from repro.core.lattice import CuboidLattice, LatticeNode
from repro.engine.cube import CellKey, grouping_sets
from repro.engine.table import Table
from repro.errors import TabulaError
from repro.resilience.atomic import atomic_write_text
from repro.resilience.faults import fault_point, register_fault_point
from repro.resilience.journal import AppendOnlyLog, canonical_json

FP_META = register_fault_point(
    "init.checkpoint.meta", "before the checkpoint meta file is written"
)
FP_DRYRUN_SAVE = register_fault_point(
    "init.checkpoint.dryrun", "dry run finished, before its snapshot is persisted"
)
FP_CELL_RECORD = register_fault_point(
    "init.checkpoint.cell", "cell sampled, before its record is journaled"
)


class CheckpointError(TabulaError):
    """The checkpoint directory does not match the requested build."""


# ---------------------------------------------------------------------------
# JSON codecs for cells and nested statistics tuples
# ---------------------------------------------------------------------------


def cell_to_json(cell: CellKey) -> list:
    return list(cell)


def cell_from_json(values) -> CellKey:
    return tuple(values)


def stats_to_json(stats: tuple):
    """Nested tuples of floats → nested lists (JSON)."""
    if isinstance(stats, tuple):
        return [stats_to_json(s) for s in stats]
    return stats


def stats_from_json(payload) -> tuple:
    if isinstance(payload, list):
        return tuple(stats_from_json(p) for p in payload)
    return payload


def table_fingerprint(table: Table) -> dict:
    """Cheap content digest used to detect a mismatched resume."""
    crc = 0
    for col in table.columns():
        crc = zlib.crc32(col.name.encode(), crc)
        crc = zlib.crc32(np.ascontiguousarray(col.data).tobytes(), crc)
    return {"num_rows": table.num_rows, "crc32": crc}


def rng_for_cell(seed: int, cell: CellKey) -> np.random.Generator:
    """Per-cell generator: sampling order no longer matters, so a build
    resumed mid-real-run draws exactly what the uninterrupted build
    would have drawn for each remaining cell."""
    cell_crc = zlib.crc32(repr(cell).encode("utf-8"))
    return np.random.default_rng([seed & 0xFFFFFFFF, cell_crc])


@dataclass(frozen=True)
class CellRecord:
    """One completed cell: its sample and its θ-certificate."""

    cell: CellKey
    sample_indices: np.ndarray  # raw-table row indices
    achieved_loss: float
    rounds: int
    evaluations: int


# ---------------------------------------------------------------------------
# Dry-run snapshot
# ---------------------------------------------------------------------------


def dryrun_to_snapshot(dry: DryRunResult) -> dict:
    """Serialize the partition statistics the dry run certified.

    Iteration order of ``cell_stats`` is preserved: the real run's
    per-cuboid cell order (and therefore representative selection)
    must match between a fresh and a resumed build.
    """
    return {
        "attrs": list(dry.attrs),
        "threshold": dry.threshold,
        "cells": [
            {
                "cell": cell_to_json(cell),
                "stats": stats_to_json(stats),
                "loss": dry.cell_losses[cell],
            }
            for cell, stats in dry.cell_stats.items()
        ],
        "seconds": dry.seconds,
    }


def dryrun_from_snapshot(snapshot: dict) -> DryRunResult:
    """Rebuild a :class:`DryRunResult` equivalent to the original."""
    attrs = tuple(snapshot["attrs"])
    threshold = snapshot["threshold"]
    cell_stats: Dict[CellKey, tuple] = {}
    cell_losses: Dict[CellKey, float] = {}
    iceberg_stats: Dict[CellKey, tuple] = {}
    iceberg_by_cuboid: Dict[Tuple[str, ...], list] = {g: [] for g in grouping_sets(attrs)}
    cell_counts: Dict[Tuple[str, ...], int] = {g: 0 for g in grouping_sets(attrs)}
    for entry in snapshot["cells"]:
        cell = cell_from_json(entry["cell"])
        stats = stats_from_json(entry["stats"])
        loss = entry["loss"]
        gset = tuple(a for a, v in zip(attrs, cell) if v is not None)
        cell_stats[cell] = stats
        cell_losses[cell] = loss
        cell_counts[gset] += 1
        if loss > threshold:
            iceberg_stats[cell] = stats
            iceberg_by_cuboid[gset].append(cell)
    nodes = {
        gset: LatticeNode(
            grouping_set=gset,
            total_cells=cell_counts[gset],
            iceberg_cells=len(iceberg_by_cuboid[gset]),
        )
        for gset in grouping_sets(attrs)
    }
    return DryRunResult(
        attrs=attrs,
        threshold=threshold,
        lattice=CuboidLattice(attrs, nodes),
        iceberg_stats=iceberg_stats,
        iceberg_cells_by_cuboid=iceberg_by_cuboid,
        cell_counts=cell_counts,
        known_cells=frozenset(cell_stats),
        cell_losses=cell_losses,
        cell_stats=cell_stats,
        seconds=snapshot.get("seconds", 0.0),
        raw_table_passes=1,
    )


# ---------------------------------------------------------------------------
# The checkpoint itself
# ---------------------------------------------------------------------------


class InitCheckpoint:
    """Progress journal for one ``initialize()`` build."""

    META = "meta.json"
    DRYRUN = "dryrun.json"
    CELLS = "cells.log"

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self._cells_log = AppendOnlyLog(self.directory / self.CELLS)

    # -- lifecycle ----------------------------------------------------------
    def open(self, fingerprint: dict) -> None:
        """Create the checkpoint, or validate it matches ``fingerprint``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        meta_path = self.directory / self.META
        if meta_path.exists():
            try:
                existing = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint meta {meta_path}: {exc}"
                ) from None
            if canonical_json(existing.get("fingerprint")) != canonical_json(fingerprint):
                raise CheckpointError(
                    f"checkpoint at {self.directory} belongs to a different build "
                    "(config or table changed); discard it or use a fresh directory"
                )
            return
        fault_point(FP_META)
        atomic_write_text(meta_path, json.dumps({"version": 1, "fingerprint": fingerprint}))

    def discard(self) -> None:
        """Remove the checkpoint (call once the built cube is durable)."""
        shutil.rmtree(self.directory, ignore_errors=True)

    # -- dry run ------------------------------------------------------------
    def save_dryrun(self, global_sample: GlobalSample, dry: DryRunResult) -> None:
        fault_point(FP_DRYRUN_SAVE)
        payload = {
            "global_sample": {
                "indices": global_sample.indices.tolist(),
                "epsilon": global_sample.epsilon,
                "delta": global_sample.delta,
            },
            "dryrun": dryrun_to_snapshot(dry),
        }
        atomic_write_text(self.directory / self.DRYRUN, json.dumps(payload))

    def load_dryrun(self, table: Table) -> Optional[Tuple[GlobalSample, DryRunResult]]:
        path = self.directory / self.DRYRUN
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            # An atomic write can't produce this; treat a hand-damaged
            # snapshot as absent so the build redoes stage 1.
            return None
        gs = payload["global_sample"]
        indices = np.asarray(gs["indices"], dtype=np.int64)
        global_sample = GlobalSample(
            table=table.take(indices),
            indices=indices,
            epsilon=gs["epsilon"],
            delta=gs["delta"],
        )
        return global_sample, dryrun_from_snapshot(payload["dryrun"])

    # -- real run -----------------------------------------------------------
    def record_cell(
        self,
        cell: CellKey,
        sample_indices: np.ndarray,
        achieved_loss: float,
        rounds: int,
        evaluations: int,
    ) -> None:
        """Durably record one completed cell (sample + certificate)."""
        fault_point(FP_CELL_RECORD)
        self._cells_log.append(
            {
                "cell": cell_to_json(cell),
                "sample_indices": np.asarray(sample_indices, dtype=np.int64).tolist(),
                "achieved_loss": achieved_loss,
                "rounds": rounds,
                "evaluations": evaluations,
            }
        )

    def completed_cells(self) -> Dict[CellKey, CellRecord]:
        """Every durably recorded cell (later records win on duplicates)."""
        completed: Dict[CellKey, CellRecord] = {}
        for record in self._cells_log.read().records:
            cell = cell_from_json(record["cell"])
            completed[cell] = CellRecord(
                cell=cell,
                sample_indices=np.asarray(record["sample_indices"], dtype=np.int64),
                achieved_loss=record["achieved_loss"],
                rounds=record["rounds"],
                evaluations=record["evaluations"],
            )
        return completed
