"""Fault tolerance for the cube lifecycle (build / persist / maintain / query).

The sampling cube is built once and is expensive; everything in this
package exists so a crash at any point of its lifecycle cannot destroy
it or silently void the θ-guarantee:

- :mod:`repro.resilience.faults` — deterministic fault-injection
  harness (named fault points, ``CrashPoint``/``IOFault``/``SlowIO``);
- :mod:`repro.resilience.atomic` — atomic file replacement (temp file +
  fsync + ``os.replace``) used by persistence, journals and fetches;
- :mod:`repro.resilience.journal` — checksummed append-only logs and
  the maintenance write-ahead journal;
- :mod:`repro.resilience.checkpoint` — the resumable-initialization
  checkpoint protocol.
"""

from repro.resilience.faults import (
    CrashPoint,
    InjectedCrash,
    InjectedIOError,
    IOFault,
    SlowIO,
    fault_point,
    inject,
    register_fault_point,
    registered_fault_points,
)

__all__ = [
    "CrashPoint",
    "InjectedCrash",
    "InjectedIOError",
    "IOFault",
    "SlowIO",
    "fault_point",
    "inject",
    "register_fault_point",
    "registered_fault_points",
]
