"""Crash-safe file replacement: temp file + fsync + ``os.replace``.

A plain ``path.write_text(...)`` killed mid-write leaves a truncated
file *in place of* the previous good one — the worst outcome for a
persisted cube. The helpers here guarantee that at every instant the
destination path holds either the complete old contents or the complete
new contents, never a torn mixture:

1. write the payload to a unique sibling temp file;
2. flush + ``os.fsync`` the temp file (bytes durable before the swap);
3. ``os.replace`` — atomic within a filesystem by POSIX/NTFS contract;
4. best-effort fsync of the parent directory (the rename itself).

Fault points bracket each step so the fault-injection tests can kill
the process at every stage and assert the old file survives.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

from repro.resilience.faults import fault_point, register_fault_point

FP_TMP_WRITTEN = register_fault_point(
    "persist.atomic.tmp_written", "temp file written+fsynced, not yet swapped in"
)
FP_BEFORE_REPLACE = register_fault_point(
    "persist.atomic.before_replace", "immediately before os.replace"
)
FP_AFTER_REPLACE = register_fault_point(
    "persist.atomic.after_replace", "after os.replace, before directory fsync"
)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically replace ``path``'s contents with ``data``."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point(FP_TMP_WRITTEN)
        fault_point(FP_BEFORE_REPLACE)
        os.replace(tmp, path)
    except BaseException:
        # The destination is untouched; drop the partial temp file. The
        # bare unlink stays best-effort: cleanup must not mask the
        # original failure (including an injected crash).
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    fault_point(FP_AFTER_REPLACE)
    fsync_directory(path.parent)


def atomic_write_text(path: Union[str, Path], text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path``'s contents with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


def fsync_directory(directory: Union[str, Path]) -> None:
    """Best-effort fsync of a directory (persists renames on POSIX)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return  # platform without directory fds (e.g. Windows)
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
