"""Deterministic fault-injection harness.

Production code threads *named fault points* through the crash-sensitive
paths of the cube lifecycle (``fault_point("persist.atomic.tmp_written")``
and friends). In normal operation a fault point is a no-op costing one
list check. Under test, :func:`inject` arms faults that trip at the Nth
hit of a point:

    with inject(CrashPoint("persist.atomic.before_replace")):
        with pytest.raises(InjectedCrash):
            save_cube(tabula, path)

Fault kinds:

- :class:`CrashPoint` — raises :class:`InjectedCrash` (simulated process
  death; derives from ``BaseException`` so no library ``except
  Exception`` can accidentally swallow the "kill");
- :class:`IOFault` — raises :class:`InjectedIOError` (an ``OSError``
  subclass, simulating EIO/ENOSPC-style failures that code is expected
  to surface or recover from);
- :class:`SlowIO` — sleeps at the hit, then continues (latency probe);
- :class:`Hang` — from the Nth hit *onward*, every hit stalls: a
  persistently wedged component. One-shot ``SlowIO`` cannot model this
  under concurrency — while one thread serves its sleep, other threads
  sail through the point and a health check alternates miss/ok instead
  of missing consecutively, which is exactly the false negative that
  hides a hung worker from liveness detection.

Every instrumented site registers its point at import time via
:func:`register_fault_point`, so tests can *enumerate* the registry and
prove recovery at every point (the kill-at-every-point property).
Injection is process-local and deterministic: same code path, same hit
counts, same trip.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Sequence, Tuple


class InjectedCrash(BaseException):
    """A simulated process death at a fault point.

    Deliberately a ``BaseException``: recovery code must never be able
    to "handle" a kill — only a restart (or the test harness) sees it.
    """

    def __init__(self, point: str, hit: int):
        super().__init__(f"injected crash at fault point {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class InjectedIOError(OSError):
    """A simulated I/O failure at a fault point."""

    def __init__(self, point: str, message: str):
        super().__init__(f"{message} (injected at fault point {point!r})")
        self.point = point


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, str] = {}


def register_fault_point(name: str, description: str = "") -> str:
    """Declare a named fault point (idempotent; returns the name).

    Instrumented modules call this at import time so the full set of
    points is discoverable without executing any lifecycle code.
    """
    _REGISTRY.setdefault(name, description)
    if description and not _REGISTRY[name]:
        _REGISTRY[name] = description
    return name


def registered_fault_points() -> Tuple[str, ...]:
    """All declared fault points, sorted (the kill-at-every-point set)."""
    return tuple(sorted(_REGISTRY))


def fault_point_description(name: str) -> str:
    return _REGISTRY.get(name, "")


# ---------------------------------------------------------------------------
# Fault specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """Base spec: trip at the ``at``-th hit (1-based) of ``point``."""

    point: str
    at: int = 1

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError(f"'at' must be >= 1, got {self.at}")


@dataclass(frozen=True)
class CrashPoint(FaultSpec):
    """Simulate process death at the Nth hit of a point."""


@dataclass(frozen=True)
class IOFault(FaultSpec):
    """Raise an OSError at the Nth hit of a point."""

    message: str = "injected I/O fault"


@dataclass(frozen=True)
class SlowIO(FaultSpec):
    """Sleep ``seconds`` at the Nth hit of a point, then continue."""

    seconds: float = 0.01
    sleep: Callable[[float], None] = field(default=time.sleep, compare=False)


@dataclass(frozen=True)
class Hang(FaultSpec):
    """Stall every hit from the ``at``-th onward (a wedged component).

    Unlike one-shot :class:`SlowIO`, concurrent hits all stall, so a
    health endpoint instrumented with the point misses *consecutively*
    — the condition liveness detection actually fires on.
    """

    seconds: float = 3600.0
    sleep: Callable[[float], None] = field(default=time.sleep, compare=False)


class _Armed:
    """One armed fault: hit counting plus one-shot trip bookkeeping."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.hits = 0
        self.tripped = False

    def visit(self, name: str) -> None:
        if name != self.spec.point:
            return
        self.hits += 1
        if isinstance(self.spec, Hang):
            if self.hits >= self.spec.at:
                self.tripped = True
                self.spec.sleep(self.spec.seconds)
            return
        if self.tripped or self.hits != self.spec.at:
            return
        self.tripped = True
        if isinstance(self.spec, CrashPoint):
            raise InjectedCrash(name, self.hits)
        if isinstance(self.spec, IOFault):
            raise InjectedIOError(name, self.spec.message)
        if isinstance(self.spec, SlowIO):
            self.spec.sleep(self.spec.seconds)


class InjectionHandle:
    """Introspection over the faults armed by one :func:`inject` block."""

    def __init__(self, armed: List[_Armed]):
        self._armed = armed

    def hits(self, point: str) -> int:
        """Total hits observed for ``point`` inside the block."""
        return sum(a.hits for a in self._armed if a.spec.point == point)

    def tripped(self, point: str) -> bool:
        return any(a.tripped for a in self._armed if a.spec.point == point)

    def any_tripped(self) -> bool:
        return any(a.tripped for a in self._armed)


_ACTIVE: List[_Armed] = []


def fault_point(name: str) -> None:
    """Hit a named fault point (no-op unless a matching fault is armed)."""
    if not _ACTIVE:
        return
    if name not in _REGISTRY:
        raise RuntimeError(
            f"fault_point({name!r}) hit but the point was never registered; "
            "call register_fault_point at module import"
        )
    for armed in tuple(_ACTIVE):
        armed.visit(name)


@contextmanager
def inject(*specs: FaultSpec) -> Iterator[InjectionHandle]:
    """Arm faults for the duration of the block (re-entrant, one-shot).

    Arming an unregistered point is an error — it would silently never
    trip (the classic typo'd-test false negative).
    """
    for spec in specs:
        if spec.point not in _REGISTRY:
            raise ValueError(
                f"unknown fault point {spec.point!r}; registered points: "
                f"{', '.join(registered_fault_points()) or '(none)'}"
            )
    armed = [_Armed(spec) for spec in specs]
    _ACTIVE.extend(armed)
    try:
        yield InjectionHandle(armed)
    finally:
        for a in armed:
            _ACTIVE.remove(a)


# ---------------------------------------------------------------------------
# Cross-process arming (the sharded serving tier's chaos harness)
# ---------------------------------------------------------------------------
#: Environment variable a subprocess entrypoint reads via :func:`arm_from_env`.
FAULTS_ENV_VAR = "REPRO_FAULTS"


def encode_fault_specs(specs: Sequence[FaultSpec]) -> str:
    """Serialize specs for handing to a subprocess via ``REPRO_FAULTS``.

    ``inject`` is process-local; chaos tests that need a fault to trip
    *inside a shard worker* put this string in the worker's environment
    and the worker entrypoint arms it at startup with
    :func:`arm_from_env`.  Custom ``SlowIO.sleep`` callables do not
    cross the process boundary (the worker uses ``time.sleep``).
    """
    encoded = []
    for spec in specs:
        document: Dict[str, object] = {"point": spec.point, "at": spec.at}
        if isinstance(spec, IOFault):
            document["kind"] = "io"
            document["message"] = spec.message
        elif isinstance(spec, SlowIO):
            document["kind"] = "slow"
            document["seconds"] = spec.seconds
        elif isinstance(spec, Hang):
            document["kind"] = "hang"
            document["seconds"] = spec.seconds
        elif isinstance(spec, CrashPoint):
            document["kind"] = "crash"
        else:
            raise ValueError(f"cannot encode fault spec of type {type(spec).__name__}")
        encoded.append(document)
    return json.dumps(encoded, separators=(",", ":"))


def arm_from_env(env_var: str = FAULTS_ENV_VAR) -> int:
    """Arm faults from ``env_var`` for the life of the process.

    Called by subprocess entrypoints (the shard worker) *after* their
    imports, so every instrumented module has registered its points.
    Returns the number of faults armed (0 when the variable is unset).
    Unknown points and malformed specs are errors, matching
    :func:`inject` — a typo'd chaos test must fail loudly, not silently
    never trip.
    """
    text = os.environ.get(env_var, "").strip()
    if not text:
        return 0
    specs: List[FaultSpec] = []
    for document in json.loads(text):
        kind = document.get("kind")
        point = str(document["point"])
        at = int(document.get("at", 1))
        if kind == "crash":
            specs.append(CrashPoint(point, at=at))
        elif kind == "io":
            specs.append(IOFault(point, at=at, message=str(document.get("message", "injected I/O fault"))))
        elif kind == "slow":
            specs.append(SlowIO(point, at=at, seconds=float(document.get("seconds", 0.01))))
        elif kind == "hang":
            specs.append(Hang(point, at=at, seconds=float(document.get("seconds", 3600.0))))
        else:
            raise ValueError(f"unknown fault kind {kind!r} in {env_var}")
    for spec in specs:
        if spec.point not in _REGISTRY:
            raise ValueError(
                f"unknown fault point {spec.point!r} in {env_var}; registered "
                f"points: {', '.join(registered_fault_points()) or '(none)'}"
            )
    _ACTIVE.extend(_Armed(spec) for spec in specs)
    return len(specs)
