"""Command-line interface for the Tabula middleware.

Usage (``python -m repro.cli <command>``):

- ``generate`` — write a synthetic NYC-taxi CSV;
- ``build`` — read a CSV table, initialize a sampling cube, save it;
- ``query`` — answer a dashboard query from a saved cube;
- ``info`` — summarize a saved cube;
- ``cube verify`` — audit a saved cube's checksums and version;
- ``serve`` — run the concurrent dashboard gateway over HTTP (bounded
  admission queue, deadlines, circuit-broken fallback, hot reload;
  ``--ingest DIR`` adds crash-safe streaming ingest with progressive
  answers);
- ``ingest`` — stream a CSV into a running ``serve --ingest`` server,
  honoring typed backpressure;
- ``bench cube`` / ``bench query`` / ``bench serving`` /
  ``bench ingest`` — reproducible benchmarks emitting machine-readable
  ``BENCH_*.json`` documents;
- ``sql`` — execute SQL statements against a CSV-backed session;
- ``lint`` — run the static analyzer over SQL files or inline text;
- ``check`` — run the concurrency/resource-lifecycle static analyzer
  (TAB600-range) over this repo's Python sources.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.bench.metrics import format_bytes, format_seconds
from repro.core.loss.compiler import compile_loss
from repro.core.loss.registry import LossRegistry
from repro.core.persistence import load_cube, save_cube
from repro.core.tabula import Tabula, TabulaConfig
from repro.data import generate_nyctaxi
from repro.engine.io import read_csv, write_csv
from repro.engine.sql import SQLSession
from repro.engine.sql import ast as sql_ast
from repro.engine.sql.parser import parse_statement
from repro.errors import TabulaError


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except TabulaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Tabula sampling-cube middleware (ICDE 2020)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic taxi CSV")
    generate.add_argument("--rows", type=int, default=50_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=cmd_generate)

    build = commands.add_parser("build", help="initialize and save a sampling cube")
    build.add_argument("--table", required=True, help="CSV file with the raw data")
    build.add_argument("--attrs", required=True, help="comma-separated cubed attributes")
    build.add_argument("--loss", default="mean_loss", help="loss function name")
    build.add_argument(
        "--target", required=True, help="comma-separated target attribute(s)"
    )
    build.add_argument("--theta", type=float, required=True, help="loss threshold θ")
    build.add_argument(
        "--loss-sql", help="file with a CREATE AGGREGATE declaring --loss"
    )
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--out", required=True, help="cube file to write")
    build.add_argument(
        "--checkpoint-dir",
        help="journal build progress here; a killed build re-run with the "
        "same directory resumes from the last completed cell",
    )
    build.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel build with N worker processes (bit-identical to "
        "--workers 1 for any N); default: classic serial build",
    )
    build.add_argument(
        "--partitions",
        type=int,
        default=16,
        help="dry-run partition grid size (fixed per table, independent "
        "of --workers, so partial sums merge identically)",
    )
    build.set_defaults(handler=cmd_build)

    query = commands.add_parser("query", help="answer a dashboard query from a cube")
    query.add_argument("--cube", required=True)
    query.add_argument("--table", required=True)
    query.add_argument(
        "--where",
        default="",
        help="conjunction like payment_type=cash,passenger_count=1",
    )
    query.add_argument("--loss-sql", help="replay a CREATE AGGREGATE before loading")
    query.add_argument("--limit", type=int, default=10, help="rows to print")
    query.set_defaults(handler=cmd_query)

    serve = commands.add_parser(
        "serve",
        help="serve a saved cube over HTTP with admission control, "
        "deadlines, a circuit-broken raw fallback and hot reload",
    )
    serve.add_argument("--cube", required=True, help="cube file to serve (and reload)")
    serve.add_argument("--table", required=True, help="CSV file with the raw data")
    serve.add_argument("--loss-sql", help="replay a CREATE AGGREGATE before loading")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787)
    serve.add_argument("--workers", type=int, default=4, help="request executor threads")
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="bounded admission queue; beyond it requests are shed",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline in seconds (requests may "
        "carry their own)",
    )
    serve.add_argument(
        "--min-service-seconds",
        type=float,
        default=0.0,
        help="artificial per-request service floor (overload drills "
        "and smoke tests only; keep 0 in production)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="N > 0 boots the fault-tolerant sharded tier: N supervised "
        "shard-worker processes behind a health-checked router that "
        "degrades to the replicated global sample when a shard is down "
        "(0 = single-process gateway)",
    )
    serve.add_argument(
        "--ingest",
        metavar="DIR",
        help="enable crash-safe streaming ingest: WAL + maintenance journal "
        "live in DIR (replayed on restart), POST /ingest accepts rows, "
        "answers carry staleness, /query?progressive=1 streams refinements. "
        "With --shards each worker keeps its own logs in DIR",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs"
    )
    serve.set_defaults(handler=cmd_serve)

    ingest = commands.add_parser(
        "ingest",
        help="stream rows from a CSV into a running `repro serve --ingest` "
        "server, honoring typed backpressure (Retry-After)",
    )
    ingest.add_argument("--url", required=True, help="server base URL, e.g. http://127.0.0.1:8787")
    ingest.add_argument("--table", required=True, help="CSV file with the rows to append")
    ingest.add_argument(
        "--batch-rows", type=int, default=200, help="rows per POST /ingest micro-batch"
    )
    ingest.add_argument(
        "--seed",
        type=int,
        default=None,
        help="idempotency-key base (batch i submits seed+i); re-running the "
        "same CSV with the same base deduplicates instead of double-appending",
    )
    ingest.add_argument(
        "--max-retries",
        type=int,
        default=50,
        help="bounded backpressure retries per batch before giving up",
    )
    ingest.set_defaults(handler=cmd_ingest)

    info = commands.add_parser("info", help="summarize a saved cube")
    info.add_argument("--cube", required=True)
    info.set_defaults(handler=cmd_info)

    cube = commands.add_parser("cube", help="operate on saved cube files")
    cube_commands = cube.add_subparsers(dest="cube_command", required=True)
    verify = cube_commands.add_parser(
        "verify",
        help="check a saved cube's format version and checksums; exits "
        "non-zero on any corruption",
    )
    verify.add_argument("path", help="cube file to audit")
    verify.add_argument(
        "--quiet", action="store_true", help="print failures only"
    )
    verify.set_defaults(handler=cmd_cube_verify)

    bench = commands.add_parser(
        "bench", help="run reproducible benchmarks, emit machine-readable JSON"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    bench_cube = bench_commands.add_parser(
        "cube",
        help="time cube construction (workers=1 baseline vs --workers) and "
        "record quality invariants",
    )
    bench_cube.add_argument("--rows", type=int, default=20_000)
    bench_cube.add_argument("--seed", type=int, default=0)
    bench_cube.add_argument("--workers", type=int, default=4)
    bench_cube.add_argument("--partitions", type=int, default=16)
    bench_cube.add_argument("--theta", type=float, default=0.05)
    bench_cube.add_argument(
        "--attrs",
        default="payment_type,rate_code,passenger_count",
        help="comma-separated cubed attributes of the synthetic table",
    )
    bench_cube.add_argument("--loss", default="mean_loss")
    bench_cube.add_argument("--target", default="fare_amount")
    bench_cube.add_argument("--out", default="BENCH_cube_init.json")
    bench_cube.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if quality invariants drift (digest mismatch "
        "between worker counts, θ-bound violation)",
    )
    bench_cube.set_defaults(handler=cmd_bench_cube)
    bench_query = bench_commands.add_parser(
        "query", help="time the dashboard query path over a random workload"
    )
    bench_query.add_argument("--rows", type=int, default=20_000)
    bench_query.add_argument("--seed", type=int, default=0)
    bench_query.add_argument("--workers", type=int, default=1)
    bench_query.add_argument("--queries", type=int, default=100)
    bench_query.add_argument("--theta", type=float, default=0.05)
    bench_query.add_argument(
        "--attrs", default="payment_type,rate_code,passenger_count"
    )
    bench_query.add_argument("--loss", default="mean_loss")
    bench_query.add_argument("--target", default="fare_amount")
    bench_query.add_argument("--out", default="BENCH_query.json")
    bench_query.add_argument(
        "--clients",
        type=int,
        default=1,
        help="concurrent client threads draining the workload against "
        "one shared cube (1 = the classic serial loop)",
    )
    bench_query.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="B",
        help="also replay the workload through query_many in batches of B "
        "(the dashboard viewport fetch) and record throughput vs the "
        "single-query loop plus an answers-match equivalence bit",
    )
    bench_query.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on invariant drift (θ-bound violation, any "
        "VOID answer, or batched answers diverging from single-query "
        "answers under --batch)",
    )
    bench_query.set_defaults(handler=cmd_bench_query)
    bench_serving = bench_commands.add_parser(
        "serving",
        help="drive the serving gateway through a steady and an "
        "overloaded phase; records throughput, shed rate and the p99 tail",
    )
    bench_serving.add_argument("--rows", type=int, default=20_000)
    bench_serving.add_argument("--seed", type=int, default=0)
    bench_serving.add_argument("--queries", type=int, default=200)
    bench_serving.add_argument("--theta", type=float, default=0.05)
    bench_serving.add_argument(
        "--attrs", default="payment_type,rate_code,passenger_count"
    )
    bench_serving.add_argument("--loss", default="mean_loss")
    bench_serving.add_argument("--target", default="fare_amount")
    bench_serving.add_argument(
        "--workers", type=int, default=2, help="gateway workers in the overload phase"
    )
    bench_serving.add_argument(
        "--queue-depth", type=int, default=4, help="admission bound in the overload phase"
    )
    bench_serving.add_argument(
        "--clients", type=int, default=16, help="concurrent clients in the overload phase"
    )
    bench_serving.add_argument(
        "--deadline", type=float, default=None, help="per-request deadline in seconds"
    )
    bench_serving.add_argument(
        "--shards",
        type=int,
        default=0,
        help="N > 0 adds sharded-tier phases: single-shard vs N-shard "
        "throughput plus a chaos phase that SIGKILLs a worker under load "
        "and measures degradation + recovery",
    )
    bench_serving.add_argument(
        "--workload",
        choices=("cells", "viewport"),
        default="cells",
        help="'cells' drives random cube-cell queries (default); 'viewport' "
        "drives zoom-level map sessions with per-query bbox geometries and "
        "adds an oracle-replayed 'viewport' section to the document",
    )
    bench_serving.add_argument("--out", default="BENCH_serving.json")
    bench_serving.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if the accounting invariants break (requests "
        "lost/double-counted, malformed outcomes); rates are never gated",
    )
    bench_serving.set_defaults(handler=cmd_bench_serving)
    bench_ingest = bench_commands.add_parser(
        "ingest",
        help="drive the streaming-ingest pipeline under concurrent queries; "
        "records throughput, backpressure accounting and a WAL-replay "
        "recovery digest check",
    )
    bench_ingest.add_argument("--rows", type=int, default=20_000)
    bench_ingest.add_argument("--seed", type=int, default=0)
    bench_ingest.add_argument("--theta", type=float, default=0.05)
    bench_ingest.add_argument(
        "--attrs", default="payment_type,rate_code,passenger_count"
    )
    bench_ingest.add_argument("--loss", default="mean_loss")
    bench_ingest.add_argument("--target", default="fare_amount")
    bench_ingest.add_argument(
        "--batches", type=int, default=30, help="micro-batches to stream in"
    )
    bench_ingest.add_argument(
        "--batch-rows", type=int, default=50, help="rows per micro-batch"
    )
    bench_ingest.add_argument(
        "--writers", type=int, default=2, help="concurrent submit threads"
    )
    bench_ingest.add_argument(
        "--query-clients",
        type=int,
        default=2,
        help="concurrent query threads reading the cube during ingest",
    )
    bench_ingest.add_argument(
        "--queries", type=int, default=80, help="distinct workload queries"
    )
    bench_ingest.add_argument(
        "--maintain-delay",
        type=float,
        default=0.0,
        help="artificial per-batch maintainer delay (backpressure/staleness "
        "drills only; keep 0 for throughput numbers)",
    )
    bench_ingest.add_argument("--out", default="BENCH_ingest.json")
    bench_ingest.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if robustness invariants break (submission "
        "accounting, untyped failures, queue bound, watermark catch-up, "
        "recovery digest); rates are never gated",
    )
    bench_ingest.set_defaults(handler=cmd_bench_ingest)

    sql = commands.add_parser("sql", help="run SQL statements against a CSV table")
    sql.add_argument("--table", required=True, help="CSV file registered as its basename")
    sql.add_argument("statements", nargs="+", help="SQL statements to execute in order")
    sql.set_defaults(handler=cmd_sql)

    lint = commands.add_parser(
        "lint",
        help="statically analyze loss-DSL SQL (files, or inline statements/expressions)",
    )
    lint.add_argument(
        "targets",
        nargs="+",
        help="*.sql/*.md/*.py files, or inline SQL / a bare loss-body expression",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    lint.set_defaults(handler=cmd_lint)

    check = commands.add_parser(
        "check",
        help="statically analyze this repo's Python sources for concurrency "
        "and resource-lifecycle bugs (the TAB600-range checks)",
    )
    check.add_argument(
        "targets",
        nargs="+",
        help="Python files or directories (directories are scanned for *.py)",
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    check.set_defaults(handler=cmd_check)
    return parser


# ---------------------------------------------------------------------------
def cmd_generate(args) -> int:
    table = generate_nyctaxi(num_rows=args.rows, seed=args.seed)
    write_csv(table, args.out)
    print(f"wrote {table.num_rows} rides to {args.out}")
    return 0


def _registry_with_declaration(path: Optional[str]) -> LossRegistry:
    registry = LossRegistry()
    if path:
        with open(path) as handle:
            statement = parse_statement(handle.read())
        if not isinstance(statement, sql_ast.CreateAggregate):
            raise TabulaError(f"{path}: expected a CREATE AGGREGATE statement")
        registry.register(compile_loss(statement), replace=True)
    return registry


def cmd_build(args) -> int:
    from repro.engine.schema import ColumnType

    attrs = tuple(args.attrs.split(","))
    # Cube attributes are categorical by definition; forcing CATEGORY
    # keeps digit-labeled values (passenger counts, zone ids) stable
    # across CSV round trips.
    table = read_csv(args.table, types={a: ColumnType.CATEGORY for a in attrs})
    registry = _registry_with_declaration(args.loss_sql)
    loss = registry.bind(args.loss, tuple(args.target.split(",")))
    tabula = Tabula(
        table,
        TabulaConfig(
            cubed_attrs=attrs,
            threshold=args.theta,
            loss=loss,
            seed=args.seed,
            partitions=args.partitions,
        ),
    )
    report = tabula.initialize(
        checkpoint_dir=args.checkpoint_dir, workers=args.workers
    )
    declaration = None
    if args.loss_sql:
        with open(args.loss_sql) as handle:
            declaration = handle.read()
    save_cube(tabula, args.out, loss_declaration=declaration)
    memory = tabula.memory_breakdown()
    print(
        f"built {args.out}: {report.num_iceberg_cells}/{report.num_cells} iceberg cells, "
        f"{report.num_representatives} samples, {format_bytes(memory.total_bytes)}, "
        f"init {format_seconds(report.total_seconds)}"
    )
    return 0


def _parse_where(text: str) -> Dict[str, object]:
    conditions: Dict[str, object] = {}
    if not text:
        return conditions
    for clause in text.split(","):
        if "=" not in clause:
            raise TabulaError(f"bad --where clause {clause!r}; expected attr=value")
        attr, value = clause.split("=", 1)
        conditions[attr.strip()] = value.strip()
    return conditions


def cmd_query(args) -> int:
    from repro.engine.schema import ColumnType

    with open(args.cube) as handle:
        document = json.load(handle)
    attrs = document.get("cubed_attrs", [])
    table = read_csv(args.table, types={a: ColumnType.CATEGORY for a in attrs})
    registry = _registry_with_declaration(args.loss_sql)
    tabula = load_cube(args.cube, table, registry=registry)
    result = tabula.query(_parse_where(args.where))
    print(
        f"source={result.source} rows={result.sample.num_rows} "
        f"time={format_seconds(result.data_system_seconds)}"
    )
    if result.sample.num_rows:
        print(result.sample.format(limit=args.limit))
    return 0


def cmd_serve(args) -> int:
    from repro.engine.schema import ColumnType
    from repro.serving import ServingConfig, ServingGateway
    from repro.serving.http import serve_http

    if getattr(args, "shards", 0) and args.shards > 0:
        return _serve_sharded(args)
    with open(args.cube) as handle:
        document = json.load(handle)
    attrs = document.get("cubed_attrs", [])
    table = read_csv(args.table, types={a: ColumnType.CATEGORY for a in attrs})
    registry = _registry_with_declaration(args.loss_sql)
    gateway = ServingGateway.from_cube_file(
        args.cube,
        table,
        registry=registry,
        config=ServingConfig(
            workers=args.workers,
            queue_depth=args.queue_depth,
            default_deadline_seconds=args.deadline,
            min_service_seconds=args.min_service_seconds,
        ),
    )
    ingestor = None
    if getattr(args, "ingest", None):
        from pathlib import Path

        from repro.ingest import StreamIngestor, recover_ingest

        ingest_dir = Path(args.ingest)
        ingest_dir.mkdir(parents=True, exist_ok=True)
        wal_path = ingest_dir / "ingest.wal"
        journal_path = ingest_dir / "maintenance.journal"
        # A disk-restored cube lacks the dry-run statistics the append
        # planner needs; re-initialize before replaying the logs.
        gateway.tabula.initialize()
        recovery = recover_ingest(gateway.tabula, wal_path, journal_path)
        ingestor = StreamIngestor(gateway.tabula, wal_path, journal_path)
        gateway.attach_ingestor(ingestor)
        print(
            f"ingest logs in {ingest_dir}: recovered "
            f"{recovery.reapplied_batches} batch(es), finished "
            f"{recovery.replayed_plans} plan(s), skipped "
            f"{recovery.skipped_batches} committed"
        )
    print(
        f"serving {args.cube} on http://{args.host}:{args.port} "
        f"(workers={args.workers}, queue={args.queue_depth}, "
        f"deadline={args.deadline if args.deadline is not None else 'none'})"
    )
    routes = "routes: POST/GET /query, GET /healthz /readyz /stats, POST /reload"
    if ingestor is not None:
        routes += ", POST /ingest, GET /query?...&progressive=1 (SSE)"
    print(routes)
    try:
        serve_http(gateway, host=args.host, port=args.port, quiet=args.quiet)
    finally:
        if ingestor is not None:
            ingestor.close()
    return 0


def _serve_sharded(args) -> int:
    """``repro serve --shards N``: supervised workers behind the router."""
    from repro.core.persistence import load_cube
    from repro.engine.schema import ColumnType
    from repro.serving.http import serve_http
    from repro.serving.placement import Placement, shard_transform
    from repro.serving.router import RouterConfig, ShardRouter
    from repro.serving.supervisor import ShardSupervisor, default_worker_factory

    with open(args.cube) as handle:
        document = json.load(handle)
    attrs = document.get("cubed_attrs", [])
    table = read_csv(args.table, types={a: ColumnType.CATEGORY for a in attrs})
    registry = _registry_with_declaration(args.loss_sql)
    placement = Placement(args.shards)

    def worker_argv(shard: int) -> list:
        argv = [
            sys.executable, "-m", "repro.serving.shard_worker",
            "--cube", args.cube, "--table", args.table,
            "--shard", str(shard), "--num-shards", str(args.shards),
            "--workers", str(args.workers), "--queue-depth", str(args.queue_depth),
            "--min-service-seconds", str(args.min_service_seconds),
        ]
        if args.deadline is not None:
            argv += ["--deadline", str(args.deadline)]
        if args.loss_sql:
            argv += ["--loss-sql", args.loss_sql]
        if getattr(args, "ingest", None):
            argv += ["--ingest-dir", args.ingest]
        return argv

    supervisor = ShardSupervisor(default_worker_factory(worker_argv), args.shards)
    supervisor.start()
    up = supervisor.up_shards()
    fallback = shard_transform(placement, None)(
        load_cube(args.cube, table, registry=registry)
    )
    router = ShardRouter(
        supervisor, placement, fallback, cube_path=args.cube, registry=registry
    )
    print(
        f"serving {args.cube} on http://{args.host}:{args.port} with "
        f"{len(up)}/{args.shards} shard workers up "
        f"(per-worker: workers={args.workers}, queue={args.queue_depth}; "
        f"failed shards degrade to the replicated global sample)"
    )
    print("routes: POST/GET /query, GET /healthz /readyz /stats, POST /reload")
    serve_http(router, host=args.host, port=args.port, quiet=args.quiet)
    return 0


def cmd_info(args) -> int:
    with open(args.cube) as handle:
        document = json.load(handle)
    samples = document["sample_table"]
    sample_tuples = sum(payload["num_rows"] for payload in samples.values())
    print(f"cube file:        {args.cube}")
    print(f"cubed attributes: {', '.join(document['cubed_attrs'])}")
    print(f"threshold θ:      {document['threshold']}")
    print(f"loss function:    {document['loss']['name']} on {document['loss']['target_attrs']}")
    print(f"iceberg cells:    {len(document['cube_table'])}")
    print(f"known cells:      {len(document['known_cells'])}")
    print(f"samples:          {len(samples)} ({sample_tuples} tuples)")
    print(f"global sample:    {document['global_sample']['table']['num_rows']} tuples")
    return 0


def cmd_cube_verify(args) -> int:
    from repro.core.persistence import verify_cube_file

    report = verify_cube_file(args.path)
    print(f"cube file:      {report.path}")
    print(f"format version: {report.format_version}")
    for status in report.sections:
        if status.ok and args.quiet:
            continue
        mark = "ok  " if status.ok else "FAIL"
        code = f" [{status.code}]" if status.code else ""
        detail = f" — {status.detail}" if status.detail else ""
        print(f"  {mark} {status.section}{code}{detail}")
    if report.ok:
        print("verdict: OK")
        return 0
    print(f"verdict: CORRUPT ({len(report.failures)} section(s) failed)")
    return 1


def _bench_settings(args):
    from repro.bench.cube_bench import BenchSettings

    return BenchSettings(
        num_rows=args.rows,
        seed=args.seed,
        attrs=tuple(args.attrs.split(",")),
        loss_name=args.loss,
        target=tuple(args.target.split(",")),
        theta=args.theta,
        partitions=getattr(args, "partitions", 16),
    )


def cmd_bench_cube(args) -> int:
    from repro.bench.cube_bench import bench_cube, check_cube_doc, write_bench_doc

    doc = bench_cube(_bench_settings(args), workers=args.workers)
    write_bench_doc(doc, args.out)
    gate = doc.get("speedup_gate", {})
    print(
        f"wrote {args.out}: serial {format_seconds(doc['serial']['wall_seconds'])}, "
        f"workers={args.workers} {format_seconds(doc['parallel']['wall_seconds'])}, "
        f"speedup {doc['speedup_vs_serial']:.2f}x "
        f"({'gated' if gate.get('enforced') else 'ungated: ' + str(gate.get('reason', ''))}), "
        f"digests {'equal' if doc['digests_equal'] else 'DIFFER'}"
    )
    for side in ("serial", "parallel"):
        for stage, execution in (doc[side].get("execution") or {}).items():
            if execution and execution.get("fallback_kind") == "error":
                print(
                    f"WARNING: {side} {stage} fell back to inline execution: "
                    f"{execution.get('fallback_reason')}",
                    file=sys.stderr,
                )
    if args.check:
        failures = check_cube_doc(doc)
        for failure in failures:
            print(f"invariant drift: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


def cmd_bench_query(args) -> int:
    from repro.bench.cube_bench import bench_query, check_query_doc, write_bench_doc

    doc = bench_query(
        _bench_settings(args),
        workers=args.workers,
        num_queries=args.queries,
        clients=args.clients,
        batch_size=args.batch,
    )
    write_bench_doc(doc, args.out)
    lat = doc["latency_seconds"]
    print(
        f"wrote {args.out}: {doc['num_queries']} queries, clients={doc['clients']}, "
        f"mean {format_seconds(lat['mean'])}, p95 {format_seconds(lat['p95'])}, "
        f"p99 {format_seconds(lat['p99'])}, sources {doc['source_mix']}"
    )
    batch = doc.get("batch")
    if batch:
        print(
            f"batch={batch['batch_size']}: "
            f"{batch['batch_throughput_qps']:.0f} q/s batched vs "
            f"{batch['single_throughput_qps']:.0f} q/s single "
            f"({batch['speedup_vs_single']:.2f}x), answers "
            f"{'match' if batch['answers_match_single'] else 'DIVERGE'}"
        )
    if args.check:
        failures = check_query_doc(doc)
        for failure in failures:
            print(f"invariant drift: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


def cmd_bench_serving(args) -> int:
    from repro.bench.cube_bench import bench_serving, check_serving_doc, write_bench_doc

    settings = _bench_settings(args)
    doc = bench_serving(
        settings,
        workers=args.workers,
        queue_depth=args.queue_depth,
        clients=args.clients,
        num_queries=args.queries,
        deadline_seconds=args.deadline,
        shards=args.shards,
        workload=args.workload,
    )
    write_bench_doc(doc, args.out)
    overload = doc["phases"]["overload"]
    print(
        f"wrote {args.out}: overload {overload['offered']} requests via "
        f"{overload['clients']} clients -> {overload['served']} served, "
        f"{overload['shed']} shed ({overload['shed_rate']:.0%}), "
        f"p99 {format_seconds(overload['latency_seconds']['p99'])}, "
        f"{overload['throughput_rps']:.0f} req/s"
    )
    viewport = doc.get("viewport")
    if viewport:
        zmin, zmax = viewport["zoom_range"]
        print(
            f"viewport: {viewport['offered']} requests over zooms {zmin}..{zmax}, "
            f"{viewport['spatial_filtered_answers']} spatially filtered "
            f"({viewport['strict_subset_answers']} strict subsets), "
            f"{len(viewport['oracle_mismatches'])} oracle mismatches, "
            f"{len(viewport['rows_outside_viewport'])} containment breaks, "
            f"{len(viewport['certified_violations'])} certified violations"
        )
    sharded = doc.get("sharded")
    if sharded:
        gate = sharded["scaling_gate"]
        chaos = sharded["phases"]["chaos"]
        recovery = sharded["recovery"]
        print(
            f"sharded: {sharded['shards']} shards "
            f"{sharded['speedup_vs_single_shard']:.2f}x vs 1 shard "
            f"({'gated' if gate['enforced'] else 'gate skipped: ' + gate['reason']}); "
            f"chaos killed shard {chaos['killed_shard']}: "
            f"{chaos['downgraded']} downgraded / {chaos['offered']} offered, "
            f"{len(chaos['errors'])} errors, recovered="
            f"{recovery['recovered']} in {recovery['recovery_seconds']:.1f}s"
        )
    if args.check:
        failures = check_serving_doc(doc)
        for failure in failures:
            print(f"invariant drift: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


def cmd_bench_ingest(args) -> int:
    from repro.bench.cube_bench import write_bench_doc
    from repro.bench.ingest_bench import bench_ingest, check_ingest_doc

    doc = bench_ingest(
        _bench_settings(args),
        batches=args.batches,
        batch_rows=args.batch_rows,
        writers=args.writers,
        query_clients=args.query_clients,
        num_queries=args.queries,
        maintain_delay_seconds=args.maintain_delay,
    )
    write_bench_doc(doc, args.out)
    ingest = doc["ingest"]
    recovery = doc["recovery"]
    gate = doc["latency_gate"]
    print(
        f"wrote {args.out}: {ingest['rows_ingested']} rows in "
        f"{format_seconds(ingest['submit_wall_seconds'])} "
        f"({ingest['durable_rows_per_second']:.0f} rows/s durable), "
        f"{ingest['backpressure_retries']} backpressure retries, "
        f"applied caught up in {format_seconds(ingest['applied_catchup_seconds'])}, "
        f"max staleness {ingest['max_staleness_batches']} batch(es)"
    )
    print(
        f"query p99 idle {format_seconds(doc['idle']['latency_seconds']['p99'])} vs "
        f"under ingest {format_seconds(ingest['latency_seconds']['p99'])} "
        f"({'gated' if gate['enforced'] else 'gate skipped: ' + gate['reason']}); "
        f"recovery digests {'equal' if recovery['digests_equal'] else 'DIFFER'}"
    )
    if args.check:
        failures = check_ingest_doc(doc)
        for failure in failures:
            print(f"invariant drift: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


def cmd_ingest(args) -> int:
    """Stream a CSV into a running ``serve --ingest`` server over HTTP."""
    import urllib.error
    import urllib.request

    table = read_csv(args.table)
    url = args.url.rstrip("/") + "/ingest"
    total = table.num_rows
    sent = 0
    batch_index = 0
    while sent < total:
        rows = table.slice(sent, min(sent + args.batch_rows, total))
        body = {"rows": rows.to_pydict(), "wait_durable": True}
        if args.seed is not None:
            body["seed"] = args.seed + batch_index
        payload = json.dumps(body).encode("utf-8")
        attempts = 0
        while True:
            request = urllib.request.Request(
                url, data=payload, headers={"Content-Type": "application/json"}
            )
            try:
                with urllib.request.urlopen(request) as response:
                    document = json.load(response)
                break
            except urllib.error.HTTPError as exc:
                document = json.loads(exc.read().decode("utf-8") or "{}")
                retry_after = exc.headers.get("Retry-After")
                if exc.code == 503 and retry_after and attempts < args.max_retries:
                    attempts += 1
                    time.sleep(
                        float(document.get("retry_after_seconds", retry_after))
                    )
                    continue
                print(
                    f"batch {batch_index}: HTTP {exc.code} "
                    f"{document.get('outcome', '')} {document.get('detail', '')}",
                    file=sys.stderr,
                )
                return 1
            except urllib.error.URLError as exc:
                print(f"cannot reach {url}: {exc.reason}", file=sys.stderr)
                return 1
        sent += rows.num_rows
        batch_index += 1
        marks = document.get("watermarks", {})
        print(
            f"batch {batch_index}: {rows.num_rows} rows durable "
            f"(seq {document.get('seq')}, {sent}/{total} sent, "
            f"retries {attempts}, applied_seq {marks.get('applied_seq', '?')})"
        )
    print(f"ingested {sent} rows in {batch_index} batch(es)")
    return 0


def cmd_sql(args) -> int:
    import os

    session = SQLSession()
    name = os.path.splitext(os.path.basename(args.table))[0]
    session.register_table(name, read_csv(args.table))
    for statement in args.statements:
        seen = len(session.diagnostics)
        result = session.execute(statement)
        for diagnostic in session.diagnostics[seen:]:
            print(diagnostic.render(), file=sys.stderr)
        _print_sql_result(result)
    return 0


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis.lint import LintResult, lint_inline, lint_path

    total = LintResult()
    for target in args.targets:
        path = Path(target)
        if path.is_file():
            total.extend(lint_path(path))
        elif path.suffix.lower() in {".sql", ".md", ".markdown", ".py"} or "/" in target:
            # Looks like a file path, not inline SQL — a typo'd path would
            # otherwise be "linted" as an expression, which is baffling.
            print(f"error: no such file: {target}", file=sys.stderr)
            return 1
        else:
            total.extend(lint_inline(target))
    for diagnostic in total.diagnostics:
        print(diagnostic.render())
        print()
    print(total.summary())
    failing = total.error_count > 0 or (args.strict and total.warning_count > 0)
    return 1 if failing else 0


def cmd_check(args) -> int:
    from pathlib import Path

    from repro.analysis.concurrency import check_paths

    paths: List[Path] = []
    for target in args.targets:
        path = Path(target)
        if not path.exists():
            print(f"error: no such file or directory: {target}", file=sys.stderr)
            return 1
        paths.append(path)
    result = check_paths(paths)
    for diagnostic in result.diagnostics:
        print(diagnostic.render())
        print()
    print(result.summary())
    failing = result.error_count > 0 or (args.strict and result.warning_count > 0)
    return 1 if failing else 0


def _print_sql_result(result) -> None:
    from repro.core.tabula import InitializationReport, QueryResult
    from repro.engine.table import Table

    if isinstance(result, InitializationReport):
        print(
            f"cube initialized: {result.num_iceberg_cells}/{result.num_cells} iceberg "
            f"cells in {format_seconds(result.total_seconds)}"
        )
    elif isinstance(result, QueryResult):
        print(f"source={result.source} rows={result.sample.num_rows}")
        if result.sample.num_rows:
            print(result.sample.format(limit=10))
    elif isinstance(result, Table):
        print(result.format(limit=20))
    else:
        print(result)


if __name__ == "__main__":
    sys.exit(main())
