"""Entry point of the loss-function static analyzer.

:func:`analyze_loss` runs the three body passes of
:mod:`repro.analysis.loss_passes` over a parsed ``CREATE AGGREGATE``
statement and returns every finding plus the facts downstream stages
need: the bound arity of the loss, the inferred sufficient-statistic
layout, and the interval the body provably lies in.

Pass staging: when the structural pass reports errors, the hazard and
usage passes are skipped — a body with unknown aggregates or datasets
would only produce cascading noise, and skipping keeps the *first*
diagnostic (which the compiler turns into the raised exception)
identical to the pre-analyzer error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.intervals import Interval
from repro.analysis.loss_passes import (
    SufficientStatistics,
    hazard_pass,
    structural_pass,
    usage_pass,
)
from repro.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.engine.sql import ast


@dataclass
class LossAnalysisResult:
    """Everything the analyzer learned about one loss declaration."""

    name: str
    diagnostics: Tuple[Diagnostic, ...]
    #: Number of target attributes the loss needs when bound (2 when the
    #: body uses ANGLE, else 1). Meaningless if ``has_errors``.
    arity: int = 1
    #: Inferred per-cell state layout; ``None`` when structure is broken.
    sufficient_stats: Optional[SufficientStatistics] = None
    #: Interval the body provably lies in; ``None`` when not analyzed.
    body_range: Optional[Interval] = None
    uses_angle: bool = False

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self.diagnostics)

    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)

    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == Severity.WARNING)


def analyze_loss(
    stmt: ast.CreateAggregate,
    source: Optional[str] = None,
    filename: str = "<sql>",
) -> LossAnalysisResult:
    """Run all body passes over one ``CREATE AGGREGATE`` statement."""
    diagnostics: List[Diagnostic] = []

    def emit(diag: Diagnostic) -> None:
        diagnostics.append(diag.with_source(source, filename))

    structural = structural_pass(stmt, emit)
    body_range: Optional[Interval] = None
    if structural.ok:
        body_range = hazard_pass(stmt, emit)
        usage_pass(stmt, structural, emit)
    uses_angle = any(c.call.func == "ANGLE" for c in structural.calls)
    return LossAnalysisResult(
        name=stmt.name,
        diagnostics=tuple(sort_diagnostics(diagnostics)),
        arity=structural.arity,
        sufficient_stats=structural.sufficient_stats,
        body_range=body_range,
        uses_angle=uses_angle,
    )
