"""Interval arithmetic over the extended reals for range analysis.

The hazard pass (:mod:`repro.analysis.loss_passes`) folds a loss body
bottom-up into an :class:`Interval` to decide whether a denominator can
be zero, whether a SQRT/LOG argument can leave its domain, and whether
the whole body is provably non-negative. Everything is conservative:
when in doubt an interval widens, never narrows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- predicates -----------------------------------------------------
    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    @property
    def contains_zero(self) -> bool:
        return self.lo <= 0.0 <= self.hi

    @property
    def is_nonnegative(self) -> bool:
        return self.lo >= 0.0

    @property
    def is_positive(self) -> bool:
        return self.lo > 0.0

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(_add(self.lo, -other.hi), _add(self.hi, -other.lo))

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = [
            _mul(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(products), max(products))

    def divide(self, other: "Interval") -> "Interval":
        """``self / other`` under the dialect's total semantics.

        A denominator interval containing zero widens the result to
        ``[-inf, inf]`` — the dialect maps x/0 to +inf, and the sign of
        an infinitesimal denominator is unknowable statically.
        """
        if other.contains_zero:
            return TOP
        quotients = [
            _div(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(quotients), max(quotients))

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


TOP = Interval(-_INF, _INF)
NON_NEGATIVE = Interval(0.0, _INF)


def point(value: float) -> Interval:
    """The degenerate interval ``[v, v]``."""
    return Interval(value, value)


def _add(a: float, b: float) -> float:
    """Extended-real addition; opposing infinities widen to the sign of a."""
    if math.isinf(a) and math.isinf(b) and (a > 0) != (b > 0):
        return a  # conservative: keep the left operand's direction
    return a + b


def _mul(a: float, b: float) -> float:
    """Extended-real multiplication with 0 * inf := 0 (dialect semantics)."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


def _div(a: float, b: float) -> float:
    if math.isinf(a) and math.isinf(b):
        return math.copysign(1.0, a) * math.copysign(1.0, b)
    if b == 0.0:  # callers exclude 0-containing denominators; belt & braces
        return _INF if a >= 0 else -_INF
    return a / b


# -- scalar-function transfer functions -------------------------------------
def abs_(iv: Interval) -> Interval:
    if iv.lo >= 0.0:
        return iv
    if iv.hi <= 0.0:
        return -iv
    return Interval(0.0, max(-iv.lo, iv.hi))


def sqrt_(iv: Interval) -> Interval:
    """Range of SQRT; out-of-domain inputs evaluate to +inf at runtime."""
    lo = math.sqrt(max(iv.lo, 0.0)) if not math.isinf(iv.lo) else 0.0
    hi = math.sqrt(iv.hi) if iv.hi >= 0.0 and not math.isinf(iv.hi) else _INF
    if iv.lo < 0.0:
        hi = _INF  # negative inputs map to inf
    return Interval(min(lo, hi), hi)


def log_(iv: Interval) -> Interval:
    """Range of LOG; non-positive inputs evaluate to +inf at runtime."""
    if iv.lo <= 0.0:
        return TOP  # log near 0+ dives to -inf; invalid inputs give +inf
    lo = math.log(iv.lo) if not math.isinf(iv.lo) else _INF
    hi = math.log(iv.hi) if not math.isinf(iv.hi) else _INF
    return Interval(lo, hi)


def exp_(iv: Interval) -> Interval:
    try:
        lo = math.exp(iv.lo) if not math.isinf(iv.lo) else (0.0 if iv.lo < 0 else _INF)
    except OverflowError:
        lo = _INF
    try:
        hi = math.exp(iv.hi) if not math.isinf(iv.hi) else (0.0 if iv.hi < 0 else _INF)
    except OverflowError:
        hi = _INF
    return Interval(lo, hi)


def pow_(base: Interval, exponent: Interval) -> Interval:
    """Conservative range of POW.

    Precise only for literal even exponents (→ non-negative) and
    non-negative bases; everything else widens to ``[-inf, inf]``.
    """
    if exponent.lo == exponent.hi:
        n = exponent.lo
        if float(n).is_integer() and int(n) % 2 == 0:
            return NON_NEGATIVE
    if base.is_nonnegative:
        return NON_NEGATIVE
    return TOP
