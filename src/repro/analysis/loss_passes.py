"""Static-analysis passes over ``CREATE AGGREGATE`` loss bodies.

Three passes, run in order by :func:`repro.analysis.analyzer.analyze_loss`:

1. **Structural / algebraic decomposability** — every aggregate call is
   classified distributive / algebraic / holistic against the engine's
   aggregate framework; holistic calls, unknown aggregates, unknown
   datasets and malformed calls are rejected. The pass also infers the
   sufficient-statistic tuple the dry run will materialize per cell and
   its bounded size.
2. **Domain hazards** — interval range analysis over the body flags
   divisions whose denominator can be zero, ``SQRT``/``LOG`` of
   possibly-out-of-domain subexpressions, and bodies whose range cannot
   be proven non-negative.
3. **Parameter usage** — a body that never aggregates the sample
   parameter is constant w.r.t. the sample (error); one that never
   aggregates the raw parameter cannot converge (warning).

This module owns the aggregate vocabulary of the loss dialect
(:data:`CROSS_AGGS`, :data:`SPECIAL_AGGS`, :data:`SCALAR_FUNC_ARITY`);
the compiler imports it from here so the two can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.analysis import intervals
from repro.analysis.codes import info
from repro.analysis.intervals import Interval
from repro.diagnostics import Diagnostic, Severity, Span
from repro.engine import aggregates as agg
from repro.engine.sql import ast
from repro.errors import LossFunctionError

#: Visualization-aware cross aggregates (Function 2 of the paper) and
#: the distance metric each one uses.
CROSS_AGGS: Dict[str, str] = {
    "AVG_MIN_DIST": "euclidean",
    "AVG_MIN_DIST_MANHATTAN": "manhattan",
}

#: Aggregates with bespoke sufficient statistics (not engine aggregates).
SPECIAL_AGGS = frozenset({"ANGLE"})

#: Scalar-function vocabulary and the argument count each one requires.
SCALAR_FUNC_ARITY: Dict[str, int] = {
    "ABS": 1,
    "SQRT": 1,
    "LOG": 1,
    "EXP": 1,
    "POW": 2,
}

#: State-tuple layout of the bespoke aggregates.
ANGLE_STATE_FIELDS = ("n", "sum_x", "sum_y", "sum_xy", "sum_xx")
CROSS_STATE_FIELDS = ("count", "min_dist_sum")

Emit = Callable[[Diagnostic], None]


# ---------------------------------------------------------------------------
# Shared AST walking
# ---------------------------------------------------------------------------
def walk_expr(expr: ast.ScalarExpr) -> Iterator[ast.ScalarExpr]:
    """Yield every node of a scalar expression, parents before children."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.FuncCall):
            stack.extend(reversed(node.args))
        elif isinstance(node, ast.BinOp):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, ast.UnaryOp):
            stack.append(node.operand)


def agg_calls_in_order(expr: ast.ScalarExpr) -> List[ast.AggCall]:
    """Every aggregate call, in source order when spans are present."""
    calls = [node for node in walk_expr(expr) if isinstance(node, ast.AggCall)]
    if all(c.span is not None for c in calls):
        calls.sort(key=lambda c: c.span.start)
    return calls


def _print_call(call: ast.AggCall) -> str:
    return f"{call.func}({', '.join(call.args)})"


# ---------------------------------------------------------------------------
# Pass 1 — structure and algebraic decomposability
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CallInfo:
    """Classification of one aggregate call in a loss body."""

    call: ast.AggCall
    side: str  # "raw" | "sam" | "cross"
    classification: str  # "distributive" | "algebraic" | "holistic"
    state_fields: Tuple[str, ...]
    bounded: bool

    @property
    def state_size(self) -> int:
        return len(self.state_fields)

    def render(self) -> str:
        return f"{_print_call(self.call)}: {self.classification}, state {self.state_fields}"


@dataclass(frozen=True)
class StatComponent:
    """One slot group of the inferred sufficient-statistic tuple."""

    label: str
    fields: Tuple[str, ...]
    bounded: bool = True

    @property
    def size(self) -> int:
        return len(self.fields)


@dataclass(frozen=True)
class SufficientStatistics:
    """The per-cell state the dry run materializes for a compiled loss.

    Mirrors :class:`repro.core.loss.compiler.CompiledLoss`: a leading
    raw-count slot, one component per distinct raw-side/cross call, and
    a separate sample summary (count + one finalized value per sam-side
    call).
    """

    components: Tuple[StatComponent, ...]
    sample_summary_size: int

    @property
    def bounded(self) -> bool:
        return all(c.bounded for c in self.components)

    @property
    def total_size(self) -> Optional[int]:
        """Scalar slots per cell, or ``None`` when a component is unbounded."""
        if not self.bounded:
            return None
        return sum(c.size for c in self.components) + self.sample_summary_size

    def describe(self) -> str:
        parts = " ⊕ ".join(
            f"{c.label}({', '.join(c.fields)})" + ("" if c.bounded else " [unbounded]")
            for c in self.components
        )
        size = self.total_size
        bound = f"{size} scalar slots" if size is not None else "unbounded (dictionary-bounded at best)"
        return f"{parts} | sample summary: {self.sample_summary_size} slots | {bound}"


@dataclass
class StructuralResult:
    """Output of pass 1."""

    ok: bool
    raw_param: str = ""
    sam_param: str = ""
    arity: int = 1
    calls: List[CallInfo] = field(default_factory=list)
    sufficient_stats: Optional[SufficientStatistics] = None


def structural_pass(stmt: ast.CreateAggregate, emit: Emit) -> StructuralResult:
    """Validate structure, classify every aggregate, infer the statistic."""
    name = stmt.name
    if len(stmt.params) != 2:
        emit(_diag(
            "TAB107",
            f"loss {name!r}: expected two parameters (Raw, Sam), got {stmt.params!r}",
            _params_span(stmt),
        ))
        return StructuralResult(ok=False)
    raw_param, sam_param = stmt.params
    result = StructuralResult(ok=True, raw_param=raw_param, sam_param=sam_param)

    calls = agg_calls_in_order(stmt.body)
    if not calls:
        emit(_diag(
            "TAB106",
            f"loss {name!r}: body references no aggregate",
            stmt.body.span or stmt.span,
        ))
        result.ok = False
        return result

    known_params = {raw_param, sam_param}
    for call in calls:
        ok = True
        for position, arg in enumerate(call.args):
            if arg not in known_params:
                emit(_diag(
                    "TAB103",
                    f"loss {name!r}: {call.func} references unknown dataset {arg!r}",
                    _arg_span(call, position),
                    hint=f"declared datasets are {raw_param!r} and {sam_param!r}",
                ))
                ok = False
        if not ok:
            result.ok = False
            continue
        info_or_none = _classify_call(name, call, raw_param, sam_param, emit)
        if info_or_none is None:
            result.ok = False
            continue
        result.calls.append(info_or_none)
        if call.func in SPECIAL_AGGS:
            result.arity = max(result.arity, 2)

    for node in walk_expr(stmt.body):
        if isinstance(node, ast.FuncCall):
            expected = SCALAR_FUNC_ARITY.get(node.func)
            if expected is None:
                emit(_diag(
                    "TAB108",
                    f"loss {name!r}: unknown scalar function {node.func!r}",
                    node.span,
                ))
                result.ok = False
            elif len(node.args) != expected:
                emit(_diag(
                    "TAB109",
                    f"loss {name!r}: {node.func} takes {expected} argument(s), "
                    f"got {len(node.args)}",
                    node.span,
                ))
                result.ok = False

    if result.ok:
        result.sufficient_stats = _infer_sufficient_stats(result.calls)
    return result


def _classify_call(
    loss_name: str,
    call: ast.AggCall,
    raw_param: str,
    sam_param: str,
    emit: Emit,
) -> Optional[CallInfo]:
    """Classify one well-referenced aggregate call; ``None`` on error."""
    if call.func in CROSS_AGGS:
        if set(call.args) != {raw_param, sam_param} or len(call.args) != 2:
            emit(_diag(
                "TAB104",
                f"loss {loss_name!r}: {call.func} must be called as "
                f"{call.func}({raw_param}, {sam_param})",
                call.span,
            ))
            return None
        return CallInfo(call, "cross", "algebraic", CROSS_STATE_FIELDS, True)
    if len(call.args) != 1:
        emit(_diag(
            "TAB105",
            f"loss {loss_name!r}: {call.func} takes exactly one dataset argument",
            call.span,
        ))
        return None
    side = "raw" if call.args[0] == raw_param else "sam"
    if call.func in SPECIAL_AGGS:  # ANGLE
        return CallInfo(call, side, "algebraic", ANGLE_STATE_FIELDS, True)
    try:
        engine_agg = agg.resolve(call.func)
    except LossFunctionError:
        emit(_diag(
            "TAB102",
            f"loss {loss_name!r}: unknown aggregate function {call.func!r}",
            call.span,
        ))
        return None
    if not engine_agg.is_algebraic_or_better:
        emit(_diag(
            "TAB101",
            f"loss {loss_name!r}: aggregate {call.func} is holistic; Tabula "
            "requires the accuracy loss function to be algebraic (Section II)",
            call.span,
        ))
        return None
    return CallInfo(
        call,
        side,
        engine_agg.classification.value,
        engine_agg.state_fields,
        engine_agg.bounded_state,
    )


def _infer_sufficient_stats(calls: List[CallInfo]) -> SufficientStatistics:
    """Dedup calls and lay out the per-cell state tuple."""
    seen: Dict[ast.AggCall, CallInfo] = {}
    for call_info in calls:
        seen.setdefault(call_info.call, call_info)
    components: List[StatComponent] = [StatComponent("n_raw", ("count",))]
    for call_info in seen.values():
        if call_info.side == "raw" or call_info.side == "cross":
            components.append(StatComponent(
                _print_call(call_info.call),
                call_info.state_fields,
                call_info.bounded,
            ))
    sample_calls = sum(1 for c in seen.values() if c.side == "sam")
    return SufficientStatistics(tuple(components), 1 + sample_calls)


# ---------------------------------------------------------------------------
# Pass 2 — domain hazards via interval range analysis
# ---------------------------------------------------------------------------
#: Value range of each aggregate over arbitrary (finite) data.
_AGG_RANGES: Dict[str, Interval] = {
    "COUNT": intervals.NON_NEGATIVE,
    "STDDEV": intervals.NON_NEGATIVE,
    "STD_DEV": intervals.NON_NEGATIVE,
    "DISTINCT": intervals.NON_NEGATIVE,
    "ANGLE": Interval(-90.0, 90.0),
}


def hazard_pass(stmt: ast.CreateAggregate, emit: Emit) -> Optional[Interval]:
    """Range-analyze the body; returns its inferred interval."""
    from repro.engine.sql.printer import print_scalar

    def expr_range(node: ast.ScalarExpr) -> Interval:
        if isinstance(node, ast.NumberLit):
            return intervals.point(node.value)
        if isinstance(node, ast.AggCall):
            if node.func in CROSS_AGGS:
                return intervals.NON_NEGATIVE
            return _AGG_RANGES.get(node.func, intervals.TOP)
        if isinstance(node, ast.UnaryOp):
            return -expr_range(node.operand)
        if isinstance(node, ast.BinOp):
            left = expr_range(node.left)
            right = expr_range(node.right)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            if right.contains_zero:
                emit(_diag(
                    "TAB201",
                    f"denominator {print_scalar(node.right)} may be zero; "
                    "the dialect evaluates x/0 to inf (conservative)",
                    node.right.span or node.span,
                ))
            return left.divide(right)
        if isinstance(node, ast.FuncCall):
            arg_ranges = [expr_range(a) for a in node.args]
            if node.func == "ABS" and arg_ranges:
                return intervals.abs_(arg_ranges[0])
            if node.func == "SQRT" and arg_ranges:
                if arg_ranges[0].lo < 0.0:
                    emit(_diag(
                        "TAB202",
                        f"SQRT argument {print_scalar(node.args[0])} may be "
                        "negative; evaluates to inf at runtime",
                        node.args[0].span or node.span,
                    ))
                return intervals.sqrt_(arg_ranges[0])
            if node.func == "LOG" and arg_ranges:
                if arg_ranges[0].lo <= 0.0:
                    emit(_diag(
                        "TAB203",
                        f"LOG argument {print_scalar(node.args[0])} may be "
                        "zero or negative; evaluates to inf at runtime",
                        node.args[0].span or node.span,
                    ))
                return intervals.log_(arg_ranges[0])
            if node.func == "EXP" and arg_ranges:
                return intervals.exp_(arg_ranges[0])
            if node.func == "POW" and len(arg_ranges) == 2:
                return intervals.pow_(arg_ranges[0], arg_ranges[1])
            return intervals.TOP
        return intervals.TOP

    body_range = expr_range(stmt.body)
    if body_range.lo < 0.0:
        emit(_diag(
            "TAB204",
            f"loss {stmt.name!r}: cannot prove the body is non-negative "
            f"(inferred range {body_range}); the guarantee "
            "loss(raw, sample) <= θ is meaningless for negative losses",
            stmt.body.span or stmt.span,
        ))
    return body_range


# ---------------------------------------------------------------------------
# Pass 3 — parameter usage
# ---------------------------------------------------------------------------
def usage_pass(stmt: ast.CreateAggregate, structural: StructuralResult, emit: Emit) -> None:
    """Flag bodies that ignore the sample (error) or the raw data (warning)."""
    referenced = set()
    for call_info in structural.calls:
        if call_info.side == "cross":
            referenced.update({structural.raw_param, structural.sam_param})
        else:
            referenced.update(call_info.call.args)
    if structural.sam_param not in referenced:
        emit(_diag(
            "TAB301",
            f"loss {stmt.name!r} never references its sample parameter "
            f"{structural.sam_param!r}; the loss is constant w.r.t. the "
            "sample and greedy sampling can never reduce it",
            _param_span(stmt, 1) or stmt.body.span,
        ))
    if structural.raw_param not in referenced:
        emit(_diag(
            "TAB302",
            f"loss {stmt.name!r} never references its raw parameter "
            f"{structural.raw_param!r}; the loss cannot converge toward "
            "the raw data",
            _param_span(stmt, 0) or stmt.body.span,
        ))


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def _diag(
    code: str,
    message: str,
    span: Optional[Span],
    *,
    hint: Optional[str] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a diagnostic with catalog defaults for severity and hint."""
    catalog = info(code)
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else catalog.severity,
        message=message,
        span=span,
        hint=hint if hint is not None else catalog.hint,
    )


def _arg_span(call: ast.AggCall, position: int) -> Optional[Span]:
    if call.arg_spans is not None and position < len(call.arg_spans):
        return call.arg_spans[position]
    return call.span


def _param_span(stmt: ast.CreateAggregate, position: int) -> Optional[Span]:
    if stmt.param_spans is not None and position < len(stmt.param_spans):
        return stmt.param_spans[position]
    return None


def _params_span(stmt: ast.CreateAggregate) -> Optional[Span]:
    if stmt.param_spans:
        covering = stmt.param_spans[0]
        for span in stmt.param_spans[1:]:
            covering = covering.merge(span)
        return covering
    return stmt.name_span or stmt.span
