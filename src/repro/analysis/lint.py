"""``repro lint`` — run the static analyzer over files or inline SQL.

Understands three file kinds:

- ``*.sql`` — the whole file is a script of ``;``-separated statements;
- ``*.md`` — every ```` ```sql ```` fenced block is a script (blocks
  containing ``<placeholder>`` template syntax are skipped);
- ``*.py`` — every string literal that looks like loss-DSL SQL
  (mentions ``CREATE AGGREGATE`` or ``GROUPBY CUBE``) is a script.

Embedded chunks are newline-padded to their position in the host file,
so every diagnostic renders with file-accurate line numbers.

Statements are analyzed in order with an accumulating loss registry:
a ``CREATE AGGREGATE`` earlier in a script satisfies the TAB405 check
of a later initialization query, exactly as it would on a live session.
No table catalog exists offline, so catalog-dependent DDL checks
(TAB401–TAB403) are session-only.
"""

from __future__ import annotations

import ast as py_ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, NoReturn, Optional, Tuple

from repro.analysis.analyzer import analyze_loss
from repro.analysis.ddl import analyze_cube
from repro.core.loss.registry import LossRegistry, LossSpec
from repro.diagnostics import Diagnostic, Severity, Span
from repro.engine.sql import ast as sql_ast
from repro.engine.sql.parser import parse_script
from repro.errors import SQLSyntaxError


@dataclass
class LintResult:
    """All findings of one lint invocation."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files: int = 0
    chunks: int = 0

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity >= Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == Severity.WARNING)

    @property
    def note_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == Severity.NOTE)

    def extend(self, other: "LintResult") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.files += other.files
        self.chunks += other.chunks

    def summary(self) -> str:
        return (
            f"{self.files} file(s), {self.chunks} SQL chunk(s): "
            f"{self.error_count} error(s), {self.warning_count} warning(s), "
            f"{self.note_count} note(s)"
        )


class _LintedSpec(LossSpec):
    """Placeholder spec so later statements in a script see earlier ones."""

    def __init__(self, name: str, arity: int, uses_angle: bool):
        self.name = name
        self.arity = arity
        self.uses_angle = uses_angle
        self.exact_arity = False

    def bind(self, target_attrs: Tuple[str, ...]) -> NoReturn:
        raise NotImplementedError("lint-only spec; not bindable")


def lint_text(
    text: str,
    filename: str = "<sql>",
    registry: Optional[LossRegistry] = None,
) -> LintResult:
    """Analyze one SQL script; ``registry`` accumulates declared losses."""
    result = LintResult(chunks=1)
    if registry is None:
        registry = LossRegistry()
    try:
        statements = parse_script(text)
    except SQLSyntaxError as exc:
        span = exc.span if exc.span is not None else Span.point(0)
        result.diagnostics.append(Diagnostic(
            code="TAB001",
            severity=Severity.ERROR,
            message=str(exc),
            span=span,
            source=text,
            filename=filename,
        ))
        return result
    for stmt in statements:
        if isinstance(stmt, sql_ast.CreateAggregate):
            analysis = analyze_loss(stmt, source=text, filename=filename)
            result.diagnostics.extend(analysis.diagnostics)
            if not analysis.has_errors:
                registry.register(
                    _LintedSpec(stmt.name, analysis.arity, analysis.uses_angle),
                    replace=True,
                )
        elif isinstance(stmt, sql_ast.CreateSamplingCube):
            result.diagnostics.extend(analyze_cube(
                stmt,
                catalog=None,  # no tables offline; TAB401-403 are session-only
                registry=registry,
                source=text,
                filename=filename,
            ))
    return result


def lint_inline(expr: str) -> LintResult:
    """Lint a bare loss-body expression or a full statement string.

    Text that does not start with a statement keyword is wrapped in a
    scaffold declaration, so ``repro lint 'MEDIAN(Sam)'`` works.
    """
    stripped = expr.strip()
    head = stripped.split(None, 1)[0].upper() if stripped else ""
    if head in {"CREATE", "SELECT"}:
        return lint_text(stripped, filename="<inline>")
    wrapped = (
        "CREATE AGGREGATE inline_loss(Raw, Sam) RETURN decimal_value AS\n"
        f"BEGIN\n{stripped}\nEND"
    )
    return lint_text(wrapped, filename="<inline>")


def lint_path(path: Path) -> LintResult:
    """Lint one file, extracting SQL according to its suffix."""
    text = path.read_text()
    filename = str(path)
    result = LintResult(files=1)
    registry = LossRegistry()
    suffix = path.suffix.lower()
    if suffix == ".sql":
        chunks: List[Tuple[int, str]] = [(1, text)]
    elif suffix in {".md", ".markdown"}:
        chunks = _markdown_sql_blocks(text)
    elif suffix == ".py":
        chunks = _python_sql_literals(text, filename)
    else:
        chunks = [(1, text)]  # treat unknown suffixes as plain SQL
    for start_line, chunk in chunks:
        padded = "\n" * (start_line - 1) + chunk
        result.extend(lint_text(padded, filename=filename, registry=registry))
    return result


_FENCE_OPEN = re.compile(r"^\s*```\s*sql\s*$", re.IGNORECASE)
_FENCE_CLOSE = re.compile(r"^\s*```\s*$")


def _markdown_sql_blocks(text: str) -> List[Tuple[int, str]]:
    """``(start_line, sql)`` for each concrete ```sql fenced block."""
    blocks: List[Tuple[int, str]] = []
    lines = text.split("\n")
    in_block = False
    start = 0
    buf: List[str] = []
    for line_no, line in enumerate(lines, start=1):
        if not in_block and _FENCE_OPEN.match(line):
            in_block = True
            start = line_no + 1
            buf = []
        elif in_block and _FENCE_CLOSE.match(line):
            in_block = False
            body = "\n".join(buf)
            if "<" not in body:  # skip templated blocks with <placeholders>
                blocks.append((start, body))
        elif in_block:
            buf.append(line)
    return blocks


def _python_sql_literals(text: str, filename: str) -> List[Tuple[int, str]]:
    """``(start_line, sql)`` for each loss-DSL string literal."""
    try:
        tree = py_ast.parse(text, filename=filename)
    except SyntaxError:
        return []
    chunks: List[Tuple[int, str]] = []
    for node in py_ast.walk(tree):
        if isinstance(node, py_ast.Constant) and isinstance(node.value, str):
            upper = node.value.upper()
            # Must both mention the DSL and *be* a statement — prose
            # docstrings that merely talk about CREATE AGGREGATE don't
            # start with a statement keyword.
            if ("CREATE AGGREGATE" in upper or "GROUPBY CUBE" in upper) and (
                upper.lstrip().startswith(("CREATE ", "SELECT "))
            ):
                chunks.append((node.lineno, node.value))
    return chunks
