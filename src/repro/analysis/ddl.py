"""Pass 4 — catalog-aware checking of the initialization DDL.

``CREATE TABLE ... AS SELECT ..., SAMPLING(*, θ) AS sample FROM src
GROUPBY CUBE(...) HAVING loss(...) > θ`` is validated against the
session's table catalog and loss registry *before* the (expensive) cube
build starts: the FROM table must exist, every cubed attribute must be a
column of it, loss target attributes must be numeric columns, θ must be
positive (and is expected in ``(0, 1)`` for the paper's relative
losses), and the loss must be registered with a matching arity.

This module deliberately does not import the loss compiler: it inspects
registered :class:`~repro.core.loss.registry.LossSpec` objects through
two optional attributes (``exact_arity``, ``uses_angle``) that compiled
specs carry, keeping the dependency edge compiler → analysis one-way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.analysis.codes import info
from repro.diagnostics import Diagnostic, Severity, Span, sort_diagnostics
from repro.engine.sql import ast
from repro.errors import (
    InvalidQueryError,
    LossFunctionError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)

if TYPE_CHECKING:  # typing only — keeps the runtime import graph one-way
    from repro.core.loss.registry import LossRegistry
    from repro.engine.catalog import Catalog

#: Column types a loss function can aggregate.
_NUMERIC = frozenset({"INT64", "FLOAT64"})


def analyze_cube(
    stmt: ast.CreateSamplingCube,
    *,
    catalog: Optional["Catalog"] = None,
    registry: Optional["LossRegistry"] = None,
    source: Optional[str] = None,
    filename: str = "<sql>",
) -> List[Diagnostic]:
    """Check one initialization statement against catalog and registry.

    ``catalog`` / ``registry`` may be ``None``, in which case the checks
    needing them are skipped (useful when linting files offline, where
    no session exists).
    """
    diagnostics: List[Diagnostic] = []
    spans = stmt.spans or ast.DdlSpans()

    def emit(code: str, message: str, span: Optional[Span], *, severity: Optional[Severity] = None) -> None:
        catalog_entry = info(code)
        diagnostics.append(Diagnostic(
            code=code,
            severity=severity if severity is not None else catalog_entry.severity,
            message=message,
            span=span if span is not None else stmt.span,
            hint=catalog_entry.hint,
            source=source,
            filename=filename,
        ))

    # -- θ range (needs nothing external) -------------------------------
    if stmt.threshold <= 0.0:
        emit(
            "TAB404",
            f"loss threshold must be positive, got {stmt.threshold}",
            spans.having_threshold or spans.sampling_threshold,
        )
    elif stmt.threshold >= 1.0:
        emit(
            "TAB404",
            f"loss threshold {stmt.threshold} is outside (0, 1); the paper's "
            "relative losses never exceed 1, so the cube would keep no "
            "samples beyond the global one",
            spans.having_threshold or spans.sampling_threshold,
            severity=Severity.WARNING,
        )

    # -- target-vs-cube overlap (needs nothing external) -----------------
    cubed = set(stmt.cubed_attrs)
    for position, attr in enumerate(stmt.target_attrs):
        if attr in cubed:
            emit(
                "TAB407",
                f"target attribute {attr!r} is also a cubed attribute; "
                "grouping by the measure being approximated is usually a "
                "mistake",
                _at(spans.loss_args, position) or spans.loss_name,
            )

    # -- catalog checks ---------------------------------------------------
    table = None
    if catalog is not None:
        if stmt.source in catalog:
            table = catalog.get(stmt.source)
        else:
            emit(
                "TAB401",
                f"unknown table: {stmt.source!r}",
                spans.source,
            )
    if table is not None:
        schema = table.schema
        for position, attr in enumerate(stmt.cubed_attrs):
            if attr not in schema:
                emit(
                    "TAB402",
                    f"cubed attribute {attr!r} is not a column of "
                    f"{stmt.source!r} (columns: {', '.join(schema.names)})",
                    _at(spans.cube_attrs, position) or spans.source,
                )
        for position, attr in enumerate(stmt.target_attrs):
            span = _at(spans.loss_args, position) or spans.loss_name
            if attr not in schema:
                emit(
                    "TAB403",
                    f"unknown column: {attr!r} in table {stmt.source!r}",
                    span,
                )
            elif schema.type_of(attr).name not in _NUMERIC:
                emit(
                    "TAB403",
                    f"target attribute {attr!r} has type "
                    f"{schema.type_of(attr).name}; loss functions aggregate "
                    "numeric columns",
                    span,
                )

    # -- registry checks --------------------------------------------------
    if registry is not None:
        if stmt.loss_name not in registry:
            emit(
                "TAB405",
                f"unknown loss function: {stmt.loss_name!r}",
                spans.loss_name,
            )
        else:
            spec = registry.get(stmt.loss_name)
            n_targets = len(stmt.target_attrs)
            exact = getattr(spec, "exact_arity", True)
            if (exact and n_targets != spec.arity) or (not exact and n_targets < spec.arity):
                relation = "exactly" if exact else "at least"
                emit(
                    "TAB406",
                    f"loss {spec.name!r} expects {relation} {spec.arity} "
                    f"target attribute(s), got {n_targets}: "
                    f"{stmt.target_attrs!r}",
                    spans.loss_name,
                )
            elif getattr(spec, "uses_angle", False) and n_targets != 2:
                emit(
                    "TAB303",
                    f"loss {spec.name!r} uses ANGLE (regression-line angle) "
                    f"and needs exactly two target attributes (x, y), got "
                    f"{n_targets}",
                    spans.loss_name,
                )

    return sort_diagnostics(diagnostics)


def raise_for_ddl_errors(diagnostics: Iterable[Diagnostic], stmt: ast.CreateSamplingCube) -> None:
    """Raise the legacy exception for the first DDL error, if any.

    Callers that predate the analyzer caught specific exception types
    (``UnknownTableError`` for a bad FROM table, ``UnknownColumnError``
    for missing attributes, ...); this keeps those contracts while the
    exception message now comes from the richer diagnostic. All the
    findings ride along on the exception's ``diagnostics`` attribute
    when it supports one.
    """
    errors = [d for d in diagnostics if d.is_error]
    if not errors:
        return
    first = errors[0]
    message = first.message
    if first.code == "TAB401":
        raise UnknownTableError(stmt.source)
    if first.code == "TAB402":
        exc = UnknownColumnError(_quoted_name(message), stmt.source)
        exc.diagnostics = tuple(errors)
        raise exc
    if first.code == "TAB403":
        if "unknown column" in message:
            exc = UnknownColumnError(_quoted_name(message), stmt.source)
            exc.diagnostics = tuple(errors)
            raise exc
        raise TypeMismatchError(message)
    if first.code == "TAB404":
        raise InvalidQueryError(message, diagnostics=tuple(errors))
    # TAB405 / TAB406 / TAB303 — loss-function problems.
    raise LossFunctionError(message, loss_name=stmt.loss_name, diagnostics=tuple(errors))


def _at(spans: Optional[Sequence[Span]], position: int) -> Optional[Span]:
    if spans and position < len(spans):
        return spans[position]
    return None


def _quoted_name(message: str) -> str:
    """Extract the first 'single-quoted' name from a diagnostic message."""
    parts = message.split("'")
    return parts[1] if len(parts) >= 3 else message
