"""Concurrency & resource-lifecycle static analysis (``repro check``).

The TAB600-range sibling of the SQL analyzer: instead of loss bodies,
it walks the *Python source of this repository* and enforces the
conventions the runtime depends on — lock discipline around annotated
shared state, shared-memory and file lifecycles, deadline propagation,
and fork safety. :mod:`repro.sanitizer` is the dynamic counterpart;
``docs/static_analysis.md`` documents both.
"""

from repro.analysis.concurrency.checker import (
    CheckResult,
    check_paths,
    check_source,
)
from repro.analysis.concurrency.codes import CODES, all_codes, info

__all__ = [
    "CODES",
    "CheckResult",
    "all_codes",
    "check_paths",
    "check_source",
    "info",
]
