"""Resource-lifecycle checks: TAB604, TAB605, TAB606.

All three are per-function escape analyses: a resource-creating call is
fine if the resource provably reaches a cleanup path — entered as a
context manager, returned to the caller (ownership transfers), stored
on ``self`` (a lifecycle method owns it), or explicitly
closed/unlinked later in the same function. Anything else leaks.

The checks are deliberately *syntactic*: they prove the easy 95% and
leave the genuinely dynamic cases to the runtime sanitizer's shm/fd
accounting. A false positive is silenced with ``# noqa: TAB60x`` plus
a comment saying who owns the cleanup.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.concurrency import codes
from repro.analysis.concurrency.model import ModuleModel, dotted_name
from repro.diagnostics import Diagnostic

#: Callees that create a shared-memory segment this process must unlink.
_SHM_FACTORIES = {"share_arrays", "share_table"}
#: Methods that release/transfer a segment or handle.
_SHM_CLEANUP = {"unlink", "close"}
_FILE_CLEANUP = {"close"}


def _diag(
    model: ModuleModel, code: str, node: ast.AST, message: str
) -> Optional[Diagnostic]:
    if model.suppressed(code, node.lineno):
        return None
    entry = codes.info(code)
    return Diagnostic(
        code=code,
        severity=entry.severity,
        message=message,
        span=model.span(node),
        hint=entry.hint,
        source=model.text,
        filename=model.filename,
    )


def _functions(model: ModuleModel) -> Iterable[ast.AST]:
    for node in ast.walk(model.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_shm_create(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None:
        return False
    last = name.split(".")[-1]
    if last in _SHM_FACTORIES:
        return True
    if last == "SharedMemory":
        for kw in call.keywords:
            if kw.arg == "create" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
    return False


def _is_open_call(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Name) and call.func.id == "open"


def _inside(model: ModuleModel, node: ast.AST, kinds: tuple) -> Optional[ast.AST]:
    for ancestor in model.ancestors(node):
        if isinstance(ancestor, kinds):
            return ancestor
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
    return None


def _in_with_item(model: ModuleModel, call: ast.Call) -> bool:
    """Whether the call is (part of) a ``with`` statement's item expr."""
    previous: ast.AST = call
    for ancestor in model.ancestors(call):
        if isinstance(ancestor, ast.With):
            # parents chain goes Call -> withitem -> With, so the item
            # itself is what we see as `previous` here.
            if any(
                item is previous or item.context_expr is previous
                for item in ancestor.items
            ):
                return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        previous = ancestor
    return False


def _in_return(model: ModuleModel, call: ast.Call) -> bool:
    for ancestor in model.ancestors(call):
        if isinstance(ancestor, ast.Return):
            return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


def _bound_name(model: ModuleModel, call: ast.Call) -> Optional[str]:
    """The local name the call result is assigned to, if any.

    Handles ``x = create(...)`` and tuple unpacking is out of scope —
    a tuple element is treated as escaped (no finding).
    """
    parent = model.parents.get(call)
    if isinstance(parent, ast.Assign) and parent.value is call:
        if len(parent.targets) == 1 and isinstance(parent.targets[0], ast.Name):
            return parent.targets[0].id
        return None
    if isinstance(parent, ast.AnnAssign) and parent.value is call:
        if isinstance(parent.target, ast.Name):
            return parent.target.id
    return None


def _escapes_locally(model: ModuleModel, call: ast.Call) -> bool:
    """Result stored on self, passed to a constructor, or unpacked."""
    parent = model.parents.get(call)
    if isinstance(parent, ast.Assign) and parent.value is call:
        return not (
            len(parent.targets) == 1 and isinstance(parent.targets[0], ast.Name)
        )
    if isinstance(parent, ast.Call):
        return True  # wrapped: SharedBundle(shm, ...) — wrapper owns it
    return False


def _name_cleaned_up(
    function: ast.AST, name: str, cleanup_methods: set, model: ModuleModel
) -> bool:
    """``name.<cleanup>()`` appears anywhere later in the function, or
    ``name`` is used as a ``with`` item / returned / re-exported."""
    for node in ast.walk(function):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            value = node.func.value
            if (
                isinstance(value, ast.Name)
                and value.id == name
                and node.func.attr in cleanup_methods
            ):
                return True
        if isinstance(node, ast.With):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
        # self.x = name / other.x = name: ownership moves to the object
        if isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Name) and node.value.id == name:
                return True
        # passed onward to a callee that takes ownership
        if isinstance(node, ast.Call):
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
            for kw in node.keywords:
                if isinstance(kw.value, ast.Name) and kw.value.id == name:
                    return True
    return False


def _check_lifecycle(
    model: ModuleModel,
    code: str,
    is_create,
    cleanup_methods: set,
    what: str,
) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for function in _functions(model):
        for node in ast.walk(function):
            if not (isinstance(node, ast.Call) and is_create(node)):
                continue
            # Nested functions are visited via their own _functions pass.
            inner = None
            for ancestor in model.ancestors(node):
                if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    inner = ancestor
                    break
            if inner is not function:
                continue
            if _in_with_item(model, node):
                continue
            parent = model.parents.get(node)
            if isinstance(parent, ast.Attribute):
                # open(p).read(): the temporary is consumed by a method
                # call and then dropped — nobody can ever close it, no
                # matter what surrounds the expression.
                diag = _diag(
                    model, code, node,
                    f"{what} created here is consumed as a temporary "
                    "and never released — no name holds it, so nothing "
                    "can close it",
                )
                if diag is not None:
                    findings.append(diag)
                continue
            if _in_return(model, node):
                continue
            if _escapes_locally(model, node):
                continue
            name = _bound_name(model, node)
            if name is not None and _name_cleaned_up(
                function, name, cleanup_methods, model
            ):
                continue
            if name is None:
                # Bare expression statement or attribute chain like
                # open(p).read(): nothing ever holds the resource.
                diag = _diag(
                    model, code, node,
                    f"{what} created here is never released — no name "
                    "holds it, so nothing can close it",
                )
            else:
                diag = _diag(
                    model, code, node,
                    f"{what} bound to `{name}` is never released in "
                    f"`{getattr(function, 'name', '<fn>')}` "
                    f"(no {'/'.join(sorted(cleanup_methods))}, with, "
                    "return, or ownership transfer)",
                )
            if diag is not None:
                findings.append(diag)
    return findings


def check_shm_lifecycle(model: ModuleModel) -> List[Diagnostic]:
    return _check_lifecycle(
        model, "TAB604", _is_shm_create, _SHM_CLEANUP, "shared-memory segment"
    )


def check_file_handles(model: ModuleModel) -> List[Diagnostic]:
    return _check_lifecycle(
        model, "TAB605", _is_open_call, _FILE_CLEANUP, "file handle"
    )


def check_replace_without_fsync(model: ModuleModel) -> List[Diagnostic]:
    """TAB606: ``os.replace`` in a function with no preceding fsync."""
    findings: List[Diagnostic] = []
    for function in _functions(model):
        fsync_lines: List[int] = []
        replaces: List[ast.Call] = []
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func) or ""
            last = name.split(".")[-1]
            if last == "fsync" or last == "fsync_directory":
                fsync_lines.append(node.lineno)
            elif name in {"os.replace", "os.rename"}:
                replaces.append(node)
        for call in replaces:
            if any(line < call.lineno for line in fsync_lines):
                continue
            diag = _diag(
                model, "TAB606", call,
                "os.replace publishes a file with no fsync anywhere "
                f"before it in `{getattr(function, 'name', '<fn>')}` — "
                "a crash can keep the rename and lose the bytes",
            )
            if diag is not None:
                findings.append(diag)
    return findings
