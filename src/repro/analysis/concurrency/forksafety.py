"""Fork-safety check: TAB608.

A closure handed to a *process* pool is pickled (spawn) or copied
(fork); either way, a captured lock, file handle or shared-memory view
in the child is a different object from the parent's. A lock that
"synchronizes" across the boundary synchronizes nothing; a captured
handle is a dead or aliased descriptor.

Detection is deliberately conservative to stay quiet on thread pools
(where capturing locks is exactly right): the check only fires when it
can see a *process* pool constructed in the same function
(``ProcessPoolExecutor(...)``, ``multiprocessing.Pool(...)``,
``ctx.Pool(...)``) and a lambda/nested function with suspicious free
variables passed to that pool's ``submit``/``map``/``apply_async``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.concurrency import codes
from repro.analysis.concurrency.model import ModuleModel, dotted_name
from repro.diagnostics import Diagnostic

_POOL_CONSTRUCTORS = {"ProcessPoolExecutor", "Pool"}
_SUBMIT_METHODS = {"submit", "map", "apply", "apply_async", "starmap", "imap"}
#: Free-variable name fragments that indicate an unpicklable/unsharable
#: resource: locks, handles, shm views, sockets.
_SUSPECT_FRAGMENTS = ("lock", "shm", "segment", "bundle", "file", "handle",
                      "sock", "conn", "_fh", "fd")


def _diag(
    model: ModuleModel, node: ast.AST, message: str
) -> Optional[Diagnostic]:
    if model.suppressed("TAB608", node.lineno):
        return None
    entry = codes.info("TAB608")
    return Diagnostic(
        code="TAB608",
        severity=entry.severity,
        message=message,
        span=model.span(node),
        hint=entry.hint,
        source=model.text,
        filename=model.filename,
    )


def _pool_names(function: ast.AST) -> Set[str]:
    """Local names bound to a process-pool in ``function``."""
    pools: Set[str] = set()
    for node in ast.walk(function):
        value = None
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            value, target = node.value, node.targets[0]
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            value, target = node.context_expr, node.optional_vars
        if value is None or not isinstance(target, ast.Name):
            continue
        if isinstance(value, ast.Call):
            name = dotted_name(value.func) or ""
            if name.split(".")[-1] in _POOL_CONSTRUCTORS:
                pools.add(target.id)
    return pools


def _free_variables(closure: ast.AST) -> Set[str]:
    """Names loaded in ``closure`` that it does not bind itself."""
    bound: Set[str] = set()
    args = getattr(closure, "args", None)
    if args is not None:
        for a in args.args + args.kwonlyargs + args.posonlyargs:
            bound.add(a.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    loaded: Set[str] = set()
    body = closure.body if isinstance(closure.body, list) else [closure.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    bound.add(node.id)
                else:
                    loaded.add(node.id)
    return loaded - bound


def _suspects(names: Set[str]) -> List[str]:
    return sorted(
        name for name in names
        if any(frag in name.lower() for frag in _SUSPECT_FRAGMENTS)
    )


def check_fork_safety(model: ModuleModel) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for function in ast.walk(model.tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        pools = _pool_names(function)
        if not pools:
            continue
        local_defs: Dict[str, ast.AST] = {
            node.name: node
            for node in ast.walk(function)
            if isinstance(node, ast.FunctionDef) and node is not function
        }
        for node in ast.walk(function):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in _SUBMIT_METHODS:
                continue
            receiver = node.func.value
            if not (isinstance(receiver, ast.Name) and receiver.id in pools):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                closure: Optional[ast.AST] = None
                label = "<lambda>"
                if isinstance(arg, ast.Lambda):
                    closure = arg
                elif isinstance(arg, ast.Name) and arg.id in local_defs:
                    closure = local_defs[arg.id]
                    label = arg.id
                if closure is None:
                    continue
                suspects = _suspects(_free_variables(closure))
                if not suspects:
                    continue
                diag = _diag(
                    model, arg,
                    f"`{label}` shipped to process pool "
                    f"`{receiver.id}.{node.func.attr}` captures "
                    f"{', '.join(f'`{s}`' for s in suspects)} from the "
                    "parent process — the child's copy is a different "
                    "object, so the resource does not actually cross",
                )
                if diag is not None:
                    findings.append(diag)
    return findings
