"""The TAB600-range catalog: concurrency & resource-lifecycle codes.

This is a *separate* catalog from :mod:`repro.analysis.codes` on
purpose: the TAB0–4xx codes diagnose the SQL dialect and are rendered
into ``docs/sql_dialect.md``; the TAB6xx codes diagnose the *Python
source of this repository itself* and are rendered into
``docs/static_analysis.md``. Each catalog has its own completeness
guard in the test suite (every code must have a golden test and a doc
entry), and merging them would force SQL golden tests for Python-level
codes and vice versa.

Severity philosophy: a code is an ``ERROR`` only when the flagged
pattern is wrong under every convention this repo uses (an unguarded
write to ``# guard:`` state, a lock-order cycle, a lock shipped to a
process pool). Lifecycle codes are ``WARNING``\\ s — the analyzer can
miss an exotic cleanup path, and ``--strict`` already promotes
warnings to failures. The heuristic I/O-name rule of TAB603 emits a
``NOTE`` so that a deliberate, commented call under a lock (e.g. cube
verification under the reload lock, which is *why* reloads don't race)
doesn't fail CI.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.codes import CodeInfo, _info
from repro.diagnostics import Severity

CODES: Dict[str, CodeInfo] = dict(
    (
        _info(
            "TAB600", Severity.ERROR, "unparseable-source",
            "The Python file could not be parsed, so none of the "
            "concurrency checks ran over it.",
            "fix the syntax error; `python -m py_compile <file>` shows it",
        ),
        # -- lock discipline ---------------------------------------------
        _info(
            "TAB601", Severity.ERROR, "guarded-access-outside-lock",
            "An attribute annotated `# guard: <lock>` is accessed (or one "
            "annotated `# guard-writes: <lock>` is mutated) outside a "
            "`with self.<lock>:` block and outside any @guarded_by method.",
            "wrap the access in `with self.<lock>:`, mark the method "
            "@guarded_by(\"<lock>\") if the caller holds it, or relax the "
            "annotation to guard-writes if lock-free reads are the protocol",
        ),
        _info(
            "TAB602", Severity.ERROR, "lock-order-cycle",
            "Two or more locks are acquired in both orders somewhere in "
            "the codebase — a latent deadlock the moment the two paths "
            "run concurrently.",
            "pick one global order for the locks in the cycle and release "
            "before re-acquiring against it",
        ),
        _info(
            "TAB603", Severity.WARNING, "blocking-call-under-lock",
            "A known-blocking call (time.sleep, os.fsync, subprocess, "
            "queue put/get, future result/join) runs while a lock is "
            "held, stalling every thread contending for that lock.",
            "move the blocking work outside the `with` block and publish "
            "its result under the lock afterwards",
        ),
        # -- resource lifecycle ------------------------------------------
        _info(
            "TAB604", Severity.WARNING, "shm-not-unlinked",
            "A shared-memory segment is created but the function neither "
            "unlinks it, returns it, stores it on self, nor enters it as "
            "a context manager — the named segment outlives the process.",
            "use `with share_...(...) as bundle:` or call "
            "bundle.close(); bundle.unlink() in a finally block",
        ),
        _info(
            "TAB605", Severity.WARNING, "unmanaged-file-handle",
            "open() is called outside a `with` statement and the handle "
            "is never closed, returned or stored — the descriptor leaks "
            "until garbage collection gets around to it.",
            "use `with open(...) as fh:` (or close() in a finally block)",
        ),
        _info(
            "TAB606", Severity.WARNING, "replace-without-fsync",
            "os.replace() publishes a file that was never fsync'd in "
            "this function — after a crash the rename can survive while "
            "the data does not, leaving a corrupt 'atomic' file.",
            "fsync the temp file (and ideally the directory) before "
            "os.replace; see repro.resilience.atomic",
        ),
        _info(
            "TAB609", Severity.WARNING, "unjoined-background-thread",
            "A thread stored on `self` is started but no method of the "
            "class ever joins it (a zero-positional-arg `.join()` call) "
            "— close/stop can return while the worker thread still "
            "mutates shared state.",
            "join the thread in the class's close/stop path "
            "(`thread.join(timeout=...)` — keyword timeout, so the call "
            "is recognizably a thread join, not str.join)",
        ),
        # -- deadline propagation ----------------------------------------
        _info(
            "TAB607", Severity.WARNING, "dropped-deadline",
            "A function that received a `deadline` parameter calls "
            "another deadline-aware function without forwarding it — "
            "everything below the call site runs unbounded.",
            "pass deadline=deadline (or a derived budget) through the call",
        ),
        # -- fork safety --------------------------------------------------
        _info(
            "TAB608", Severity.ERROR, "fork-unsafe-capture",
            "A closure shipped to a process pool captures a lock, file "
            "handle or shared-memory view from the parent — the child's "
            "copy is a different object (or a dead descriptor), so the "
            "'synchronization' silently synchronizes nothing.",
            "pass plain data (names, descriptors, indices) to the worker "
            "and re-open/attach inside it",
        ),
    )
)


def info(code: str) -> CodeInfo:
    """Catalog entry for ``code`` (raises ``KeyError`` if unknown)."""
    return CODES[code]


def all_codes() -> List[str]:
    """Every TAB6xx code, sorted."""
    return sorted(CODES)
