"""Shared source model for the concurrency checks.

One :class:`ModuleModel` per Python file: the parsed AST with parent
links, a line-offset table mapping ``(lineno, col)`` to character
offsets (so findings reuse the :class:`~repro.diagnostics.Span`
machinery and render caret snippets), the ``# guard:`` /
``# guard-writes:`` annotations harvested from comments, and the
``# noqa: TABxxx`` suppressions.

Annotation convention (documented in ``docs/static_analysis.md``):

- ``self.attr = ...  # guard: _lock`` — every access to ``self.attr``
  (read *and* write) must happen under ``with self._lock:``;
- ``self.attr = ...  # guard-writes: _lock`` — only mutations need the
  lock; reads are deliberately lock-free (e.g. the cube store's
  stale-pointer retry protocol);
- ``@guarded_by("_lock")`` on a method — the body runs with the lock
  held by the caller; the analyzer treats the whole method as locked
  and the runtime sanitizer asserts it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.diagnostics import Span

#: ``# guard: _lock`` / ``# guard-writes: _lock`` trailing comments.
_GUARD_RE = re.compile(r"#\s*guard(-writes)?:\s*([A-Za-z_][A-Za-z0-9_]*)")
#: ``# noqa: TAB601`` / ``# noqa: TAB601, TAB603`` / bare ``# noqa``.
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*([A-Z0-9, ]+))?", re.IGNORECASE)

#: Method names that mutate their receiver — ``self.attr.append(x)``
#: is a *write* to the guarded attribute even though the attribute node
#: itself is only loaded.
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "setdefault", "update",
})

#: Methods where unguarded access is allowed: the object is not yet
#: (or no longer) shared with other threads.
CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__", "__del__"})


@dataclass(frozen=True)
class GuardAnnotation:
    """One ``# guard[-writes]:`` annotation on an attribute."""

    attr: str
    lock: str
    writes_only: bool
    lineno: int


@dataclass
class ClassModel:
    """Guard-relevant facts about one class."""

    name: str
    node: ast.ClassDef
    guards: Dict[str, GuardAnnotation] = field(default_factory=dict)
    lock_attrs: Set[str] = field(default_factory=set)


class ModuleModel:
    """Parsed file + everything the checkers need to walk it."""

    def __init__(self, text: str, filename: str):
        self.text = text
        self.filename = filename
        self.tree = ast.parse(text, filename=filename)
        self.lines = text.split("\n")
        self._line_offsets = self._build_line_offsets(text)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.noqa: Dict[int, Optional[Set[str]]] = self._collect_noqa()
        self._guard_comments = self._collect_guard_comments()
        self.classes: List[ClassModel] = [
            self._model_class(node)
            for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        ]

    # -- positions -----------------------------------------------------
    @staticmethod
    def _build_line_offsets(text: str) -> List[int]:
        offsets = [0]
        for line in text.split("\n")[:-1]:
            offsets.append(offsets[-1] + len(line) + 1)
        return offsets

    def offset(self, lineno: int, col: int) -> int:
        """Character offset of 1-based ``lineno`` / 0-based ``col``."""
        if lineno < 1:
            return 0
        index = min(lineno - 1, len(self._line_offsets) - 1)
        return self._line_offsets[index] + col

    def span(self, node: ast.AST) -> Span:
        """The node's source range as a diagnostics Span."""
        start = self.offset(node.lineno, node.col_offset)
        end_lineno = getattr(node, "end_lineno", None)
        end_col = getattr(node, "end_col_offset", None)
        if end_lineno is None or end_col is None:
            return Span.point(start)
        return Span(start, self.offset(end_lineno, end_col))

    # -- comments ------------------------------------------------------
    def _collect_noqa(self) -> Dict[int, Optional[Set[str]]]:
        noqa: Dict[int, Optional[Set[str]]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if not match:
                continue
            codes = match.group(1)
            if codes is None:
                noqa[lineno] = None  # blanket suppression
            else:
                noqa[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
        return noqa

    def suppressed(self, code: str, lineno: int) -> bool:
        """Whether ``# noqa`` on ``lineno`` silences ``code``."""
        if lineno not in self.noqa:
            return False
        codes = self.noqa[lineno]
        return codes is None or code in codes

    def _collect_guard_comments(self) -> Dict[int, Tuple[str, bool]]:
        """line -> (lock attr, writes_only) for every guard comment."""
        guards: Dict[int, Tuple[str, bool]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _GUARD_RE.search(line)
            if match:
                guards[lineno] = (match.group(2), match.group(1) is not None)
        return guards

    # -- classes -------------------------------------------------------
    def _model_class(self, node: ast.ClassDef) -> ClassModel:
        model = ClassModel(name=node.name, node=node)
        for stmt in ast.walk(node):
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if _looks_like_lock(attr, stmt):
                    model.lock_attrs.add(attr)
                annotation = self._guard_for_statement(stmt, attr)
                if annotation is not None:
                    model.guards[attr] = annotation
        return model

    def _guard_for_statement(self, stmt: ast.stmt, attr: str) -> Optional[GuardAnnotation]:
        end = getattr(stmt, "end_lineno", stmt.lineno)
        for lineno in range(stmt.lineno, end + 1):
            if lineno in self._guard_comments:
                lock, writes_only = self._guard_comments[lineno]
                return GuardAnnotation(attr, lock, writes_only, lineno)
        return None

    def class_of(self, node: ast.AST) -> Optional[ClassModel]:
        """The innermost class lexically containing ``node``."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                for model in self.classes:
                    if model.node is current:
                        return model
            current = self.parents.get(current)
        return None

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)


def _self_attr(target: ast.expr) -> Optional[str]:
    """``X`` for a ``self.X`` target, else ``None``."""
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _looks_like_lock(attr: str, stmt: ast.stmt) -> bool:
    """Whether ``self.attr = <value>`` plausibly binds a lock."""
    value = getattr(stmt, "value", None)
    if isinstance(value, ast.Call):
        callee = dotted_name(value.func)
        if callee and callee.split(".")[-1] in {"Lock", "RLock", "create_lock"}:
            return True
    return "lock" in attr.lower()


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def with_item_lock(item: ast.withitem) -> Optional[str]:
    """The lock attribute name a ``with`` item acquires, if any.

    Recognizes ``with self._lock:`` (a self attribute that is lock-ish
    by name) and module-level ``with _some_lock:``.
    """
    expr = item.context_expr
    attr = _self_attr_load(expr)
    if attr is not None and "lock" in attr.lower():
        return attr
    if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
        return expr.id
    return None


def _self_attr_load(expr: ast.expr) -> Optional[str]:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def guarded_by_decorator(node: ast.AST) -> Optional[str]:
    """The lock attr of an ``@guarded_by("...")`` decorator, if present."""
    decorators = getattr(node, "decorator_list", [])
    for decorator in decorators:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name and name.split(".")[-1] == "guarded_by" and decorator.args:
            arg = decorator.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
    return None


def held_locks_at(model: ModuleModel, node: ast.AST) -> Set[str]:
    """Lock attrs lexically held at ``node``.

    Union of every enclosing ``with self.<lock>:`` block and every
    enclosing ``@guarded_by`` function. Walks through nested function
    boundaries: a closure *defined* under a lock usually runs under it
    too, and when it does not the runtime sanitizer is the layer that
    catches the escape.
    """
    held: Set[str] = set()
    previous: ast.AST = node
    for ancestor in model.ancestors(node):
        if isinstance(ancestor, ast.With):
            # Only count the lock if we are inside the body, not inside
            # the context expression itself (``with self._lock:`` must
            # not mark the lock-attribute load as already-locked). The
            # parents chain goes node -> withitem -> With, so `previous`
            # is the withitem when we came from the item expression.
            in_items = any(
                item is previous
                or item.context_expr is previous
                or item.optional_vars is previous
                for item in ancestor.items
            )
            if not in_items:
                for item in ancestor.items:
                    lock = with_item_lock(item)
                    if lock is not None:
                        held.add(lock)
        elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lock = guarded_by_decorator(ancestor)
            if lock is not None:
                held.add(lock)
        previous = ancestor
    return held


def enclosing_function(
    model: ModuleModel, node: ast.AST
) -> Optional[ast.AST]:
    """The innermost FunctionDef/AsyncFunctionDef containing ``node``."""
    for ancestor in model.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None
