"""``repro check`` — run the concurrency checks over Python sources.

Mirrors the shape of :mod:`repro.analysis.lint` (``LintResult`` ↔
:class:`CheckResult`) so the CLI and CI treat both passes uniformly.
Two global passes ride on top of the per-file checks: the lock-order
graph (TAB602 cycles only exist *across* functions and files) and the
deadline index (a callee's signature usually lives in another module
than the call site).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple

from repro.analysis.concurrency import codes
from repro.analysis.concurrency.deadlines import check_dropped_deadlines, deadline_index
from repro.analysis.concurrency.forksafety import check_fork_safety
from repro.analysis.concurrency.locks import (
    OrderGraph,
    check_blocking_under_lock,
    check_guarded_access,
)
from repro.analysis.concurrency.model import ModuleModel
from repro.analysis.concurrency.resources import (
    check_file_handles,
    check_replace_without_fsync,
    check_shm_lifecycle,
)
from repro.analysis.concurrency.threads import check_thread_lifecycle
from repro.diagnostics import Diagnostic, Severity, Span, sort_diagnostics


@dataclass
class CheckResult:
    """All findings of one ``repro check`` invocation."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files: int = 0

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity >= Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == Severity.WARNING)

    @property
    def note_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == Severity.NOTE)

    def extend(self, other: "CheckResult") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.files += other.files

    def summary(self) -> str:
        return (
            f"{self.files} file(s): {self.error_count} error(s), "
            f"{self.warning_count} warning(s), {self.note_count} note(s)"
        )


def _parse(text: str, filename: str) -> Tuple[ModuleModel, List[Diagnostic]]:
    try:
        return ModuleModel(text, filename), []
    except SyntaxError as exc:
        entry = codes.info("TAB600")
        offset = 0
        if exc.lineno is not None:
            offset = sum(
                len(line) + 1 for line in text.split("\n")[: exc.lineno - 1]
            ) + max((exc.offset or 1) - 1, 0)
        diag = Diagnostic(
            code="TAB600",
            severity=entry.severity,
            message=f"file could not be parsed: {exc.msg}",
            span=Span.point(offset),
            hint=entry.hint,
            source=text,
            filename=filename,
        )
        return None, [diag]  # type: ignore[return-value]


def check_source(text: str, filename: str = "<python>") -> CheckResult:
    """Run every per-file check over one source string.

    The global passes (lock-order graph, deadline index) see only this
    file; use :func:`check_paths` for whole-tree analysis.
    """
    return _check_models([(text, filename)])


def check_paths(paths: Sequence[Path]) -> CheckResult:
    """Check every ``*.py`` under the given files/directories."""
    sources: List[Tuple[str, str]] = []
    for path in paths:
        if path.is_dir():
            files: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            files = [path]
        for file in files:
            sources.append((file.read_text(), str(file)))
    return _check_models(sources)


def _check_models(sources: List[Tuple[str, str]]) -> CheckResult:
    result = CheckResult(files=len(sources))
    models: List[ModuleModel] = []
    for text, filename in sources:
        model, parse_diags = _parse(text, filename)
        result.diagnostics.extend(parse_diags)
        if model is not None:
            models.append(model)

    graph = OrderGraph()
    for model in models:
        graph.collect(model)
        result.diagnostics.extend(check_guarded_access(model))
        result.diagnostics.extend(check_blocking_under_lock(model))
        result.diagnostics.extend(check_shm_lifecycle(model))
        result.diagnostics.extend(check_file_handles(model))
        result.diagnostics.extend(check_replace_without_fsync(model))
        result.diagnostics.extend(check_fork_safety(model))
        result.diagnostics.extend(check_thread_lifecycle(model))
    result.diagnostics.extend(graph.diagnostics())

    index = deadline_index(models)
    for model in models:
        result.diagnostics.extend(check_dropped_deadlines(model, index))

    result.diagnostics = _sorted_by_file(result.diagnostics)
    return result


def _sorted_by_file(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    by_file: dict = {}
    for diag in diagnostics:
        by_file.setdefault(diag.filename, []).append(diag)
    ordered: List[Diagnostic] = []
    for filename in sorted(by_file):
        ordered.extend(sort_diagnostics(by_file[filename]))
    return ordered
