"""Deadline-propagation check: TAB607.

Two-phase and cross-file: phase one indexes every function/method that
declares a ``deadline`` parameter; phase two flags call sites where a
function that *itself* received a deadline calls an indexed callee
without forwarding one. Only callers holding a deadline are checked —
an edge function creating work with no budget is a policy choice, but
*dropping* a budget someone above already allocated is always a bug
(the paper's dashboard latency target dies silently).

Forwarding is satisfied by a ``deadline=…`` or ``deadline_seconds=…``
keyword, or by passing the ``deadline`` name positionally.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.concurrency import codes
from repro.analysis.concurrency.model import (
    ModuleModel,
    dotted_name,
    enclosing_function,
)
from repro.diagnostics import Diagnostic

_DEADLINE_PARAM = "deadline"
_FORWARD_KEYWORDS = {"deadline", "deadline_seconds"}


def _diag(
    model: ModuleModel, node: ast.AST, message: str
) -> Optional[Diagnostic]:
    if model.suppressed("TAB607", node.lineno):
        return None
    entry = codes.info("TAB607")
    return Diagnostic(
        code="TAB607",
        severity=entry.severity,
        message=message,
        span=model.span(node),
        hint=entry.hint,
        source=model.text,
        filename=model.filename,
    )


def _declares_deadline(function: ast.AST) -> bool:
    args = getattr(function, "args", None)
    if args is None:
        return False
    names = [a.arg for a in args.args + args.kwonlyargs]
    return _DEADLINE_PARAM in names


def deadline_index(models: List[ModuleModel]) -> Set[str]:
    """Names of every function that accepts a ``deadline`` parameter."""
    index: Set[str] = set()
    for model in models:
        for node in ast.walk(model.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _declares_deadline(node):
                    index.add(node.name)
    return index


def _callee_name(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    return name.split(".")[-1]


def _forwards_deadline(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg in _FORWARD_KEYWORDS:
            return True
        if kw.arg is None:  # **kwargs forwarding: assume it carries it
            return True
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == _DEADLINE_PARAM:
            return True
        if isinstance(arg, ast.Attribute) and arg.attr == _DEADLINE_PARAM:
            return True
    return False


def check_dropped_deadlines(
    model: ModuleModel, index: Set[str]
) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _callee_name(node)
        if callee is None or callee not in index:
            continue
        caller = enclosing_function(model, node)
        if caller is None or not _declares_deadline(caller):
            continue
        if callee == getattr(caller, "name", None) and _forwards_deadline(node):
            continue
        if _forwards_deadline(node):
            continue
        diag = _diag(
            model, node,
            f"`{getattr(caller, 'name', '<fn>')}` holds a deadline but "
            f"calls deadline-aware `{callee}` without forwarding it — "
            "the subtree below this call runs unbounded",
        )
        if diag is not None:
            findings.append(diag)
    return findings
