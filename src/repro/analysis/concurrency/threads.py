"""Thread-lifecycle check: TAB609.

Ownership analysis in the spirit of the TAB604/605 resource checks,
specialized to background threads: a class that *stores* a
``threading.Thread`` on ``self`` (directly, or by appending it to a
``self`` collection) and starts it has claimed ownership of that
thread's lifetime — so some method of the class must join it, or the
"owner" can return from ``close()`` while its worker is still mutating
shared state (the exact bug class the streaming-ingest WAL writer and
maintainer threads exist to avoid).

Join evidence is any ``<expr>.join()`` call in the class with **no
positional arguments** (``t.join()`` / ``t.join(timeout=...)``). The
no-positional rule is what separates a thread join from ``str.join``
and ``os.path.join``, which always take a positional iterable — pass
the timeout by keyword, as ``threading.Thread.join`` intends.

Fire-and-forget threads that are started but *not* stored on ``self``
are deliberately out of scope: a daemon thread wrapping
``serve_forever`` has no owner to join it, and flagging those would
teach people to stash references they never manage.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.concurrency import codes
from repro.analysis.concurrency.model import ModuleModel, dotted_name
from repro.diagnostics import Diagnostic


def _diag(
    model: ModuleModel, code: str, node: ast.AST, message: str
) -> Optional[Diagnostic]:
    if model.suppressed(code, node.lineno):
        return None
    entry = codes.info(code)
    return Diagnostic(
        code=code,
        severity=entry.severity,
        message=message,
        span=model.span(node),
        hint=entry.hint,
        source=model.text,
        filename=model.filename,
    )


def _is_thread_create(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    return name is not None and name.split(".")[-1] == "Thread"


def _self_attr_of(expr: ast.expr) -> Optional[str]:
    """``X`` for a ``self.X`` expression, else ``None``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _owned_thread_creations(node: ast.ClassDef) -> Dict[ast.Call, str]:
    """Thread constructions the class takes ownership of.

    Maps each ``Thread(...)`` call to the ``self`` attribute it lands
    on, covering the two idioms this repo uses:

    - ``self._writer = threading.Thread(...)``
    - ``t = threading.Thread(...)`` … ``self._workers.append(t)``
      (or ``self._worker = t``)
    """
    owned: Dict[ast.Call, str] = {}
    for func in ast.walk(node):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_threads: Dict[str, ast.Call] = {}
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                if not _is_thread_create(call):
                    continue
                for target in stmt.targets:
                    attr = _self_attr_of(target)
                    if attr is not None:
                        owned[call] = attr
                    elif isinstance(target, ast.Name):
                        local_threads[target.id] = call
            elif isinstance(stmt, ast.Call):
                # self.<attr>.append(t) — ownership transfer of a local.
                func_attr = stmt.func
                if (
                    isinstance(func_attr, ast.Attribute)
                    and func_attr.attr in {"append", "add"}
                    and _self_attr_of(func_attr.value) is not None
                ):
                    for arg in stmt.args:
                        if isinstance(arg, ast.Name) and arg.id in local_threads:
                            owned[local_threads[arg.id]] = _self_attr_of(
                                func_attr.value
                            )
        # self.<attr> = t  (assignment of a previously created local)
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
                if stmt.value.id in local_threads:
                    for target in stmt.targets:
                        attr = _self_attr_of(target)
                        if attr is not None:
                            owned[local_threads[stmt.value.id]] = attr
    return owned


def _started_names(node: ast.ClassDef) -> Set[str]:
    """Names (self attrs and locals) on which ``.start()`` is called."""
    started: Set[str] = set()
    for call in ast.walk(node):
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "start"):
            continue
        attr = _self_attr_of(func.value)
        if attr is not None:
            started.add(attr)
        elif isinstance(func.value, ast.Name):
            started.add(func.value.id)
    return started


def _has_join_evidence(node: ast.ClassDef) -> bool:
    """Any zero-positional ``.join()`` call in the class body."""
    for call in ast.walk(node):
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "join" and not call.args:
            return True
    return False


def _creation_local_names(node: ast.ClassDef, call: ast.Call) -> Set[str]:
    """Local names bound to ``call`` (for matching ``t.start()``)."""
    names: Set[str] = set()
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and stmt.value is call:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def check_thread_lifecycle(model: ModuleModel) -> List[Diagnostic]:
    """TAB609: a class-owned thread is started but never joined."""
    findings: List[Diagnostic] = []
    for cls in model.classes:
        owned = _owned_thread_creations(cls.node)
        if not owned:
            continue
        if _has_join_evidence(cls.node):
            continue
        started = _started_names(cls.node)
        for call, attr in owned.items():
            if attr not in started and not (
                _creation_local_names(cls.node, call) & started
            ):
                continue
            diag = _diag(
                model,
                "TAB609",
                call,
                f"`{cls.name}` stores this thread on `self.{attr}` and "
                f"starts it, but no method of the class ever joins it — "
                f"close/stop can return while the worker still runs",
            )
            if diag is not None:
                findings.append(diag)
    return findings
