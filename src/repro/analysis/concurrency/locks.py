"""Lock-discipline checks: TAB601, TAB602, TAB603.

TAB601 is intraprocedural per class: every ``self.<attr>`` access to a
``# guard:``-annotated attribute must be lexically inside ``with
self.<lock>:`` or a ``@guarded_by`` method; ``# guard-writes:`` relaxes
that to mutations only (lock-free readers are a documented protocol in
this codebase — the cube store's stale-pointer retry, the gateway's
snapshot pin).

TAB602 is global: every ``with B:`` nested inside ``with A:`` anywhere
in the checked files contributes an ``A -> B`` edge; a cycle in the
resulting graph is a latent deadlock. Lock identity is qualified by
class (``Gateway._stats_lock``) so unrelated same-named locks in
different classes do not alias.

TAB603 flags calls that block while a lock is held: a hard list
(``time.sleep``, ``os.fsync``, subprocess, queue put/get, ``.result``
on futures) warns; callee names that merely *look* like I/O
(``load_…``, ``verify_…``) get a NOTE so deliberate cases survive
``--strict``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.concurrency import codes
from repro.analysis.concurrency.model import (
    CONSTRUCTION_METHODS,
    MUTATOR_METHODS,
    ClassModel,
    ModuleModel,
    dotted_name,
    enclosing_function,
    guarded_by_decorator,
    held_locks_at,
    with_item_lock,
)
from repro.diagnostics import Diagnostic, Severity

#: Dotted callee names that always block.
_HARD_BLOCKING = {
    "time.sleep",
    "os.fsync",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
}
#: Bare names covering ``from time import sleep`` style imports.
_HARD_BLOCKING_BARE = {"sleep", "fsync"}
#: Attribute calls that block when the receiver is a queue or future.
_QUEUE_METHODS = {"get", "put"}
_FUTURE_METHODS = {"result"}
#: Callee-name prefixes that *suggest* I/O — NOTE severity only.
_IOISH_PREFIXES = ("load_", "save_", "read_", "write_", "fetch_", "verify_")


def _diag(
    model: ModuleModel, code: str, node: ast.AST, message: str
) -> Optional[Diagnostic]:
    if model.suppressed(code, node.lineno):
        return None
    entry = codes.info(code)
    return Diagnostic(
        code=code,
        severity=entry.severity,
        message=message,
        span=model.span(node),
        hint=entry.hint,
        source=model.text,
        filename=model.filename,
    )


# ---------------------------------------------------------------------------
# TAB601 — guarded attribute accessed outside its lock
# ---------------------------------------------------------------------------


def _is_write(model: ModuleModel, node: ast.Attribute) -> bool:
    if isinstance(node.ctx, (ast.Store, ast.Del)):
        return True
    parent = model.parents.get(node)
    if (
        isinstance(parent, ast.Subscript)
        and parent.value is node
        and isinstance(parent.ctx, (ast.Store, ast.Del))
    ):
        return True  # self.attr[key] = value / del self.attr[key]
    if (
        isinstance(parent, ast.Attribute)
        and parent.value is node
        and parent.attr in MUTATOR_METHODS
    ):
        grandparent = model.parents.get(parent)
        if isinstance(grandparent, ast.Call) and grandparent.func is parent:
            return True  # self.attr.append(...)
    return False


def check_guarded_access(model: ModuleModel) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for node in ast.walk(model.tree):
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            continue
        cls = model.class_of(node)
        if cls is None or node.attr not in cls.guards:
            continue
        function = enclosing_function(model, node)
        if function is None or function.name in CONSTRUCTION_METHODS:
            continue
        annotation = cls.guards[node.attr]
        write = _is_write(model, node)
        if annotation.writes_only and not write:
            continue
        if annotation.lock in held_locks_at(model, node):
            continue
        verb = "mutated" if write else "read"
        convention = "guard-writes" if annotation.writes_only else "guard"
        diag = _diag(
            model, "TAB601", node,
            f"`self.{node.attr}` is {verb} in `{cls.name}.{function.name}` "
            f"without holding `{annotation.lock}` (annotated "
            f"`# {convention}: {annotation.lock}` at line {annotation.lineno})",
        )
        if diag is not None:
            findings.append(diag)
    return findings


# ---------------------------------------------------------------------------
# TAB602 — global lock-acquisition-order cycles
# ---------------------------------------------------------------------------


def _qualify(model: ModuleModel, node: ast.AST, lock: str) -> str:
    cls = model.class_of(node)
    if cls is not None:
        return f"{cls.name}.{lock}"
    stem = model.filename.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return f"{stem}:{lock}"


class OrderGraph:
    """The cross-file lock-acquisition-order graph."""

    def __init__(self) -> None:
        #: (held, acquired) -> (model, with-node) of the first sighting
        self.edges: Dict[Tuple[str, str], Tuple[ModuleModel, ast.AST]] = {}

    def collect(self, model: ModuleModel) -> None:
        for node in ast.walk(model.tree):
            if not isinstance(node, ast.With):
                continue
            acquired = [
                (item, with_item_lock(item))
                for item in node.items
                if with_item_lock(item) is not None
            ]
            if not acquired:
                continue
            held = held_locks_at(model, node)
            func = enclosing_function(model, node)
            if func is not None:
                deco = guarded_by_decorator(func)
                if deco is not None:
                    held.add(deco)
            for item, lock in acquired:
                assert lock is not None
                for outer in held:
                    if outer == lock:
                        continue  # reentrant re-acquire, not an ordering edge
                    edge = (
                        _qualify(model, node, outer),
                        _qualify(model, node, lock),
                    )
                    self.edges.setdefault(edge, (model, item.context_expr))

    def cycles(self) -> List[List[str]]:
        graph: Dict[str, Set[str]] = {}
        for held, acquired in self.edges:
            graph.setdefault(held, set()).add(acquired)
        seen_cycles: Set[frozenset] = set()
        cycles: List[List[str]] = []

        def dfs(start: str, current: str, path: List[str]) -> None:
            for neighbor in sorted(graph.get(current, ())):
                if neighbor == start and len(path) > 1:
                    key = frozenset(path)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        cycles.append(list(path))
                elif neighbor not in path:
                    dfs(start, neighbor, path + [neighbor])

        for node in sorted(graph):
            dfs(node, node, [node])
        return cycles

    def diagnostics(self) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        for cycle in self.cycles():
            chain = " -> ".join(cycle + [cycle[0]])
            # Anchor the report at the first recorded edge of the cycle.
            for i in range(len(cycle)):
                edge = (cycle[i], cycle[(i + 1) % len(cycle)])
                if edge in self.edges:
                    model, node = self.edges[edge]
                    diag = _diag(
                        model, "TAB602", node,
                        f"lock-order cycle: {chain} (these locks are "
                        "acquired in both orders somewhere in the codebase)",
                    )
                    if diag is not None:
                        findings.append(diag)
                    break
        return findings


# ---------------------------------------------------------------------------
# TAB603 — blocking call while holding a lock
# ---------------------------------------------------------------------------


def _blocking_class(model: ModuleModel, call: ast.Call) -> Optional[Tuple[str, str]]:
    """``(kind, label)`` if the call is blocking; kind is warn|note."""
    name = dotted_name(call.func)
    if name is not None:
        if name in _HARD_BLOCKING:
            return ("warn", name)
        if name in _HARD_BLOCKING_BARE:
            return ("warn", name)
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        receiver = dotted_name(call.func.value) or ""
        if attr in _QUEUE_METHODS and "queue" in receiver.lower():
            return ("warn", f"{receiver}.{attr}")
        if attr in _FUTURE_METHODS and "future" in receiver.lower():
            return ("warn", f"{receiver}.{attr}")
        if attr.startswith(_IOISH_PREFIXES):
            return ("note", f"{receiver + '.' if receiver else ''}{attr}")
    elif isinstance(call.func, ast.Name) and call.func.id.startswith(_IOISH_PREFIXES):
        return ("note", call.func.id)
    return None


def check_blocking_under_lock(model: ModuleModel) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call):
            continue
        classified = _blocking_class(model, node)
        if classified is None:
            continue
        held = held_locks_at(model, node)
        if not held:
            continue
        kind, label = classified
        message = (
            f"`{label}` is called while holding "
            f"{', '.join(f'`{h}`' for h in sorted(held))}"
        )
        if kind == "note":
            message += " (name suggests I/O; downgrade is deliberate)"
        diag = _diag(model, "TAB603", node, message)
        if diag is not None:
            if kind == "note":
                diag = Diagnostic(
                    code=diag.code,
                    severity=Severity.NOTE,
                    message=diag.message,
                    span=diag.span,
                    hint=diag.hint,
                    source=diag.source,
                    filename=diag.filename,
                )
            findings.append(diag)
    return findings
