"""SQL-equivalent declarations of the built-in loss functions.

Each built-in of :mod:`repro.core.loss.registry` has a hand-written
native implementation; the declarations here state the *same* loss as a
``CREATE AGGREGATE`` body so the static analyzer can prove the built-ins
algebraic and warning-free — the regression test in
``tests/analysis/test_paper_losses.py`` runs the analyzer over every one
of these and requires zero errors.

``histogram_loss`` is the 1-D special case of the average-min-distance
loss, so its declaration reuses ``AVG_MIN_DIST``; it is *representative*
(same aggregate vocabulary, same decomposability class), not a
character-for-character transliteration of the native evaluator.
"""

from __future__ import annotations

from typing import Dict

#: name → SQL declaration, one per registry built-in.
BUILTIN_LOSS_SQL: Dict[str, str] = {
    "mean_loss": (
        "CREATE AGGREGATE mean_loss(Raw, Sam) RETURN decimal_value AS\n"
        "BEGIN\n"
        "    ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw))\n"
        "END"
    ),
    "histogram_loss": (
        "CREATE AGGREGATE histogram_loss(Raw, Sam) RETURN decimal_value AS\n"
        "BEGIN\n"
        "    AVG_MIN_DIST(Raw, Sam)\n"
        "END"
    ),
    "heatmap_loss": (
        "CREATE AGGREGATE heatmap_loss(Raw, Sam) RETURN decimal_value AS\n"
        "BEGIN\n"
        "    AVG_MIN_DIST(Raw, Sam)\n"
        "END"
    ),
    "heatmap_loss_manhattan": (
        "CREATE AGGREGATE heatmap_loss_manhattan(Raw, Sam) RETURN decimal_value AS\n"
        "BEGIN\n"
        "    AVG_MIN_DIST_MANHATTAN(Raw, Sam)\n"
        "END"
    ),
    "regression_loss": (
        "CREATE AGGREGATE regression_loss(Raw, Sam) RETURN decimal_value AS\n"
        "BEGIN\n"
        "    ABS(ANGLE(Raw) - ANGLE(Sam))\n"
        "END"
    ),
    "stddev_loss": (
        "CREATE AGGREGATE stddev_loss(Raw, Sam) RETURN decimal_value AS\n"
        "BEGIN\n"
        "    ABS((STD_DEV(Raw) - STD_DEV(Sam)) / STD_DEV(Raw))\n"
        "END"
    ),
}
