"""The TAB diagnostic-code catalog.

Code families:

- ``TAB0xx`` — syntax / script-level problems surfaced by the linter;
- ``TAB1xx`` — structural and algebraic-decomposability errors in a
  ``CREATE AGGREGATE`` body (pass 1);
- ``TAB2xx`` — domain hazards found by interval range analysis (pass 2);
- ``TAB3xx`` — parameter-usage findings (pass 3);
- ``TAB4xx`` — catalog-aware ``CREATE TABLE ... GROUPBY CUBE`` DDL
  checks (pass 4).

Each entry records the *default* severity; a pass may calibrate it
(e.g. ``TAB404`` is an error for θ ≤ 0 but only a warning for θ ≥ 1,
which the dialect tolerates for absolute-valued losses).

``docs/sql_dialect.md`` renders this catalog in its "Diagnostics
catalog" section; keep the two in sync (the test suite cross-checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.diagnostics import Severity


@dataclass(frozen=True)
class CodeInfo:
    """Catalog entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str
    summary: str
    hint: str


def _info(code: str, severity: Severity, title: str, summary: str, hint: str) -> Tuple[str, CodeInfo]:
    return code, CodeInfo(code, severity, title, summary, hint)


CODES: Dict[str, CodeInfo] = dict(
    (
        _info(
            "TAB001", Severity.ERROR, "syntax-error",
            "The SQL text could not be tokenized or parsed.",
            "fix the syntax at the caret; see docs/sql_dialect.md for the grammar",
        ),
        # -- pass 1: structure / algebraic decomposability ---------------
        _info(
            "TAB101", Severity.ERROR, "holistic-aggregate",
            "The loss body uses a holistic aggregate (e.g. MEDIAN); Tabula "
            "requires an algebraic loss so the dry run can derive every "
            "cuboid from bounded per-cell state (Section II).",
            "replace the holistic aggregate with a distributive or algebraic "
            "one (AVG, SUM, COUNT, MIN, MAX, STD_DEV, ...)",
        ),
        _info(
            "TAB102", Severity.ERROR, "unknown-aggregate",
            "The loss body calls an aggregate the engine does not provide.",
            "valid aggregates: AVG, SUM, COUNT, MIN, MAX, STD_DEV, DISTINCT, "
            "TOPK, ANGLE, AVG_MIN_DIST, AVG_MIN_DIST_MANHATTAN",
        ),
        _info(
            "TAB103", Severity.ERROR, "unknown-dataset",
            "An aggregate call references a dataset that is not one of the "
            "declared loss parameters.",
            "aggregate arguments must be the declared parameters "
            "(conventionally Raw and Sam)",
        ),
        _info(
            "TAB104", Severity.ERROR, "cross-aggregate-misuse",
            "AVG_MIN_DIST-family aggregates must be called with both "
            "datasets, raw first: AVG_MIN_DIST(Raw, Sam).",
            "call it with exactly the two declared parameters, raw side first",
        ),
        _info(
            "TAB105", Severity.ERROR, "aggregate-arity",
            "Engine aggregates take exactly one dataset argument.",
            "split the call: combine single-dataset aggregates with scalar "
            "arithmetic instead",
        ),
        _info(
            "TAB106", Severity.ERROR, "no-aggregate",
            "The loss body references no aggregate call at all, so it is a "
            "constant and can never measure sample quality.",
            "compare an aggregate of Raw against the same aggregate of Sam",
        ),
        _info(
            "TAB107", Severity.ERROR, "parameter-count",
            "A loss function must declare exactly two dataset parameters "
            "(the raw group and its sample).",
            "declare it as CREATE AGGREGATE name(Raw, Sam) ...",
        ),
        _info(
            "TAB108", Severity.ERROR, "unknown-scalar-function",
            "The loss body calls a scalar function the dialect does not "
            "define.",
            "valid scalar functions: ABS, SQRT, LOG, EXP, POW",
        ),
        _info(
            "TAB109", Severity.ERROR, "scalar-function-arity",
            "A scalar function was called with the wrong number of "
            "arguments.",
            "ABS/SQRT/LOG/EXP take one argument; POW takes two",
        ),
        # -- pass 2: domain hazards (range analysis) ---------------------
        _info(
            "TAB201", Severity.NOTE, "possible-division-by-zero",
            "Range analysis cannot rule out a zero denominator. The dialect "
            "evaluates x/0 to +inf, which makes the sampler keep adding "
            "tuples — safe, but worth knowing about.",
            "guard the denominator (e.g. divide by a COUNT-free aggregate) "
            "or accept the conservative inf semantics",
        ),
        _info(
            "TAB202", Severity.NOTE, "sqrt-of-possibly-negative",
            "The SQRT argument may be negative; at runtime that evaluates "
            "to +inf (conservative).",
            "wrap the argument in ABS(...) or square it with POW(x, 2)",
        ),
        _info(
            "TAB203", Severity.NOTE, "log-of-possibly-nonpositive",
            "The LOG argument may be zero or negative; at runtime that "
            "evaluates to +inf (conservative).",
            "shift the argument (LOG(1 + x)) or guard it with ABS(...)",
        ),
        _info(
            "TAB204", Severity.WARNING, "possibly-negative-loss",
            "Range analysis cannot prove the loss is non-negative; the "
            "deterministic guarantee loss(raw, sample) <= θ is meaningless "
            "for negative losses.",
            "wrap the body in ABS(...) so the loss is provably >= 0",
        ),
        # -- pass 3: parameter usage -------------------------------------
        _info(
            "TAB301", Severity.ERROR, "sample-never-referenced",
            "The body never aggregates the sample parameter, so the loss is "
            "constant w.r.t. the sample and greedy sampling can never "
            "reduce it below θ.",
            "reference the sample parameter (e.g. subtract AVG(Sam))",
        ),
        _info(
            "TAB302", Severity.WARNING, "raw-never-referenced",
            "The body never aggregates the raw parameter; the loss cannot "
            "converge toward the raw data and the guarantee is vacuous.",
            "compare the sample against an aggregate of the raw parameter",
        ),
        _info(
            "TAB303", Severity.ERROR, "angle-target-arity",
            "ANGLE is the regression-line angle and needs exactly two "
            "target attributes (x, y) when the loss is bound.",
            "bind the loss with two target attributes, e.g. "
            "loss(pickup_x, pickup_y, Sam_global)",
        ),
        # -- pass 4: catalog-aware DDL checks ----------------------------
        _info(
            "TAB401", Severity.ERROR, "unknown-source-table",
            "The FROM table of the initialization query is not registered "
            "in the catalog.",
            "register the table on the session before building the cube",
        ),
        _info(
            "TAB402", Severity.ERROR, "unknown-cubed-attribute",
            "A CUBE(...) attribute does not exist in the source table.",
            "cube attributes must name columns of the FROM table",
        ),
        _info(
            "TAB403", Severity.ERROR, "bad-target-attribute",
            "A HAVING target attribute is missing from the source table or "
            "is not numeric.",
            "loss target attributes must be numeric (INT64/FLOAT64) columns",
        ),
        _info(
            "TAB404", Severity.ERROR, "threshold-out-of-range",
            "The loss threshold θ must be positive; the paper's relative "
            "losses live in (0, 1). θ ≤ 0 is an error, θ ≥ 1 a warning.",
            "pick θ in (0, 1); absolute-valued losses may justify θ >= 1",
        ),
        _info(
            "TAB405", Severity.ERROR, "unknown-loss-function",
            "The HAVING clause names a loss function that is neither "
            "built-in nor declared with CREATE AGGREGATE.",
            "declare the loss first, or use a built-in (mean_loss, "
            "heatmap_loss, regression_loss, histogram_loss, stddev_loss)",
        ),
        _info(
            "TAB406", Severity.ERROR, "loss-arity-mismatch",
            "The number of target attributes does not match what the loss "
            "function requires.",
            "check the loss's declared arity (ANGLE-based losses need two "
            "target attributes)",
        ),
        _info(
            "TAB407", Severity.WARNING, "target-attribute-cubed",
            "A loss target attribute is also a cubed attribute; grouping by "
            "the measure being approximated usually signals a mistake.",
            "cube on categorical dimensions and measure a separate numeric "
            "attribute",
        ),
    )
)


def info(code: str) -> CodeInfo:
    """Catalog entry for ``code`` (raises ``KeyError`` for unknown codes)."""
    return CODES[code]


def all_codes() -> Tuple[str, ...]:
    """Every registered diagnostic code, sorted."""
    return tuple(sorted(CODES))
