"""Static semantic analysis of the loss-function DSL and the cube DDL.

Layout:

- :mod:`repro.analysis.codes` — the TAB diagnostic-code catalog;
- :mod:`repro.analysis.intervals` — interval arithmetic for pass 2;
- :mod:`repro.analysis.loss_passes` — the three body passes;
- :mod:`repro.analysis.analyzer` — :func:`analyze_loss` entry point;
- :mod:`repro.analysis.ddl` — catalog-aware initialization-DDL checks;
- :mod:`repro.analysis.lint` — the ``repro lint`` front end (imported
  on demand, *not* re-exported here: it pulls in the loss registry,
  which the compiler-side modules must not depend on).
"""

from repro.analysis.analyzer import LossAnalysisResult, analyze_loss
from repro.analysis.codes import CODES, CodeInfo, all_codes, info
from repro.analysis.ddl import analyze_cube, raise_for_ddl_errors
from repro.analysis.loss_passes import (
    CROSS_AGGS,
    SCALAR_FUNC_ARITY,
    SPECIAL_AGGS,
    CallInfo,
    StatComponent,
    SufficientStatistics,
)

__all__ = [
    "CODES",
    "CROSS_AGGS",
    "CallInfo",
    "CodeInfo",
    "LossAnalysisResult",
    "SCALAR_FUNC_ARITY",
    "SPECIAL_AGGS",
    "StatComponent",
    "SufficientStatistics",
    "all_codes",
    "analyze_cube",
    "analyze_loss",
    "info",
    "raise_for_ddl_errors",
]
