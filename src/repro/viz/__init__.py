"""Visual-analysis substrate.

The paper renders returned samples with Matlab (heat maps, histograms)
and scikit-learn (means, regression lines) and reports the *sample
visualization time* separately from the data-system time (Table II).
This subpackage implements those analysis tasks on numpy so the
benchmark harness can measure both halves of the
data-to-visualization time on the same code paths every approach uses.
"""

from repro.viz.dashboard import Dashboard, Interaction
from repro.viz.heatmap import HeatmapSpec, heatmap_difference, render_heatmap
from repro.viz.histogram import HistogramSpec, render_histogram
from repro.viz.regression import RegressionFit, fit_regression
from repro.viz.scatter import ScatterPlot, ScatterSpec, render_scatter, scatter_difference

__all__ = [
    "Dashboard",
    "HeatmapSpec",
    "HistogramSpec",
    "Interaction",
    "RegressionFit",
    "ScatterPlot",
    "ScatterSpec",
    "fit_regression",
    "render_scatter",
    "scatter_difference",
    "heatmap_difference",
    "render_heatmap",
    "render_histogram",
]
