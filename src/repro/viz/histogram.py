"""Histogram rendering for 1-D analysis tasks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class HistogramSpec:
    """Binning parameters; ``bounds=None`` derives the range from data."""

    bins: int = 40
    bounds: Optional[Tuple[float, float]] = None


def render_histogram(values: np.ndarray, spec: HistogramSpec = HistogramSpec()) -> np.ndarray:
    """Bin ``values`` into a normalized histogram (sums to 1; zeros if empty)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("histogram rendering expects 1-D values")
    if len(values) == 0:
        return np.zeros(spec.bins)
    if spec.bounds is not None:
        lo, hi = spec.bounds
    else:
        lo, hi = float(values.min()), float(values.max())
        if hi <= lo:
            hi = lo + 1.0
    counts, _ = np.histogram(values, bins=spec.bins, range=(lo, hi))
    total = counts.sum()
    return counts / total if total > 0 else counts.astype(float)


def histogram_difference(
    raw_values: np.ndarray, sample_values: np.ndarray, spec: HistogramSpec = HistogramSpec()
) -> float:
    """Total-variation distance between two histograms over a shared range."""
    raw_values = np.asarray(raw_values, dtype=float)
    sample_values = np.asarray(sample_values, dtype=float)
    if spec.bounds is None and len(raw_values):
        lo = float(raw_values.min())
        hi = float(raw_values.max())
        if hi <= lo:
            hi = lo + 1.0
        spec = HistogramSpec(bins=spec.bins, bounds=(lo, hi))
    raw_hist = render_histogram(raw_values, spec)
    sample_hist = render_histogram(sample_values, spec)
    return float(0.5 * np.abs(raw_hist - sample_hist).sum())
