"""The dashboard simulation: data-to-visualization loop with timing.

A :class:`Dashboard` runs one *interaction* per query: ask the approach
(Tabula or any baseline) for an answer, then perform the visual
analysis task on the returned tuples. It records the two halves of the
paper's data-to-visualization time separately:

- **data-system time** — producing the answer (query + any on-the-fly
  sampling), and
- **visualization time** — rendering the heat map / histogram or
  fitting the statistic on the returned tuples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.engine.table import Table
from repro.viz.heatmap import HeatmapSpec, render_heatmap
from repro.viz.histogram import HistogramSpec, render_histogram
from repro.viz.regression import fit_regression
from repro.viz.scatter import ScatterSpec, render_scatter


@dataclass
class Interaction:
    """One dashboard round-trip and its measurements."""

    query: Dict[str, object]
    answer_rows: int
    data_system_seconds: float
    visualization_seconds: float
    analysis_result: object = None

    @property
    def data_to_visualization_seconds(self) -> float:
        return self.data_system_seconds + self.visualization_seconds


class Dashboard:
    """Runs a visual-analysis task over answers produced by an approach.

    ``task`` picks the analysis:

    - ``"heatmap"`` — render the pickup-location density raster;
    - ``"histogram"`` — bin the target attribute;
    - ``"mean"`` — compute the statistical mean;
    - ``"regression"`` — fit the fare/tip regression line;
    - ``"scatter"`` — render the scatter panel with the fitted line.
    """

    def __init__(
        self,
        task: str,
        target_attrs: Sequence[str],
        heatmap_spec: HeatmapSpec = HeatmapSpec(),
        histogram_spec: HistogramSpec = HistogramSpec(),
        scatter_spec: ScatterSpec = ScatterSpec(),
    ):
        if task not in ("heatmap", "histogram", "mean", "regression", "scatter"):
            raise ValueError(f"unknown dashboard task: {task!r}")
        self.task = task
        self.target_attrs = tuple(target_attrs)
        self.heatmap_spec = heatmap_spec
        self.histogram_spec = histogram_spec
        self.scatter_spec = scatter_spec

    # ------------------------------------------------------------------
    def interact(
        self,
        query: Dict[str, object],
        answer_fn: Callable[[Dict[str, object]], Table],
    ) -> Interaction:
        """One dashboard interaction: fetch the answer, run the analysis."""
        started = time.perf_counter()
        answer = answer_fn(query)
        data_system_seconds = time.perf_counter() - started

        started = time.perf_counter()
        result = self.analyze(answer)
        visualization_seconds = time.perf_counter() - started
        return Interaction(
            query=dict(query),
            answer_rows=answer.num_rows,
            data_system_seconds=data_system_seconds,
            visualization_seconds=visualization_seconds,
            analysis_result=result,
        )

    def analyze(self, answer: Table):
        """Run only the visual-analysis half on an already-fetched answer."""
        values = self._extract(answer)
        if self.task == "heatmap":
            return render_heatmap(values, self.heatmap_spec)
        if self.task == "histogram":
            return render_histogram(values, self.histogram_spec)
        if self.task == "mean":
            return float(np.mean(values)) if len(values) else float("nan")
        if self.task == "scatter":
            if len(values):
                return render_scatter(values[:, 0], values[:, 1], self.scatter_spec)
            return render_scatter(np.empty(0), np.empty(0), self.scatter_spec)
        fit = fit_regression(values[:, 0], values[:, 1]) if len(values) else fit_regression(
            np.empty(0), np.empty(0)
        )
        return fit

    def _extract(self, answer: Table) -> np.ndarray:
        columns = [answer.column(a).data.astype(float) for a in self.target_attrs]
        if len(columns) == 1:
            return columns[0]
        return np.column_stack(columns) if answer.num_rows else np.empty((0, len(columns)))

    # ------------------------------------------------------------------
    def run_workload(
        self,
        queries: Sequence[Dict[str, object]],
        answer_fn: Callable[[Dict[str, object]], Table],
    ) -> List[Interaction]:
        """Run every query through :meth:`interact`."""
        return [self.interact(q, answer_fn) for q in queries]
