"""Scatter-plot rendering for the regression dashboard panel.

The Figure 1 dashboard's third visual is a scatter of tip vs. fare with
the fitted regression line. Rendering here means producing the binned
point raster plus the fitted line's polyline — enough to time the
visual and to compare raw-vs-sample plots quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.viz.regression import RegressionFit, fit_regression


@dataclass(frozen=True)
class ScatterSpec:
    """Raster parameters; ``bounds=None`` derives the range from data."""

    resolution: int = 48
    bounds: Optional[Tuple[float, float, float, float]] = None


@dataclass(frozen=True)
class ScatterPlot:
    """A rendered scatter panel: point raster + fitted line."""

    raster: np.ndarray
    fit: RegressionFit
    bounds: Tuple[float, float, float, float]

    @property
    def occupied_cells(self) -> int:
        return int((self.raster > 0).sum())


def render_scatter(
    x: np.ndarray, y: np.ndarray, spec: ScatterSpec = ScatterSpec()
) -> ScatterPlot:
    """Bin points into a raster and fit the regression line."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError(f"x and y must have equal length ({len(x)} vs {len(y)})")
    res = spec.resolution
    raster = np.zeros((res, res), dtype=float)
    if spec.bounds is not None:
        xmin, xmax, ymin, ymax = spec.bounds
    elif len(x):
        xmin, xmax = float(x.min()), float(x.max())
        ymin, ymax = float(y.min()), float(y.max())
        if xmax <= xmin:
            xmax = xmin + 1.0
        if ymax <= ymin:
            ymax = ymin + 1.0
    else:
        xmin, xmax, ymin, ymax = 0.0, 1.0, 0.0, 1.0
    if len(x):
        xi = np.clip(((x - xmin) / (xmax - xmin) * res).astype(int), 0, res - 1)
        yi = np.clip(((y - ymin) / (ymax - ymin) * res).astype(int), 0, res - 1)
        np.add.at(raster, (yi, xi), 1.0)
    return ScatterPlot(
        raster=raster, fit=fit_regression(x, y), bounds=(xmin, xmax, ymin, ymax)
    )


def scatter_difference(
    raw_x: np.ndarray,
    raw_y: np.ndarray,
    sample_x: np.ndarray,
    sample_y: np.ndarray,
    spec: ScatterSpec = ScatterSpec(),
) -> Tuple[float, float]:
    """(density difference, fitted-angle difference) between two panels.

    The density half is the total-variation distance between the
    normalized rasters over a shared range; the angle half is the
    quantity the regression loss bounds.
    """
    raw_x = np.asarray(raw_x, dtype=float)
    raw_y = np.asarray(raw_y, dtype=float)
    if spec.bounds is None and len(raw_x):
        spec = ScatterSpec(
            resolution=spec.resolution,
            bounds=(
                float(raw_x.min()), float(max(raw_x.max(), raw_x.min() + 1.0)),
                float(raw_y.min()), float(max(raw_y.max(), raw_y.min() + 1.0)),
            ),
        )
    raw_plot = render_scatter(raw_x, raw_y, spec)
    sample_plot = render_scatter(sample_x, sample_y, spec)
    raw_density = raw_plot.raster / raw_plot.raster.sum() if raw_plot.raster.sum() else raw_plot.raster
    sample_density = (
        sample_plot.raster / sample_plot.raster.sum()
        if sample_plot.raster.sum()
        else sample_plot.raster
    )
    density_diff = float(0.5 * np.abs(raw_density - sample_density).sum())
    angle_diff = abs(raw_plot.fit.angle_degrees - sample_plot.fit.angle_degrees)
    return density_diff, angle_diff
