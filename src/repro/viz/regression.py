"""Least-squares line fitting for the regression dashboard task.

Mirrors the paper's analysis: fit ``y = slope·x + intercept`` on the
returned answer (fare vs tip in the running example) and report the
line's angle in degrees, so benchmark code can compare raw-vs-sample
angles the same way the regression loss does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.loss.regression import regression_slope


@dataclass(frozen=True)
class RegressionFit:
    """A fitted line plus the derived angle."""

    slope: float
    intercept: float
    n: int

    @property
    def angle_degrees(self) -> float:
        return math.degrees(math.atan(self.slope))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def fit_regression(x: np.ndarray, y: np.ndarray) -> RegressionFit:
    """Least-squares fit; degenerate inputs produce a flat line."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError(f"x and y must have equal length ({len(x)} vs {len(y)})")
    n = len(x)
    if n == 0:
        return RegressionFit(slope=0.0, intercept=0.0, n=0)
    slope = regression_slope(
        float(n), float(x.sum()), float(y.sum()), float((x * y).sum()), float((x * x).sum())
    )
    intercept = float(y.mean() - slope * x.mean())
    return RegressionFit(slope=slope, intercept=intercept, n=n)
