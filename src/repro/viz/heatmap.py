"""Heat-map rendering on a regular grid.

A heat map over pickup locations is a 2-D density raster: points are
binned into ``resolution × resolution`` cells, then smoothed with a
small box kernel and normalized — enough fidelity to (a) cost time
proportional to the number of plotted tuples, as a real renderer does,
and (b) support a quantitative visual-difference metric between the
raw map and a sample's map (used to sanity-check Figure 2's story).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class HeatmapSpec:
    """Rendering parameters.

    Attributes:
        resolution: grid size per axis.
        bounds: ``(xmin, xmax, ymin, ymax)``; ``None`` = unit square.
        smoothing_passes: box-blur passes applied after binning.
    """

    resolution: int = 64
    bounds: Optional[Tuple[float, float, float, float]] = None
    smoothing_passes: int = 1


def render_heatmap(points: np.ndarray, spec: HeatmapSpec = HeatmapSpec()) -> np.ndarray:
    """Render ``(n, 2)`` points into a normalized density raster.

    Returns a ``(resolution, resolution)`` float array summing to 1
    (all-zero for an empty input).
    """
    res = spec.resolution
    grid = np.zeros((res, res), dtype=float)
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or (len(pts) and pts.shape[1] != 2):
        raise ValueError("heat map rendering expects (n, 2) points")
    if len(pts) == 0:
        return grid
    xmin, xmax, ymin, ymax = spec.bounds if spec.bounds else (0.0, 1.0, 0.0, 1.0)
    xi = np.clip(((pts[:, 0] - xmin) / max(xmax - xmin, 1e-12) * res).astype(int), 0, res - 1)
    yi = np.clip(((pts[:, 1] - ymin) / max(ymax - ymin, 1e-12) * res).astype(int), 0, res - 1)
    np.add.at(grid, (yi, xi), 1.0)
    for _ in range(spec.smoothing_passes):
        grid = _box_blur(grid)
    total = grid.sum()
    return grid / total if total > 0 else grid


def heatmap_difference(
    raw_points: np.ndarray, sample_points: np.ndarray, spec: HeatmapSpec = HeatmapSpec()
) -> float:
    """Total-variation distance between the two rendered maps, in [0, 1].

    0 = visually identical densities; 1 = disjoint. This is the
    quantitative stand-in for the "missing airport hot-spot" comparison
    of Figure 2.
    """
    raw_map = render_heatmap(raw_points, spec)
    sample_map = render_heatmap(sample_points, spec)
    return float(0.5 * np.abs(raw_map - sample_map).sum())


def _box_blur(grid: np.ndarray) -> np.ndarray:
    """One 3×3 box-blur pass with edge clamping."""
    padded = np.pad(grid, 1, mode="edge")
    out = np.zeros_like(grid)
    for dy in (0, 1, 2):
        for dx in (0, 1, 2):
            out += padded[dy:dy + grid.shape[0], dx:dx + grid.shape[1]]
    return out / 9.0
