"""Source-anchored diagnostics shared by the parser and the analyzer.

Everything that points at a piece of SQL text — syntax errors, the
static analyzer's findings, DDL validation — goes through this module:

- :class:`Span` — a half-open ``[start, end)`` character range;
- :class:`Severity` — ``ERROR`` / ``WARNING`` / ``NOTE``;
- :class:`Diagnostic` — one coded finding with a span and a hint;
- :func:`line_col` — clamped position → 1-based (line, column) math;
- :func:`render_span` — the caret/underline snippet renderer that both
  :class:`~repro.errors.SQLSyntaxError` and ``repro lint`` use.

The module deliberately imports nothing from the rest of the package so
the lexer, the AST and the error hierarchy can all depend on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Span:
    """A half-open character range ``[start, end)`` into some SQL text."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            object.__setattr__(self, "end", self.start)

    @classmethod
    def point(cls, position: int) -> "Span":
        """A zero-width span (renders as a single caret)."""
        return cls(position, position)

    def merge(self, other: Optional["Span"]) -> "Span":
        """The smallest span covering both operands."""
        if other is None:
            return self
        return Span(min(self.start, other.start), max(self.end, other.end))

    @property
    def length(self) -> int:
        return self.end - self.start


def merge_spans(left: Optional[Span], right: Optional[Span]) -> Optional[Span]:
    """Covering span of two possibly-absent spans."""
    if left is None:
        return right
    return left.merge(right)


class Severity(enum.IntEnum):
    """Diagnostic severity; higher values are more severe."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


def line_col(text: str, position: int) -> Tuple[int, int]:
    """Clamped 1-based ``(line, column)`` of ``position`` in ``text``.

    Positions past the end of the text clamp to the last character; a
    position that lands exactly on the terminating newline of the final
    line reports the end of that line instead of a phantom empty line.
    Both were rendering wrong columns before this helper existed.
    """
    if not text:
        return (1, 1)
    pos = max(0, min(position, len(text)))
    if pos == len(text) and text[pos - 1] == "\n":
        pos -= 1
    line = text.count("\n", 0, pos) + 1
    col = pos - (text.rfind("\n", 0, pos) + 1) + 1
    return (line, col)


def _line_bounds(text: str, position: int) -> Tuple[int, int]:
    """Start/end offsets of the line containing ``position`` (clamped)."""
    pos = max(0, min(position, len(text)))
    if pos == len(text) and text and text[pos - 1] == "\n":
        pos -= 1
    start = text.rfind("\n", 0, pos) + 1
    end = text.find("\n", pos)
    if end < 0:
        end = len(text)
    return (start, end)


def render_span(text: str, span: Span, *, context: int = 0) -> str:
    """A gutter-prefixed snippet with a ``^~~~`` underline for ``span``.

    Multi-line spans underline to the end of the first line. ``context``
    adds that many preceding source lines above the flagged one.
    """
    if not text:
        return ""
    start = max(0, min(span.start, len(text)))
    line_no, col = line_col(text, start)
    line_start, line_end = _line_bounds(text, start)
    gutter = max(len(str(line_no)), 2)
    lines: List[str] = []
    for back in range(context, 0, -1):
        ctx_no = line_no - back
        if ctx_no < 1:
            continue
        ctx_start, ctx_end = _line_bounds(text, _offset_of_line(text, ctx_no))
        lines.append(f"  {ctx_no:>{gutter}} | {text[ctx_start:ctx_end]}")
    source_line = text[line_start:line_end]
    lines.append(f"  {line_no:>{gutter}} | {source_line}")
    underline_end = min(max(span.end, start + 1), line_end)
    width = max(underline_end - start, 1)
    marker = "^" + "~" * (width - 1)
    lines.append(f"  {'':>{gutter}} | {' ' * (col - 1)}{marker}")
    return "\n".join(lines)


def _offset_of_line(text: str, line_no: int) -> int:
    """Character offset of the start of 1-based line ``line_no``."""
    offset = 0
    for _ in range(line_no - 1):
        nl = text.find("\n", offset)
        if nl < 0:
            return offset
        offset = nl + 1
    return offset


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding, renderable as a caret snippet."""

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    hint: Optional[str] = None
    source: Optional[str] = field(default=None, compare=False, repr=False)
    filename: str = field(default="<sql>", compare=False)

    @property
    def is_error(self) -> bool:
        return self.severity >= Severity.ERROR

    def with_source(self, source: Optional[str], filename: str = "<sql>") -> "Diagnostic":
        """A copy anchored to ``source``/``filename`` (no-op for ``None``)."""
        if source is None:
            return self
        return replace(self, source=source, filename=filename)

    def location(self) -> str:
        """``file:line:col`` when the span and source are known."""
        if self.span is None or self.source is None:
            return self.filename
        line, col = line_col(self.source, self.span.start)
        return f"{self.filename}:{line}:{col}"

    def render(self) -> str:
        """The full multi-line rendering (header, snippet, hint)."""
        parts = [f"{self.location()}: {self.severity.label}[{self.code}]: {self.message}"]
        if self.span is not None and self.source:
            parts.append(render_span(self.source, self.span))
        if self.hint:
            parts.append(f"  hint: {self.hint}")
        return "\n".join(parts)


def sort_diagnostics(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Stable order: by source position, then severity (worst first)."""
    return sorted(
        diagnostics,
        key=lambda d: (
            d.span.start if d.span is not None else -1,
            -int(d.severity),
            d.code,
        ),
    )
