"""The shared Approach protocol for all compared systems."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.loss.base import LossFunction
from repro.engine.table import Table


@dataclass(frozen=True)
class InitStats:
    """Initialization cost of an approach."""

    seconds: float
    memory_bytes: int


@dataclass(frozen=True)
class ApproachAnswer:
    """One query's answer: the returned tuples plus the data-system time.

    ``aggregate`` is set instead of meaningful tuples for approaches
    that return a conclusion directly (SnappyData's AVG).
    """

    sample: Table
    data_system_seconds: float
    aggregate: Optional[float] = None
    used_fallback: bool = False


def select_population(table: Table, query: Mapping[str, object]) -> Table:
    """The raw population selected by an equality-conjunction query."""
    mask = np.ones(table.num_rows, dtype=bool)
    for attr, value in query.items():
        col = table.column(attr)
        mask &= col.data == col.encode(value)
    return table.filter(mask)


def population_mask(table: Table, query: Mapping[str, object]) -> np.ndarray:
    """Boolean mask version of :func:`select_population`."""
    mask = np.ones(table.num_rows, dtype=bool)
    for attr, value in query.items():
        col = table.column(attr)
        mask &= col.data == col.encode(value)
    return mask


class Approach(abc.ABC):
    """A system under comparison: initialize once, then answer queries.

    Subclasses set ``name`` and implement :meth:`_initialize` and
    :meth:`_answer`; the public wrappers add uniform timing.
    """

    name: str = ""

    def __init__(self, table: Table, loss: LossFunction, threshold: float, seed: int = 0):
        self.table = table
        self.loss = loss
        self.threshold = threshold
        self.rng = np.random.default_rng(seed)
        self._init_stats: Optional[InitStats] = None

    # ------------------------------------------------------------------
    def initialize(self) -> InitStats:
        """Build any pre-materialized state; idempotent."""
        if self._init_stats is None:
            started = time.perf_counter()
            memory = self._initialize()
            self._init_stats = InitStats(
                seconds=time.perf_counter() - started, memory_bytes=memory
            )
        return self._init_stats

    def answer(self, query: Dict[str, object]) -> ApproachAnswer:
        """Answer one dashboard query (timed inside the implementation)."""
        if self._init_stats is None:
            self.initialize()
        return self._answer(query)

    @property
    def init_stats(self) -> InitStats:
        if self._init_stats is None:
            raise RuntimeError(f"{self.name}: initialize() has not run")
        return self._init_stats

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _initialize(self) -> int:
        """Build state; return the pre-built state's memory footprint in bytes."""

    @abc.abstractmethod
    def _answer(self, query: Dict[str, object]) -> ApproachAnswer:
        """Produce the answer for one query."""
