"""FullSamCube — the fully materialized sampling cube.

The straw man Tabula is measured against in Figure 10: run all ``2**n``
GroupBys and draw a local sample for *every* cell, iceberg or not. Its
memory footprint is 50–100× Tabula's and its initialization an order of
magnitude slower, which is why the paper (and this harness) only runs
it on a small dataset.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.baselines.base import Approach, ApproachAnswer
from repro.core.loss.base import LossFunction
from repro.core.sampling import sample_with_pool
from repro.engine.cube import CellKey, CubeCells
from repro.engine.table import Table


class FullSamCube(Approach):
    """A local sample in every cube cell; queries are exact lookups."""

    name = "FullSamCube"

    def __init__(
        self,
        table: Table,
        loss: LossFunction,
        threshold: float,
        attrs: Tuple[str, ...],
        seed: int = 0,
        pool_size: Optional[int] = 2000,
    ):
        super().__init__(table, loss, threshold, seed)
        self.attrs = tuple(attrs)
        self.pool_size = pool_size
        self._samples: Dict[CellKey, Table] = {}

    def _initialize(self) -> int:
        cube = CubeCells(self.table, self.attrs)
        values = self.loss.extract(self.table)
        memory = 0
        for key in cube:
            idx = cube.cell_indices(key)
            result = sample_with_pool(
                self.loss, values[idx], self.threshold, self.rng, pool_size=self.pool_size
            )
            sample = self.table.take(idx[result.indices])
            self._samples[key] = sample
            memory += sample.nbytes + (len(self.attrs) + 1) * 8
        return memory

    def _answer(self, query: Dict[str, object]) -> ApproachAnswer:
        started = time.perf_counter()
        key = tuple(query.get(attr) for attr in self.attrs)
        sample = self._samples.get(key)
        if sample is None:
            sample = Table.empty_like(self.table)
        return ApproachAnswer(
            sample=sample, data_system_seconds=time.perf_counter() - started
        )

    @property
    def num_cells(self) -> int:
        return len(self._samples)
