"""SampleFirst — query a pre-built random sample of the entire table.

The practitioners' workaround of Section I: draw one random sample up
front and point the dashboard at it. Fast and constant-time, but the
answer for a small population can deviate arbitrarily (it even loses
whole visual features, Figure 2b); the experiments show its accuracy
loss is an order of magnitude worse than everyone else's.

The paper evaluates 100 MB and 1 GB pre-built samples over the 100 GB
table — i.e. 0.1 % and 1 % of the data; the ``fraction`` parameter
expresses the same ratio at our synthetic scale.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.baselines.base import Approach, ApproachAnswer, select_population
from repro.core.loss.base import LossFunction
from repro.engine.table import Table


class SampleFirst(Approach):
    """Pre-built uniform random sample; queries filter the sample."""

    def __init__(
        self,
        table: Table,
        loss: LossFunction,
        threshold: float,
        fraction: float = 0.001,
        label: str = "",
        seed: int = 0,
    ):
        super().__init__(table, loss, threshold, seed)
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.name = label or f"SamFirst-{fraction:.3%}"
        self._sample: Table = None

    def _initialize(self) -> int:
        size = max(1, int(self.table.num_rows * self.fraction))
        self._sample = self.table.sample_rows(size, self.rng)
        return self._sample.nbytes

    def _answer(self, query: Dict[str, object]) -> ApproachAnswer:
        started = time.perf_counter()
        # A full sequential filter over the pre-built sample — constant
        # data-system time regardless of θ or the loss function.
        answer = select_population(self._sample, query)
        return ApproachAnswer(
            sample=answer, data_system_seconds=time.perf_counter() - started
        )
