"""SampleOnTheFly — query the raw table, then sample, per interaction.

The accuracy-first alternative of Section I: every dashboard query scans
the entire table, extracts the population, and runs the greedy
accuracy-loss-aware sampler (Algorithm 1) on it. The guarantee is
deterministic — the same θ bound Tabula gives — but the raw-table scan
plus online sampling dominates the data-to-visualization time, which is
exactly the gap Tabula closes (Figures 11–14 show 10–20×).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.baselines.base import Approach, ApproachAnswer, select_population
from repro.core.loss.base import LossFunction
from repro.core.sampling import sample_with_pool
from repro.engine.table import Table


class SampleOnTheFly(Approach):
    """Full scan + Algorithm 1 per query; no pre-built state."""

    name = "SamFly"

    def __init__(
        self,
        table: Table,
        loss: LossFunction,
        threshold: float,
        seed: int = 0,
        lazy: bool = True,
        pool_size: Optional[int] = 2000,
    ):
        super().__init__(table, loss, threshold, seed)
        self.lazy = lazy
        self.pool_size = pool_size

    def _initialize(self) -> int:
        return 0  # nothing pre-built, no extra memory

    def _answer(self, query: Dict[str, object]) -> ApproachAnswer:
        started = time.perf_counter()
        population = select_population(self.table, query)
        values = self.loss.extract(population)
        result = sample_with_pool(
            self.loss, values, self.threshold, self.rng,
            pool_size=self.pool_size, lazy=self.lazy,
        )
        answer = population.take(result.indices)
        return ApproachAnswer(
            sample=answer, data_system_seconds=time.perf_counter() - started
        )
