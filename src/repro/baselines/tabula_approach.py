"""Adapter exposing Tabula (and Tabula*) through the Approach protocol."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.baselines.base import Approach, ApproachAnswer
from repro.core.loss.base import LossFunction
from repro.core.tabula import Tabula, TabulaConfig
from repro.engine.table import Table


class TabulaApproach(Approach):
    """The proposed system; ``sample_selection=False`` gives Tabula*."""

    def __init__(
        self,
        table: Table,
        loss: LossFunction,
        threshold: float,
        attrs: Tuple[str, ...],
        sample_selection: bool = True,
        seed: int = 0,
        pool_size: Optional[int] = 2000,
        tabula: Optional[Tabula] = None,
    ):
        super().__init__(table, loss, threshold, seed)
        self.name = "Tabula" if sample_selection else "Tabula*"
        # An already-initialized middleware may be supplied (benchmarks
        # share expensive builds across figures via a cache).
        self.tabula = tabula if tabula is not None else Tabula(
            table,
            TabulaConfig(
                cubed_attrs=tuple(attrs),
                threshold=threshold,
                loss=loss,
                sample_selection=sample_selection,
                pool_size=pool_size,
                seed=seed,
            ),
        )

    def _initialize(self) -> int:
        if self.tabula._store is None:
            self.tabula.initialize()
        return self.tabula.memory_breakdown().total_bytes

    def _answer(self, query: Dict[str, object]) -> ApproachAnswer:
        result = self.tabula.query(query)
        return ApproachAnswer(
            sample=result.sample, data_system_seconds=result.data_system_seconds
        )
