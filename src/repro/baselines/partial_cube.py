"""PartSamCube — the initialization query executed the straightforward way.

Runs the Section-II ``CREATE TABLE ... GROUPBY CUBE ... HAVING loss(...)
> θ`` query literally: all ``2**n`` GroupBys over the raw table, a
direct loss evaluation per cell against the global sample, and a local
sample for every iceberg cell. Compared with Tabula it lacks (a) the
dry run's single-pass cuboid derivation and (b) representative sample
selection — so it pays ~40× the initialization time (Figure 10a) and
5–8× the memory (Figure 10b).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.baselines.base import Approach, ApproachAnswer
from repro.core.global_sample import draw_global_sample
from repro.core.loss.base import LossFunction
from repro.core.sampling import sample_with_pool
from repro.engine.cube import CellKey, CubeCells
from repro.engine.table import Table


class PartSamCube(Approach):
    """Iceberg-only samples, but no dry run and no sample selection."""

    name = "PartSamCube"

    def __init__(
        self,
        table: Table,
        loss: LossFunction,
        threshold: float,
        attrs: Tuple[str, ...],
        seed: int = 0,
        pool_size: Optional[int] = 2000,
    ):
        super().__init__(table, loss, threshold, seed)
        self.attrs = tuple(attrs)
        self.pool_size = pool_size
        self._samples: Dict[CellKey, Table] = {}
        self._known_cells: frozenset = frozenset()
        self._global_sample: Table = None

    def _initialize(self) -> int:
        global_sample = draw_global_sample(self.table, self.rng)
        self._global_sample = global_sample.table
        sample_values = self.loss.extract(self._global_sample)
        values = self.loss.extract(self.table)
        # The classic CUBE: every cuboid grouped from the raw table.
        cube = CubeCells(self.table, self.attrs)
        memory = self._global_sample.nbytes
        known = set()
        for key in cube:
            known.add(key)
            idx = cube.cell_indices(key)
            if self.loss.loss(values[idx], sample_values) <= self.threshold:
                continue  # non-iceberg: the global sample suffices
            result = sample_with_pool(
                self.loss, values[idx], self.threshold, self.rng, pool_size=self.pool_size
            )
            sample = self.table.take(idx[result.indices])
            self._samples[key] = sample
            memory += sample.nbytes + (len(self.attrs) + 1) * 8
        self._known_cells = frozenset(known)
        return memory

    def _answer(self, query: Dict[str, object]) -> ApproachAnswer:
        started = time.perf_counter()
        key = tuple(query.get(attr) for attr in self.attrs)
        sample = self._samples.get(key)
        if sample is None:
            if key in self._known_cells:
                sample = self._global_sample
            else:
                sample = Table.empty_like(self.table)
        return ApproachAnswer(
            sample=sample, data_system_seconds=time.perf_counter() - started
        )

    @property
    def num_iceberg_cells(self) -> int:
        return len(self._samples)
