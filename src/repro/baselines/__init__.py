"""The compared approaches of Section V.

Every baseline implements the :class:`~repro.baselines.base.Approach`
protocol (initialize once, answer dashboard queries) so the benchmark
harness can sweep them uniformly:

- :class:`~repro.baselines.sample_first.SampleFirst` — pre-built random
  sample of the whole table (100 MB / 1 GB scaled variants);
- :class:`~repro.baselines.sample_on_the_fly.SampleOnTheFly` — full scan
  plus Algorithm 1 per query (deterministic guarantee, no memory);
- :class:`~repro.baselines.poisam.POIsam` — like SampleOnTheFly with a
  random pre-sampling step (probabilistic guarantee);
- :class:`~repro.baselines.snappydata.SnappyDataLike` — stratified
  samples over the Query Column Set, AVG answers with bounded error and
  raw-table fallback;
- :class:`~repro.baselines.full_cube.FullSamCube` — fully materialized
  sampling cube (a sample in *every* cell);
- :class:`~repro.baselines.partial_cube.PartSamCube` — the straight
  initialization query: iceberg-only samples but no dry run and no
  sample selection;
- Tabula and Tabula* come from :class:`repro.core.tabula.Tabula`
  (``sample_selection=True`` / ``False``) wrapped by
  :class:`~repro.baselines.tabula_approach.TabulaApproach`.
"""

from repro.baselines.base import Approach, ApproachAnswer, InitStats, select_population
from repro.baselines.full_cube import FullSamCube
from repro.baselines.partial_cube import PartSamCube
from repro.baselines.poisam import POIsam
from repro.baselines.sample_first import SampleFirst
from repro.baselines.sample_on_the_fly import SampleOnTheFly
from repro.baselines.snappydata import SnappyDataLike
from repro.baselines.tabula_approach import TabulaApproach

__all__ = [
    "Approach",
    "ApproachAnswer",
    "FullSamCube",
    "InitStats",
    "PartSamCube",
    "POIsam",
    "SampleFirst",
    "SampleOnTheFly",
    "SnappyDataLike",
    "TabulaApproach",
    "select_population",
]
