"""SnappyData-like baseline — stratified samples with bounded-error AVG.

SnappyData [Ramnarayan et al., SIGMOD 2016] maintains stratified samples
over a Query Column Set (QCS) and answers OLAP aggregates (the paper
compares on AVG) with a requested error bound; when the estimate cannot
honor the bound it transparently runs the query on the raw table. This
reproduction follows that observable protocol:

- **initialize** — build a congressional stratified sample over the QCS
  (the cubed attributes): half the budget spread uniformly across
  strata, half proportionally to stratum size;
- **answer** — estimate AVG from the matching strata with a CLT-based
  relative-error estimate; if the estimate exceeds the bound, fall back
  to a raw-table scan (exact answer, full scan cost).

It returns a conclusion (the AVG), not tuples — hence no visual-analysis
time in Table II — and only participates in the statistical-mean
experiments (Figure 14), as in the paper.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Tuple

from repro.baselines.base import Approach, ApproachAnswer, population_mask
from repro.core.loss.base import LossFunction
from repro.engine.groupby import group_rows
from repro.engine.table import Table

#: z-score of the bound check. 99 % keeps the realized loss under θ in
#: practice (Figure 14b shows SnappyData never exceeding the threshold);
#: misses fall through to the raw-table path anyway.
_Z = 2.576
#: strata smaller than this use the conservative pooled variance.
_SMALL_STRATUM = 30


class SnappyDataLike(Approach):
    """Stratified-sample AVG with error bound and raw fallback."""

    def __init__(
        self,
        table: Table,
        loss: LossFunction,
        threshold: float,
        qcs: Tuple[str, ...],
        fraction: float = 0.01,
        label: str = "",
        seed: int = 0,
    ):
        super().__init__(table, loss, threshold, seed)
        if len(loss.target_attrs) != 1:
            raise ValueError("SnappyDataLike answers AVG over a single target attribute")
        self.qcs = tuple(qcs)
        self.fraction = fraction
        self.name = label or f"SnappyData-{fraction:.2%}"
        self.target_attr = loss.target_attrs[0]
        self._strata: List[Dict] = []
        self.fallbacks = 0
        self._pooled_variance = 0.0

    # ------------------------------------------------------------------
    def _initialize(self) -> int:
        groups = group_rows(self.table, self.qcs)
        values = self.table.column(self.target_attr).data.astype(float)
        budget = max(len(groups.group_indices), int(self.table.num_rows * self.fraction))
        uniform_share = budget / (2 * max(groups.num_groups, 1))
        total_rows = self.table.num_rows
        memory = 0
        self._strata = []
        for g in range(groups.num_groups):
            idx = groups.group_indices[g]
            proportional_share = (budget / 2) * (len(idx) / max(total_rows, 1))
            quota = int(max(1, round(uniform_share + proportional_share)))
            quota = min(quota, len(idx))
            picked = self.rng.choice(idx, size=quota, replace=False)
            sampled = values[picked]
            self._strata.append(
                {
                    "key": groups.decode_key(g),
                    "population": len(idx),
                    "sample_values": sampled,
                }
            )
            memory += sampled.nbytes + len(self.qcs) * 8
        # Conservative variance stand-in for strata too small to estimate
        # their own: the full-column variance. Without it a single-tuple
        # stratum would claim zero uncertainty and skip the fallback.
        self._pooled_variance = float(values.var(ddof=1)) if len(values) > 1 else 0.0
        return memory

    # ------------------------------------------------------------------
    def _answer(self, query: Dict[str, object]) -> ApproachAnswer:
        started = time.perf_counter()
        positions = {attr: i for i, attr in enumerate(self.qcs)}
        for attr in query:
            if attr not in positions:
                raise ValueError(f"query attribute {attr!r} not in the QCS {self.qcs}")
        matching = [
            s
            for s in self._strata
            if all(s["key"][positions[a]] == v for a, v in query.items())
        ]
        estimate, relative_error = self._estimate(matching)
        if math.isnan(estimate) or relative_error > self.threshold:
            # Bounded-error promise not met from the sample: go to the raw
            # table (this is what keeps SnappyData's actual loss under θ).
            self.fallbacks += 1
            mask = population_mask(self.table, query)
            values = self.table.column(self.target_attr).data.astype(float)[mask]
            estimate = float(values.mean()) if len(values) else float("nan")
            return ApproachAnswer(
                sample=Table.empty_like(self.table),
                data_system_seconds=time.perf_counter() - started,
                aggregate=estimate,
                used_fallback=True,
            )
        return ApproachAnswer(
            sample=Table.empty_like(self.table),
            data_system_seconds=time.perf_counter() - started,
            aggregate=estimate,
        )

    def _estimate(self, strata: List[Dict]) -> Tuple[float, float]:
        """Weighted AVG estimate and its CLT relative error at 95 %."""
        total = sum(s["population"] for s in strata)
        if total == 0:
            return float("nan"), math.inf
        mean = 0.0
        variance = 0.0
        for s in strata:
            weight = s["population"] / total
            sample = s["sample_values"]
            if len(sample) == 0:
                return float("nan"), math.inf
            mean += weight * float(sample.mean())
            if len(sample) >= _SMALL_STRATUM:
                stratum_var = float(sample.var(ddof=1))
            else:
                stratum_var = max(
                    float(sample.var(ddof=1)) if len(sample) > 1 else 0.0,
                    self._pooled_variance,
                )
            variance += (weight ** 2) * stratum_var / len(sample)
        if mean == 0.0:
            return mean, math.inf
        half_width = _Z * math.sqrt(max(variance, 0.0))
        return mean, half_width / abs(mean)
