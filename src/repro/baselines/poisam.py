"""POIsam — online visualization-aware sampling with a pre-sampling step.

The paper's adaptation of POIsam [Guo et al., SIGMOD 2018]: for every
query it (1) scans the raw table for the population, (2) draws a
*random* sample of the population (sized by the law of large numbers,
default theoretical error bound 5 % at confidence level 10 %), and
(3) runs the greedy Algorithm 1 **on the random sample** — measuring
the loss against the pre-sample rather than the full population. The
random step makes it faster than SampleOnTheFly but costs the
deterministic guarantee: the experiments observe its actual loss 1–5 %
above SampleOnTheFly's and occasionally above θ (Figure 11b).
"""

from __future__ import annotations

import time
from typing import Dict

from repro.baselines.base import Approach, ApproachAnswer, select_population
from repro.core.global_sample import serfling_sample_size
from repro.core.loss.base import LossFunction
from repro.core.sampling import greedy_sample
from repro.engine.table import Table
from repro.errors import SamplingError


class POIsam(Approach):
    """Random pre-sample + greedy loss-aware sampling at query time."""

    name = "POIsam"

    def __init__(
        self,
        table: Table,
        loss: LossFunction,
        threshold: float,
        seed: int = 0,
        error_bound: float = 0.05,
        confidence: float = 0.10,
        lazy: bool = True,
    ):
        super().__init__(table, loss, threshold, seed)
        self.error_bound = error_bound
        self.confidence = confidence
        self.lazy = lazy

    def _initialize(self) -> int:
        return 0  # fully online, like SampleOnTheFly

    def _answer(self, query: Dict[str, object]) -> ApproachAnswer:
        started = time.perf_counter()
        population = select_population(self.table, query)
        # The pre-sample size follows the law of large numbers and is
        # essentially independent of the population size (Section V-E).
        presample_size = serfling_sample_size(
            self.error_bound, self.confidence, population=population.num_rows
        )
        presample = population.sample_rows(presample_size, self.rng)
        values = self.loss.extract(presample)
        try:
            result = greedy_sample(self.loss, values, self.threshold, lazy=self.lazy)
            answer = presample.take(result.indices)
        except SamplingError:
            # The pre-sample itself cannot reach θ; return it whole.
            answer = presample
        return ApproachAnswer(
            sample=answer, data_system_seconds=time.perf_counter() - started
        )
