"""Exception hierarchy for the Tabula reproduction.

Every error raised by :mod:`repro` derives from :class:`TabulaError` so
applications embedding the middleware can catch a single base class.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.diagnostics import Span, line_col, render_span


class TabulaError(Exception):
    """Base class for all errors raised by this package."""


class EngineError(TabulaError):
    """Base class for errors raised by the columnar SQL engine substrate."""


class SchemaError(EngineError):
    """A table/column definition is invalid or violated."""


class UnknownTableError(EngineError):
    """A statement referenced a table that is not in the catalog."""

    def __init__(self, name: str):
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(EngineError):
    """A statement referenced a column that does not exist."""

    def __init__(self, name: str, table: str = ""):
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column: {name!r}{where}")
        self.name = name
        self.table = table


class TypeMismatchError(EngineError):
    """An operation was applied to a column of an incompatible type."""


class SQLSyntaxError(EngineError):
    """The SQL text could not be parsed.

    Carries the offending position (and, when available, the source
    text) so callers can render a caret diagnostic. Line/column math is
    delegated to :func:`repro.diagnostics.line_col`, which clamps
    positions past end-of-text and on a final unterminated line.
    """

    def __init__(self, message: str, position: int = -1, text: str = "", span: Optional[Span] = None):
        self.position = position
        self.text = text
        self.span = span
        self.snippet = ""
        if span is None and position >= 0:
            self.span = Span.point(min(max(position, 0), len(text)) if text else max(position, 0))
        if position >= 0 and text:
            line, col = line_col(text, position)
            message = f"{message} (line {line}, column {col})"
            self.snippet = render_span(text, self.span)
        super().__init__(message)


class LossFunctionError(TabulaError):
    """A user-defined accuracy loss function is invalid.

    ``span`` (the offending range in the declaration's SQL text),
    ``loss_name`` and ``diagnostics`` are attached when the static
    analyzer produced the error, so callers can render carets; all three
    default to empty for plain message-only raises (backward
    compatible).
    """

    def __init__(
        self,
        message: str,
        *,
        span: Optional[Span] = None,
        loss_name: str = "",
        diagnostics: Tuple = (),
    ):
        super().__init__(message)
        self.span = span
        self.loss_name = loss_name
        self.diagnostics = tuple(diagnostics)


class NotAlgebraicError(LossFunctionError):
    """The declared loss function uses a holistic aggregate.

    Tabula requires the loss function to be algebraic (Section II of the
    paper) so the dry-run stage can derive every cuboid from the base
    cuboid.
    """


class SamplingError(TabulaError):
    """The accuracy-loss-aware sampler could not satisfy its contract."""


class DeadlineExceeded(TabulaError):
    """A request's deadline expired before an answer could be produced.

    Raised by the query path when the remaining budget cannot cover the
    next fallback rung (most importantly the raw-table scan), and by the
    serving gateway when a queued request times out. ``elapsed`` is the
    seconds the request had been running when the deadline cut it off.
    """

    def __init__(self, message: str, *, elapsed: float = 0.0):
        super().__init__(message)
        self.elapsed = elapsed


class CubeNotInitializedError(TabulaError):
    """A dashboard query was issued before the sampling cube was built."""


class InvalidQueryError(TabulaError):
    """A dashboard query does not fit the sampling cube.

    Raised, for example, when the WHERE clause references attributes that
    are not a subset of the cubed attributes chosen at initialization
    time, or when the static analyzer rejects a ``CREATE TABLE ...
    GROUPBY CUBE`` statement (``diagnostics`` then carries the findings).
    """

    def __init__(self, message: str, *, diagnostics: Tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)
