"""Exception hierarchy for the Tabula reproduction.

Every error raised by :mod:`repro` derives from :class:`TabulaError` so
applications embedding the middleware can catch a single base class.
"""

from __future__ import annotations


class TabulaError(Exception):
    """Base class for all errors raised by this package."""


class EngineError(TabulaError):
    """Base class for errors raised by the columnar SQL engine substrate."""


class SchemaError(EngineError):
    """A table/column definition is invalid or violated."""


class UnknownTableError(EngineError):
    """A statement referenced a table that is not in the catalog."""

    def __init__(self, name: str):
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(EngineError):
    """A statement referenced a column that does not exist."""

    def __init__(self, name: str, table: str = ""):
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column: {name!r}{where}")
        self.name = name
        self.table = table


class TypeMismatchError(EngineError):
    """An operation was applied to a column of an incompatible type."""


class SQLSyntaxError(EngineError):
    """The SQL text could not be parsed.

    Carries the offending position so callers can render a caret
    diagnostic.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        if position >= 0 and text:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)
        self.position = position


class LossFunctionError(TabulaError):
    """A user-defined accuracy loss function is invalid."""


class NotAlgebraicError(LossFunctionError):
    """The declared loss function uses a holistic aggregate.

    Tabula requires the loss function to be algebraic (Section II of the
    paper) so the dry-run stage can derive every cuboid from the base
    cuboid.
    """


class SamplingError(TabulaError):
    """The accuracy-loss-aware sampler could not satisfy its contract."""


class CubeNotInitializedError(TabulaError):
    """A dashboard query was issued before the sampling cube was built."""


class InvalidQueryError(TabulaError):
    """A dashboard query does not fit the sampling cube.

    Raised, for example, when the WHERE clause references attributes that
    are not a subset of the cubed attributes chosen at initialization
    time.
    """
