"""Supervision of shard-worker processes: spawn, probe, restart, park.

The supervisor owns one worker process per shard and runs a monitor
loop that walks a small deterministic state machine per worker::

    STOPPED ──start──▶ STARTING ──handshake──▶ UP
        UP ──exit code / probe misses──▶ BACKOFF ──delay elapsed──▶ STARTING
        BACKOFF ──crash-loop budget exhausted──▶ FAILED   (parked)

Death is detected two ways: ``poll()`` sees the process exit (crash,
kill -9, injected ``os._exit``), and a *liveness probe* — a ``health``
RPC over the worker's own serving socket — catches the subtler failure
of a hung-but-alive process (``liveness_misses`` consecutive probe
failures ⇒ kill and restart).  Restart delays follow deterministic
exponential backoff with seeded jitter (:func:`backoff_delay` is a pure
function, so tests assert the exact schedule), and a crash-loop budget
(> ``crash_loop_budget`` restarts inside ``crash_loop_window_seconds``)
parks the shard as FAILED instead of burning CPU on a poisoned cube —
the router then serves that shard's cells from the replicated global
sample indefinitely, which is the designed degradation, not an outage.

Everything effectful is injectable (worker factory, probe, clock), so
the unit tests drive the state machine with fakes and zero real
processes; the integration tests use :func:`default_worker_factory`.
"""

from __future__ import annotations

import enum
import json
import random
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sanitizer import create_lock
from repro.serving import wire

__all__ = [
    "ShardSupervisor",
    "SupervisorConfig",
    "WorkerProcess",
    "WorkerSpawnError",
    "WorkerState",
    "backoff_delay",
    "default_worker_factory",
    "wire_health_probe",
]


class WorkerState(enum.Enum):
    STOPPED = "stopped"
    STARTING = "starting"
    UP = "up"
    BACKOFF = "backoff"
    FAILED = "failed"


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy knobs (all deterministic given ``backoff_seed``)."""

    heartbeat_interval_seconds: float = 0.5
    heartbeat_timeout_seconds: float = 1.0
    #: consecutive probe failures before a live process is declared hung.
    liveness_misses: int = 3
    backoff_base_seconds: float = 0.2
    backoff_cap_seconds: float = 5.0
    #: jitter fraction: delay is scaled by 1 ± jitter (seeded, per-shard).
    backoff_jitter: float = 0.1
    backoff_seed: int = 0
    crash_loop_window_seconds: float = 30.0
    #: restarts tolerated inside the window before the shard is parked.
    crash_loop_budget: int = 5
    spawn_ready_timeout_seconds: float = 30.0


def backoff_delay(
    attempt: int,
    base: float,
    cap: float,
    jitter: float,
    seed: int,
    shard: int,
) -> float:
    """Deterministic exponential backoff with multiplicative jitter.

    ``attempt`` is 1-based; the raw delay is ``base * 2**(attempt-1)``
    capped at ``cap``, then scaled by a factor drawn uniformly from
    ``[1-jitter, 1+jitter]`` by a PRNG seeded with
    ``(seed, shard, attempt)`` — the same inputs always yield the same
    delay, so the restart schedule is assertable in tests while shards
    still de-synchronize from each other.
    """
    if attempt < 1:
        attempt = 1
    delay = min(cap, base * (2.0 ** (attempt - 1)))
    if jitter <= 0.0:
        return delay
    rng = random.Random(f"{seed}:{shard}:{attempt}")
    return delay * (1.0 + jitter * (2.0 * rng.random() - 1.0))


class WorkerSpawnError(RuntimeError):
    """The worker process failed to produce its ready handshake."""


class WorkerProcess:
    """Structural interface of a spawned worker (satisfied by fakes).

    Only the members the supervisor touches: the serving ``port`` from
    the handshake, the ``pid``, and the ``Popen``-shaped lifecycle
    methods.
    """

    port: int

    @property
    def pid(self) -> int:
        raise NotImplementedError

    def poll(self) -> Optional[int]:
        raise NotImplementedError

    def terminate(self) -> None:
        raise NotImplementedError

    def kill(self) -> None:
        raise NotImplementedError

    def wait(self, timeout: Optional[float] = None) -> int:
        raise NotImplementedError


class SpawnedWorker(WorkerProcess):
    """A real shard-worker subprocess plus its parsed ready handshake."""

    def __init__(self, process: "subprocess.Popen[str]", port: int) -> None:
        self._process = process
        self.port = port

    @property
    def pid(self) -> int:
        return self._process.pid

    def poll(self) -> Optional[int]:
        return self._process.poll()

    def terminate(self) -> None:
        self._process.terminate()

    def kill(self) -> None:
        self._process.kill()

    def wait(self, timeout: Optional[float] = None) -> int:
        return self._process.wait(timeout=timeout)


def default_worker_factory(
    worker_argv: Callable[[int], List[str]],
    ready_timeout_seconds: float = 30.0,
    env: Optional[Dict[str, str]] = None,
) -> Callable[[int], WorkerProcess]:
    """A factory spawning ``python -m repro.serving.shard_worker`` processes.

    ``worker_argv(shard)`` builds the full argv.  The factory blocks
    until the worker prints its one-line JSON ready handshake on stdout
    (a reader thread enforces ``ready_timeout_seconds`` — a wedged child
    is killed, not waited on forever).  ``env``, when given, *replaces*
    the inherited environment; chaos tests use it to arm in-worker
    faults via ``REPRO_FAULTS``.
    """

    def spawn(shard: int) -> WorkerProcess:
        process = subprocess.Popen(
            worker_argv(shard),
            stdout=subprocess.PIPE,
            stderr=None,  # worker diagnostics flow through to our stderr
            text=True,
            env=env,
        )
        lines: List[str] = []

        def read_handshake() -> None:
            stream = process.stdout
            if stream is not None:
                lines.append(stream.readline())

        reader = threading.Thread(target=read_handshake, daemon=True)
        reader.start()
        reader.join(ready_timeout_seconds)
        if not lines or not lines[0].strip():
            process.kill()
            code = process.poll()
            raise WorkerSpawnError(
                f"shard {shard} worker produced no ready handshake within "
                f"{ready_timeout_seconds}s (exit code {code})"
            )
        try:
            handshake = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            process.kill()
            raise WorkerSpawnError(
                f"shard {shard} worker handshake is not JSON: {lines[0]!r}"
            ) from exc
        if handshake.get("event") != "ready" or "port" not in handshake:
            process.kill()
            raise WorkerSpawnError(
                f"shard {shard} worker handshake malformed: {handshake!r}"
            )
        return SpawnedWorker(process, int(handshake["port"]))

    return spawn


def wire_health_probe(host: str, port: int, timeout: float) -> Dict[str, Any]:
    """One ``health`` RPC against a worker's serving socket."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.settimeout(timeout)
        wire.send_message(conn, {"op": "health"})
        return wire.recv_message(conn)


@dataclass
class _Handle:
    """Mutable per-shard supervision record (guarded by the supervisor lock)."""

    shard: int
    state: WorkerState = WorkerState.STOPPED
    process: Optional[WorkerProcess] = None
    port: Optional[int] = None
    restarts_total: int = 0
    probe_misses: int = 0
    backoff_until: float = 0.0
    recent_restarts: List[float] = field(default_factory=list)
    last_error: str = ""
    generation: int = 0
    breaker: Dict[str, Any] = field(default_factory=dict)


class ShardSupervisor:
    """Owns and supervises one worker process per shard."""

    def __init__(
        self,
        factory: Callable[[int], WorkerProcess],
        num_shards: int,
        config: Optional[SupervisorConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        probe: Callable[[str, int, float], Dict[str, Any]] = wire_health_probe,
        host: str = "127.0.0.1",
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.config = config or SupervisorConfig()
        self._factory = factory
        self._clock = clock
        self._probe = probe
        self._host = host
        self._lock = create_lock("supervisor._lock")
        self._handles: Dict[int, _Handle] = {  # guard: _lock
            shard: _Handle(shard) for shard in range(num_shards)
        }
        self._stop_event = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every shard (concurrently) and start the monitor loop."""
        spawners = [
            threading.Thread(target=self._spawn_shard, args=(shard,))
            for shard in range(self.num_shards)
        ]
        for thread in spawners:
            thread.start()
        for thread in spawners:
            thread.join()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop monitoring, then shut every worker down (graceful → kill)."""
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout)
        with self._lock:
            stopping: List[Tuple[Optional[WorkerProcess], Optional[int]]] = [
                (handle.process, handle.port) for handle in self._handles.values()
            ]
            for handle in self._handles.values():
                handle.state = WorkerState.STOPPED
                handle.process = None
                handle.port = None
        for process, port in stopping:
            if process is None:
                continue
            if port is not None and process.poll() is None:
                try:
                    with socket.create_connection((self._host, port), timeout=0.5) as conn:
                        conn.settimeout(0.5)
                        wire.send_message(conn, {"op": "shutdown"})
                        wire.recv_message(conn)
                except (OSError, ValueError):
                    pass
            try:
                process.terminate()
                process.wait(timeout=2.0)
            except Exception:
                process.kill()
                try:
                    process.wait(timeout=2.0)
                except Exception:
                    pass

    # ------------------------------------------------------------------
    # Monitor loop
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.config.heartbeat_interval_seconds):
            try:
                self.poll_once()
            except Exception as exc:  # supervision must outlive any probe bug
                print(f"shard-supervisor: poll error: {exc}", file=sys.stderr)

    def poll_once(self) -> None:
        """One supervision sweep (public so tests drive it deterministically)."""
        with self._lock:
            sweep = [
                (h.shard, h.state, h.process, h.port, h.backoff_until)
                for h in self._handles.values()
            ]
        now = self._clock()
        for shard, state, process, port, backoff_until in sweep:
            if self._stop_event.is_set():
                return
            if state is WorkerState.BACKOFF and now >= backoff_until:
                self._spawn_shard(shard)
            elif state is WorkerState.UP and process is not None:
                exit_code = process.poll()
                if exit_code is not None:
                    self._record_crash(shard, f"worker exited with code {exit_code}")
                elif port is not None:
                    self._probe_shard(shard, port)

    def _spawn_shard(self, shard: int) -> None:
        with self._lock:
            self._handles[shard].state = WorkerState.STARTING
        try:
            worker = self._factory(shard)
        except Exception as exc:
            self._record_crash(shard, f"spawn failed: {exc}")
            return
        with self._lock:
            handle = self._handles[shard]
            if self._stop_event.is_set():
                handle.state = WorkerState.STOPPED
            else:
                handle.state = WorkerState.UP
            handle.process = worker
            handle.port = worker.port
            handle.probe_misses = 0
            handle.last_error = ""

    def _probe_shard(self, shard: int, port: int) -> None:
        # The probe RPC runs outside the lock: it blocks up to the
        # heartbeat timeout and must not stall health()/endpoint() readers.
        error = ""
        reply: Optional[Dict[str, Any]]
        try:
            reply = self._probe(self._host, port, self.config.heartbeat_timeout_seconds)
        except (OSError, ValueError) as exc:
            reply = None
            error = f"{type(exc).__name__}: {exc}"
        hung_process: Optional[WorkerProcess] = None
        misses = 0
        with self._lock:
            handle = self._handles[shard]
            if handle.state is not WorkerState.UP or handle.port != port:
                return  # restarted or stopped while we probed
            if reply is not None:
                handle.probe_misses = 0
                handle.generation = int(reply.get("generation", handle.generation))
                breaker = reply.get("breaker")
                if isinstance(breaker, dict):
                    handle.breaker = breaker
                return
            handle.probe_misses += 1
            misses = handle.probe_misses
            if misses >= self.config.liveness_misses:
                hung_process = handle.process
        if hung_process is not None:
            try:
                hung_process.kill()
                hung_process.wait(timeout=5.0)
            except Exception:
                pass
            self._record_crash(
                shard,
                f"hung: {misses} consecutive heartbeat misses (last: {error}); killed",
            )

    def _record_crash(self, shard: int, reason: str) -> None:
        now = self._clock()
        config = self.config
        with self._lock:
            handle = self._handles[shard]
            handle.process = None
            handle.port = None
            handle.probe_misses = 0
            handle.restarts_total += 1
            handle.last_error = reason
            handle.recent_restarts = [
                t for t in handle.recent_restarts
                if now - t < config.crash_loop_window_seconds
            ]
            handle.recent_restarts.append(now)
            if len(handle.recent_restarts) > config.crash_loop_budget:
                handle.state = WorkerState.FAILED
                handle.last_error = (
                    f"crash-loop budget exhausted ({len(handle.recent_restarts)} "
                    f"restarts in {config.crash_loop_window_seconds}s); parked. "
                    f"last error: {reason}"
                )
                return
            attempt = len(handle.recent_restarts)
            handle.state = WorkerState.BACKOFF
            handle.backoff_until = now + backoff_delay(
                attempt,
                config.backoff_base_seconds,
                config.backoff_cap_seconds,
                config.backoff_jitter,
                config.backoff_seed,
                shard,
            )

    # ------------------------------------------------------------------
    # Introspection (the router's view)
    # ------------------------------------------------------------------
    def endpoint(self, shard: int) -> Optional[Tuple[str, int]]:
        """The (host, port) of a currently-UP worker, else ``None``."""
        with self._lock:
            handle = self._handles[shard]
            if handle.state is WorkerState.UP and handle.port is not None:
                return (self._host, handle.port)
            return None

    def up_shards(self) -> List[int]:
        with self._lock:
            return [
                shard
                for shard, handle in self._handles.items()
                if handle.state is WorkerState.UP
            ]

    def state_of(self, shard: int) -> WorkerState:
        with self._lock:
            return self._handles[shard].state

    def health(self) -> Dict[int, Dict[str, Any]]:
        """Per-shard supervision snapshot (feeds ``/stats`` and the bench)."""
        with self._lock:
            return {
                shard: {
                    "state": handle.state.value,
                    "alive": handle.state is WorkerState.UP,
                    "pid": handle.process.pid if handle.process is not None else None,
                    "port": handle.port,
                    "restarts_total": handle.restarts_total,
                    "probe_misses": handle.probe_misses,
                    "generation": handle.generation,
                    "breaker": dict(handle.breaker),
                    "last_error": handle.last_error,
                }
                for shard, handle in self._handles.items()
            }
