"""Cell→shard placement for the sharded serving tier.

A :class:`Placement` is a consistent-hash ring over cube cells: each
shard contributes ``vnodes`` virtual points hashed with BLAKE2b (a
*keyed, stable* hash — Python's built-in ``hash()`` is salted per
process and would place the router and its workers on different
rings), and a cell lands on the first shard clockwise from its own
hash.  Consistent hashing keeps the assignment stable when the shard
count changes (only ~1/N of cells move) and gives every cell a
deterministic *replica order* — :meth:`Placement.fallback_order` — the
router walks when the owning worker is down.

The module also hosts :func:`shard_transform`, the post-load hook a
shard worker applies to a freshly loaded cube: it slices the local
sample store down to the cells this shard owns (foreign iceberg cells
degrade to the replicated global sample) and pins the fallback policy
so a shard never raw-scans or re-certifies a cell it does not own.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.tabula import Tabula

__all__ = [
    "Placement",
    "cell_bytes",
    "shard_transform",
    "stable_hash",
]


def stable_hash(data: bytes) -> int:
    """A process-independent 64-bit hash (BLAKE2b, 8-byte digest)."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def cell_bytes(cell: object) -> bytes:
    """The canonical byte encoding of a cube cell for placement.

    Cells are tuples of ``Optional[str]`` coordinates; ``repr`` is
    stable across processes and Python versions for that shape.
    """
    return repr(cell).encode("utf-8")


class Placement:
    """Consistent-hash ring mapping cube cells onto ``num_shards`` workers."""

    def __init__(self, num_shards: int, vnodes: int = 64) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.num_shards = num_shards
        self.vnodes = vnodes
        ring: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            for vnode in range(vnodes):
                point = stable_hash(f"shard:{shard}:vnode:{vnode}".encode("utf-8"))
                ring.append((point, shard))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]

    def shard_of(self, cell: object) -> int:
        """The shard owning ``cell`` (first ring point at/after its hash)."""
        index = bisect.bisect_right(self._points, stable_hash(cell_bytes(cell)))
        return self._ring[index % len(self._ring)][1]

    def fallback_order(self, cell: object) -> List[int]:
        """Every shard in ring order starting from ``cell``'s owner.

        ``fallback_order(cell)[0] == shard_of(cell)``; the rest is the
        deterministic replica order the router tries when the owner is
        unavailable.
        """
        start = bisect.bisect_right(self._points, stable_hash(cell_bytes(cell)))
        order: List[int] = []
        seen: set = set()
        for step in range(len(self._ring)):
            shard = self._ring[(start + step) % len(self._ring)][1]
            if shard not in seen:
                seen.add(shard)
                order.append(shard)
                if len(order) == self.num_shards:
                    break
        return order

    def spread(self, cells: Iterable[object]) -> Dict[int, int]:
        """Per-shard cell counts for ``cells`` (balance diagnostics)."""
        counts: Dict[int, int] = {shard: 0 for shard in range(self.num_shards)}
        for cell in cells:
            counts[self.shard_of(cell)] += 1
        return counts


def shard_transform(
    placement: Placement, shard_id: Optional[int]
) -> Callable[[Tabula], Tabula]:
    """Post-load hook slicing a freshly loaded cube to one shard.

    Applied by :class:`~repro.serving.gateway.ServingGateway` right
    after every (re)load, so hot reload re-slices too.  Two policy pins
    ride along with the slice:

    - ``degraded_rebind=False`` — a shard must never raw-scan a cell it
      does not own back to CERTIFIED; re-certification happens only on
      the owning worker.
    - ``degraded_fallback="global"`` — a foreign cell answers from the
      replicated global sample (DOWNGRADED) instead of a raw scan, so a
      failover answer stays cheap and honestly labelled.

    ``shard_id=None`` yields the *router's* slice: it owns nothing, so
    every iceberg cell degrades to the global sample — the universal
    last rung when all workers are unreachable.
    """

    def apply(tabula: Tabula) -> Tabula:
        sliced = tabula.store.shard_slice(placement.shard_of, shard_id)
        tabula.config.degraded_rebind = False
        tabula.config.degraded_fallback = "global"
        tabula.attach_store(sliced)
        return tabula

    return apply
