"""Concurrent dashboard-serving gateway around a :class:`Tabula` cube.

The paper's value proposition is answering ``SELECT sample FROM cube``
in milliseconds for *many concurrent users*. This module turns the
in-process middleware into a serving layer with explicit robustness
semantics:

- **admission control + load shedding** — a fixed worker pool pulls
  requests from a bounded queue; once the queue is full new requests
  are fast-rejected with a typed ``SHED`` outcome instead of queueing
  unboundedly (overload degrades throughput, never memory);
- **deadlines** — each request carries a budget that propagates into
  ``Tabula.query`` (cutting off the expensive raw-scan rung) and bounds
  how long the submitting caller waits on the queue + execution;
- **circuit breaker** — the raw-table fallback is guarded by a shared
  :class:`~repro.serving.breaker.CircuitBreaker`: when the backend
  misbehaves, degraded cells are answered from the sample rungs with
  ``CIRCUIT_OPEN`` rather than stalling the whole pool;
- **hot reload** — the cube is held as an immutable generation-stamped
  snapshot; ``reload()`` verifies a new cube file with
  ``verify_cube_file`` *before* loading and atomically swaps the
  snapshot only on success, so a corrupt file rolls back with the old
  cube still serving. In-flight requests keep the generation they
  pinned at dispatch.

Every response carries the core :class:`GuaranteeStatus` plus a
:class:`ServingOutcome` so dashboards can render partial results
honestly.
"""

from __future__ import annotations

import enum
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, Iterable, List, Mapping, Optional, Union

from repro.core import spatial
from repro.core.tabula import GuaranteeStatus, QueryResult, Tabula
from repro.engine.table import Table
from repro.errors import DeadlineExceeded, TabulaError
from repro.resilience.deadline import Deadline
from repro.resilience.faults import fault_point, register_fault_point
from repro.sanitizer import create_lock
from repro.serving.breaker import BreakerConfig, CircuitBreaker

WhereClause = Mapping[str, object]

FP_EXECUTE = register_fault_point(
    "serve.request.execute",
    "worker picked a request off the admission queue, query not started "
    "(SlowIO here stalls workers → queue saturation)",
)
FP_RELOAD_SWAP = register_fault_point(
    "serve.reload.swap",
    "replacement cube verified and loaded, snapshot not yet swapped",
)


class ServingOutcome(enum.Enum):
    """How the gateway disposed of one request.

    - ``OK`` — certified answer;
    - ``DEGRADED`` — honest answer without the θ-certificate
      (``DOWNGRADED``/``VOID`` guarantee);
    - ``SHED`` — fast-rejected at admission: the queue was full;
    - ``DEADLINE_EXCEEDED`` — the budget expired before an answer;
    - ``CIRCUIT_OPEN`` — answered from the sample rungs because the
      breaker refused the raw-table fallback.
    """

    OK = "ok"
    DEGRADED = "degraded"
    SHED = "shed"
    DEADLINE_EXCEEDED = "deadline_exceeded"
    CIRCUIT_OPEN = "circuit_open"


@dataclass(frozen=True)
class ServingConfig:
    """Gateway sizing and robustness knobs.

    Attributes:
        workers: request-executor threads.
        queue_depth: bounded admission queue; a full queue sheds.
        default_deadline_seconds: budget applied to requests that do not
            carry their own (``None`` = unlimited).
        breaker: circuit-breaker parameters for the raw-scan fallback.
        stats_window: ring-buffer size for latency percentiles.
        min_service_seconds: artificial per-request service-time floor.
            Zero in production; overload benchmarks and tests raise it
            to create deterministic queue pressure.
    """

    workers: int = 4
    queue_depth: int = 32
    default_deadline_seconds: Optional[float] = None
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    stats_window: int = 1024
    min_service_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")


@dataclass(frozen=True)
class CubeSnapshot:
    """One immutable generation of the served cube."""

    generation: int
    tabula: Tabula
    path: Optional[str] = None


@dataclass
class ServingResponse:
    """One request's disposal: the answer (if any) plus both statuses."""

    outcome: ServingOutcome
    guarantee: GuaranteeStatus
    source: str
    sample: Optional[Table]
    cell: object
    generation: int
    elapsed_seconds: float
    detail: str = ""
    spatial_filtered: bool = False
    #: Durable-but-unapplied ingest batches at answer time (0 = fully
    #: fresh, or no ingest pipeline attached). A lagging maintainer
    #: keeps serving the pre-append snapshot; this makes the staleness
    #: visible per response instead of silent.
    staleness_batches: int = 0

    @property
    def answered(self) -> bool:
        """Whether ``sample`` carries a usable (possibly degraded) answer."""
        return self.sample is not None and self.outcome in (
            ServingOutcome.OK,
            ServingOutcome.DEGRADED,
            ServingOutcome.CIRCUIT_OPEN,
        )


@dataclass(frozen=True)
class ReloadResult:
    """Outcome of one :meth:`ServingGateway.reload` attempt."""

    ok: bool
    generation: int
    path: str
    error: str = ""


class _Request:
    __slots__ = ("where", "deadline", "future", "batch", "geometry")

    def __init__(
        self,
        where: Union[WhereClause, List[WhereClause]],
        deadline: Optional[Deadline],
        batch: bool = False,
        geometry: Optional[spatial.Geometry] = None,
    ) -> None:
        self.where = where  # one WHERE clause, or a list of them when batch
        self.deadline = deadline
        self.batch = batch
        self.geometry = geometry  # parsed before admission (shared by a batch)
        self.future: Future = Future()


_SENTINEL = object()


class ServingGateway:
    """Thread-pooled query gateway with shedding, deadlines and reload.

    Usage::

        gateway = ServingGateway.from_cube_file("cube.json", raw_table)
        with gateway:
            response = gateway.query({"payment_type": "cash"},
                                     deadline_seconds=0.05)

    The gateway starts its workers on construction; ``close()`` (or the
    context manager) drains them. A gateway constructed from a cube
    *file* supports :meth:`reload`.
    """

    def __init__(
        self,
        tabula: Tabula,
        config: Optional[ServingConfig] = None,
        cube_path: Union[str, Path, None] = None,
        registry: Optional[Any] = None,
        transform: Optional[Callable[[Tabula], Tabula]] = None,
    ) -> None:
        self.config = config or ServingConfig()
        self.breaker = CircuitBreaker(self.config.breaker)
        self._registry = registry
        # Applied to every (re)loaded cube before it starts serving —
        # the sharded tier slices the store to this worker's cells here
        # (see repro.serving.placement.shard_transform), and hot reload
        # re-applies it so a swapped-in cube is re-sliced too.
        self._transform = transform
        if transform is not None:
            tabula = transform(tabula)
        # Swapped atomically under the reload lock; readers pin a
        # reference without locking (immutable snapshot generations).
        self._snapshot = CubeSnapshot(  # guard-writes: _reload_lock
            generation=1,
            tabula=tabula,
            path=str(cube_path) if cube_path is not None else None,
        )
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=self.config.queue_depth)
        self._stats_lock = create_lock("gateway._stats_lock")
        self._counters: Dict[str, int] = {o.value: 0 for o in ServingOutcome}  # guard: _stats_lock
        self._errors = 0  # guard: _stats_lock
        self._requests_total = 0  # guard: _stats_lock
        self._latencies: Deque[float] = deque(maxlen=self.config.stats_window)  # guard: _stats_lock
        self._reloads = {"attempted": 0, "succeeded": 0, "failed": 0}  # guard: _stats_lock
        self._last_reload_error = ""  # guard: _stats_lock
        self._reload_lock = create_lock("gateway._reload_lock")
        # Bound once at setup (attach_ingestor) before serving starts;
        # read-only afterwards, so responses can stamp ingest staleness
        # without any lock.
        self.ingestor: Optional[Any] = None
        self._closed = False
        self._workers: List[threading.Thread] = []
        for i in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"tabula-serve-{i}", daemon=True
            )
            thread.start()
            self._workers.append(thread)

    @classmethod
    def from_cube_file(
        cls,
        path: Union[str, Path],
        table: Table,
        registry: Optional[Any] = None,
        config: Optional[ServingConfig] = None,
        transform: Optional[Callable[[Tabula], Tabula]] = None,
    ) -> "ServingGateway":
        """Boot a gateway from a persisted cube (restart recovery path)."""
        from repro.core.persistence import load_cube

        tabula = load_cube(path, table, registry=registry)
        return cls(
            tabula, config=config, cube_path=path, registry=registry, transform=transform
        )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def query(
        self,
        where: WhereClause,
        deadline_seconds: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        geometry: Optional[spatial.GeometrySpec] = None,
    ) -> ServingResponse:
        """Admit, execute and disposition one dashboard request.

        Never blocks past the request's deadline: a full queue sheds
        immediately and an expired budget abandons the slot (the worker
        double-checks the deadline before doing any work).

        ``geometry`` is parsed *before* admission, so a malformed
        viewport raises TAB701 without occupying a queue slot or
        polluting the error counters — it is a client mistake, not a
        serving failure.

        Raises:
            TabulaError: the gateway is closed, or the request itself is
                invalid (``InvalidQueryError`` from the query path).
        """
        if self._closed:
            raise TabulaError("serving gateway is closed")
        geom = spatial.parse_geometry(geometry) if geometry is not None else None
        started = time.perf_counter()
        if deadline is None:
            seconds = (
                deadline_seconds
                if deadline_seconds is not None
                else self.config.default_deadline_seconds
            )
            if seconds is not None:
                deadline = Deadline.after(seconds)
        request = _Request(where, deadline, geometry=geom)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            return self._disposed(
                ServingOutcome.SHED,
                started,
                detail=(
                    f"admission queue full ({self.config.queue_depth} waiting); "
                    "request shed"
                ),
            )
        timeout = deadline.remaining() if deadline is not None else None
        try:
            result, generation = request.future.result(timeout=timeout)
        except FutureTimeout:
            return self._disposed(
                ServingOutcome.DEADLINE_EXCEEDED,
                started,
                detail="deadline expired while queued or executing",
            )
        except DeadlineExceeded as exc:
            return self._disposed(
                ServingOutcome.DEADLINE_EXCEEDED, started, detail=str(exc)
            )
        except Exception:
            with self._stats_lock:
                self._errors += 1
                self._requests_total += 1
            raise
        return self._answered(result, generation, started)

    def query_many(
        self,
        wheres: Iterable[WhereClause],
        deadline_seconds: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        geometry: Optional[spatial.GeometrySpec] = None,
    ) -> List[ServingResponse]:
        """Admit and execute a batch of requests as one unit of work.

        The whole batch occupies a single admission-queue slot and runs
        through :meth:`Tabula.query_many` on one worker — one snapshot
        pin and one store-lock acquisition for the common certified
        path, which is what makes viewport-sized batches cheap. The
        deadline covers the batch as a whole. Admission is
        all-or-nothing: a full queue sheds every item (per-item
        admission would defeat the amortization and reorder outcomes).

        Returns one :class:`ServingResponse` per input, in order.
        Counters treat the batch as ``len(wheres)`` requests.

        ``geometry`` is one viewport shared by the whole batch, parsed
        before admission (malformed → TAB701 without counter impact).
        """
        if self._closed:
            raise TabulaError("serving gateway is closed")
        geom = spatial.parse_geometry(geometry) if geometry is not None else None
        wheres = list(wheres)
        if not wheres:
            return []
        started = time.perf_counter()
        if deadline is None:
            seconds = (
                deadline_seconds
                if deadline_seconds is not None
                else self.config.default_deadline_seconds
            )
            if seconds is not None:
                deadline = Deadline.after(seconds)
        request = _Request(wheres, deadline, batch=True, geometry=geom)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            detail = (
                f"admission queue full ({self.config.queue_depth} waiting); "
                f"batch of {len(wheres)} shed"
            )
            return self._disposed_batch(ServingOutcome.SHED, started, detail, len(wheres))
        timeout = deadline.remaining() if deadline is not None else None
        try:
            results, generation = request.future.result(timeout=timeout)
        except FutureTimeout:
            detail = "deadline expired while queued or executing"
            return self._disposed_batch(
                ServingOutcome.DEADLINE_EXCEEDED, started, detail, len(wheres)
            )
        except DeadlineExceeded as exc:
            return self._disposed_batch(
                ServingOutcome.DEADLINE_EXCEEDED, started, str(exc), len(wheres)
            )
        except Exception:
            with self._stats_lock:
                self._errors += 1
                self._requests_total += len(wheres)
            raise
        return [self._answered(result, generation, started) for result in results]

    def _answered(
        self, result: QueryResult, generation: int, started: float
    ) -> ServingResponse:
        if result.guarantee is GuaranteeStatus.CERTIFIED:
            outcome = ServingOutcome.OK
        elif result.raw_blocked:
            outcome = ServingOutcome.CIRCUIT_OPEN
        else:
            outcome = ServingOutcome.DEGRADED
        elapsed = time.perf_counter() - started
        # Stamped before taking the stats lock: staleness_batches()
        # takes the ingestor's own state lock and must not nest inside
        # _stats_lock.
        staleness = (
            self.ingestor.staleness_batches() if self.ingestor is not None else 0
        )
        with self._stats_lock:
            self._counters[outcome.value] += 1
            self._requests_total += 1
            self._latencies.append(elapsed)
        return ServingResponse(
            outcome=outcome,
            guarantee=result.guarantee,
            source=result.source,
            sample=result.sample,
            cell=result.cell,
            generation=generation,
            elapsed_seconds=elapsed,
            detail=result.detail,
            spatial_filtered=result.spatial_filtered,
            staleness_batches=staleness,
        )

    def _disposed(
        self, outcome: ServingOutcome, started: float, detail: str
    ) -> ServingResponse:
        return self._disposed_batch(outcome, started, detail, 1)[0]

    def _disposed_batch(
        self, outcome: ServingOutcome, started: float, detail: str, count: int
    ) -> List[ServingResponse]:
        """Disposition ``count`` unanswered requests as one atomic unit.

        The whole batch is counted under a single stats-lock
        acquisition: a concurrent ``stats()`` reader sees either none
        or all of a shed batch, never a torn prefix — per-item
        increments let a reader observe ``shed`` counts that no
        admission decision ever produced, which breaks the serving
        bench's accounting gate.
        """
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self._counters[outcome.value] += count
            self._requests_total += count
        generation = self._snapshot.generation
        return [
            ServingResponse(
                outcome=outcome,
                guarantee=GuaranteeStatus.VOID,
                source="",
                sample=None,
                cell=None,
                generation=generation,
                elapsed_seconds=elapsed,
                detail=detail,
            )
            for _ in range(count)
        ]

    def _worker_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is _SENTINEL:
                return
            snapshot = self._snapshot  # pin a generation for this request
            try:
                fault_point(FP_EXECUTE)
                if self.config.min_service_seconds:
                    time.sleep(self.config.min_service_seconds)
                if request.deadline is not None:
                    request.deadline.check("while queued for a worker")
                if request.batch:
                    result = snapshot.tabula.query_many(
                        request.where,
                        deadline=request.deadline,
                        raw_policy=self.breaker,
                        geometry=request.geometry,
                    )
                else:
                    result = snapshot.tabula.query(
                        request.where,
                        deadline=request.deadline,
                        raw_policy=self.breaker,
                        geometry=request.geometry,
                    )
            except Exception as exc:
                request.future.set_exception(exc)
            else:
                request.future.set_result((result, snapshot.generation))

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def reload(self, path: Union[str, Path, None] = None) -> ReloadResult:
        """Atomically swap in a (verified) replacement cube file.

        The replacement is audited with ``verify_cube_file`` and then
        fully loaded *before* the swap; any corruption or load failure
        rolls back — the previous snapshot keeps serving and the attempt
        is recorded in :meth:`stats`. In-flight requests finish on the
        generation they pinned.
        """
        from repro.core.persistence import PersistenceError, load_cube, verify_cube_file

        with self._reload_lock:
            target = str(path) if path is not None else self._snapshot.path
            if target is None:
                raise TabulaError(
                    "this gateway was not built from a cube file; pass an "
                    "explicit path to reload from"
                )
            with self._stats_lock:
                self._reloads["attempted"] += 1
            report = verify_cube_file(target)
            if not report.ok:
                failures = ", ".join(
                    f"{s.section}[{s.code}]" for s in report.failures
                )
                return self._reload_failed(
                    target, f"verification failed: {failures}"
                )
            try:
                tabula = load_cube(target, self._snapshot.tabula.table, registry=self._registry)
                if self._transform is not None:
                    tabula = self._transform(tabula)
            except (PersistenceError, TabulaError) as exc:
                return self._reload_failed(target, f"load failed: {exc}")
            fault_point(FP_RELOAD_SWAP)
            new = CubeSnapshot(
                generation=self._snapshot.generation + 1,
                tabula=tabula,
                path=target,
            )
            self._snapshot = new  # atomic reference swap; readers pin
            with self._stats_lock:
                self._reloads["succeeded"] += 1
                self._last_reload_error = ""
            return ReloadResult(ok=True, generation=new.generation, path=target)

    def _reload_failed(self, target: str, error: str) -> ReloadResult:
        with self._stats_lock:
            self._reloads["failed"] += 1
            self._last_reload_error = error
        return ReloadResult(
            ok=False,
            generation=self._snapshot.generation,
            path=target,
            error=f"reload rolled back, generation "
            f"{self._snapshot.generation} still serving: {error}",
        )

    # ------------------------------------------------------------------
    # Streaming ingest
    # ------------------------------------------------------------------
    def attach_ingestor(self, ingestor: Any) -> None:
        """Bind a :class:`~repro.ingest.stream.StreamIngestor`.

        Once attached, every answered response is stamped with the
        pipeline's current ``staleness_batches`` and :meth:`stats`
        grows an ``ingest`` block (watermarks + counters). Attach
        during setup, before traffic — the reference is read without a
        lock on the hot path.
        """
        self.ingestor = ingestor

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._snapshot.generation

    @property
    def tabula(self) -> Tabula:
        """The currently served snapshot's middleware instance."""
        return self._snapshot.tabula

    @property
    def healthy(self) -> bool:
        """Liveness: the process accepts work (even if it must shed)."""
        return not self._closed

    @property
    def ready(self) -> bool:
        """Readiness: a cube snapshot is loaded and workers are running."""
        return (
            not self._closed
            and self._snapshot is not None
            and any(t.is_alive() for t in self._workers)
        )

    def stats(self) -> Dict[str, object]:
        """Counters for the ``/stats`` endpoint and the serving bench."""
        with self._stats_lock:
            latencies = sorted(self._latencies)
            counters = dict(self._counters)
            stats: Dict[str, object] = {
                "requests_total": self._requests_total,
                "outcomes": counters,
                "errors": self._errors,
                "reloads": dict(self._reloads),
                "last_reload_error": self._last_reload_error,
            }
        stats.update(
            {
                "generation": self._snapshot.generation,
                "queue_depth": self.config.queue_depth,
                "queued_now": self._queue.qsize(),
                "workers": self.config.workers,
                "breaker": self.breaker.snapshot(),
                "latency_seconds": _percentiles(latencies),
            }
        )
        if self.ingestor is not None:
            # Outside _stats_lock: the ingestor takes its own state lock.
            stats["ingest"] = self.ingestor.stats()
        return stats

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting requests and drain the worker pool."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for thread in self._workers:
            thread.join(timeout=timeout)

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    if not latencies:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}

    def at(q: float) -> float:
        index = min(len(latencies) - 1, int(round(q * (len(latencies) - 1))))
        return latencies[index]

    return {
        "count": len(latencies),
        "p50": at(0.50),
        "p95": at(0.95),
        "p99": at(0.99),
        "max": latencies[-1],
    }
