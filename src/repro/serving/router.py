"""Health-checked shard router: retry, hedge, failover, degrade — never 500.

The router is the dashboard-facing face of the sharded tier.  It speaks
the same surface as :class:`~repro.serving.gateway.ServingGateway`
(``query`` / ``query_many`` / ``stats`` / ``reload`` / ``healthy`` /
``ready`` / ``close``), so :func:`repro.serving.http.make_server` binds
to either, and disposes every request down a strict ladder:

1. **Owner shard** — placement-hashed worker RPC, gated by a per-shard
   :class:`~repro.serving.breaker.CircuitBreaker`, with jittered-backoff
   retries on connection errors (reads are idempotent) and an optional
   *hedge*: if the owner has not answered within
   ``hedge_threshold_seconds``, a duplicate RPC races it and the first
   answer wins.
2. **Failover replicas** — the next UP shards in the cell's
   deterministic ring order.  A replica does not hold the cell's local
   sample, so its answer is the replicated global sample, honestly
   labelled ``DOWNGRADED`` by the shard-sliced store itself.
3. **Local fallback** — the router's own zero-shard cube slice (global
   sample only).  This rung cannot be down; it is why a worker kill
   yields DOWNGRADED answers, not 500s.

The monotone-degradation invariant is structural: rung 2 and 3 stores
*cannot* produce a CERTIFIED answer for a foreign iceberg cell (the
slice degraded those cells at load), so a dead shard's cells can only
move down the ladder, never silently re-certify.
"""

from __future__ import annotations

import random
import socket
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core import spatial
from repro.core.tabula import GuaranteeStatus, Tabula
from repro.errors import DeadlineExceeded, TabulaError
from repro.resilience.deadline import Deadline
from repro.resilience.faults import fault_point, register_fault_point
from repro.sanitizer import create_lock
from repro.serving import wire
from repro.serving.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.serving.gateway import ReloadResult, ServingOutcome, ServingResponse
from repro.serving.placement import Placement, shard_transform
from repro.serving.supervisor import ShardSupervisor

__all__ = ["FP_CONNECT", "RouterConfig", "ShardRouter"]

FP_CONNECT = register_fault_point(
    "router.shard.connect",
    "before the router dials a shard worker "
    "(IOFault here simulates a network partition to that shard)",
)

WhereClause = Mapping[str, object]

#: Reply-shaped reasons a shard rung yields nothing.
_REASON_BREAKER = "breaker_open"
_REASON_UNREACHABLE = "unreachable"
_REASON_DEADLINE = "deadline"


@dataclass(frozen=True)
class RouterConfig:
    """Routing policy: retries, hedging, failover, per-shard breakers."""

    #: extra attempts per shard on connection errors (reads are idempotent).
    retries: int = 1
    retry_backoff_seconds: float = 0.05
    #: jitter fraction on the retry backoff (de-synchronizes retriers).
    retry_jitter: float = 0.5
    #: hedge a slow owner call after this many seconds (None = no hedging).
    hedge_threshold_seconds: Optional[float] = None
    #: how many replica shards to try after the owner (ring order).
    failover_attempts: int = 1
    #: per-RPC socket timeout when the request carries no deadline.
    rpc_timeout_seconds: float = 2.0
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: truncate sample payloads to this many rows on the wire (None = all).
    wire_row_limit: Optional[int] = None
    #: connections kept pooled per shard.
    pool_size: int = 4
    seed: int = 0


class ShardRouter:
    """Routes dashboard queries across supervised shard workers."""

    def __init__(
        self,
        supervisor: ShardSupervisor,
        placement: Placement,
        fallback: Tabula,
        config: Optional[RouterConfig] = None,
        cube_path: Union[str, Path, None] = None,
        registry: Optional[Any] = None,
        own_supervisor: bool = True,
    ) -> None:
        """
        Args:
            fallback: the router's local cube, already passed through
                ``shard_transform(placement, None)`` — owns no cells, so
                every iceberg cell answers DOWNGRADED from the global
                sample.  This rung cannot fail while the process lives.
            own_supervisor: stop the supervisor on :meth:`close`.
        """
        self.supervisor = supervisor
        self.placement = placement
        self.config = config or RouterConfig()
        self._fallback = fallback  # guard-writes: _reload_lock
        self._cube_path = str(cube_path) if cube_path is not None else None
        self._registry = registry
        self._own_supervisor = own_supervisor
        self._breakers: Dict[int, CircuitBreaker] = {
            shard: CircuitBreaker(self.config.breaker)
            for shard in range(placement.num_shards)
        }
        self._pool_lock = create_lock("router._pool_lock")
        self._pools: Dict[int, List[socket.socket]] = {  # guard: _pool_lock
            shard: [] for shard in range(placement.num_shards)
        }
        self._stats_lock = create_lock("router._stats_lock")
        self._counters: Dict[str, int] = {o.value: 0 for o in ServingOutcome}  # guard: _stats_lock
        self._requests_total = 0  # guard: _stats_lock
        self._rpc_counters = {  # guard: _stats_lock
            "attempts": 0,
            "retries": 0,
            "hedges": 0,
            "failovers": 0,
            "fallback_local": 0,
            "errors": 0,
        }
        self._reload_lock = create_lock("router._reload_lock")
        self._generation = 1  # guard-writes: _reload_lock
        self._rng = random.Random(self.config.seed)
        self._hedge_pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * placement.num_shards),
            thread_name_prefix="router-hedge",
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Gateway-shaped surface
    # ------------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        return not self._closed

    @property
    def ready(self) -> bool:
        # The local fallback rung always answers, so a booted router is
        # ready even while workers restart (answers are just DOWNGRADED).
        return not self._closed

    @property
    def generation(self) -> int:
        return self._generation

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._hedge_pool.shutdown(wait=False)
        with self._pool_lock:
            pooled = [conn for pool in self._pools.values() for conn in pool]
            for pool in self._pools.values():
                pool.clear()
        for conn in pooled:
            _close_quietly(conn)
        if self._own_supervisor:
            self.supervisor.stop()

    def query(
        self,
        where: WhereClause,
        deadline_seconds: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        geometry: Optional[spatial.GeometrySpec] = None,
    ) -> ServingResponse:
        """Route one request down the owner → replica → local ladder.

        Raises only for caller bugs (closed router, invalid query or
        malformed geometry — mapped to HTTP 400 upstream; geometry is
        parsed *before* any RPC).  Worker death, partitions and open
        breakers all come back as typed responses; there is no failure
        mode that surfaces as an unhandled exception / HTTP 500 while
        the local fallback rung exists.
        """
        if self._closed:
            raise TabulaError("shard router is closed")
        geom = spatial.parse_geometry(geometry) if geometry is not None else None
        started = time.perf_counter()
        if deadline is None and deadline_seconds is not None:
            deadline = Deadline.after(deadline_seconds)
        cell = self._fallback.cell_for(where)  # raises InvalidQueryError → 400
        owner = self.placement.shard_of(cell)
        payload: Dict[str, Any] = {
            "op": "query",
            "where": _plain_where(where),
            "row_limit": self.config.wire_row_limit,
        }
        if geom is not None:
            payload["geometry"] = geom.to_dict()
        notes: List[str] = []

        reply, owner_reason = self._call_shard(owner, payload, deadline=deadline, hedge=True)
        response = self._response_from_reply(reply, owner, notes)
        if response is not None:
            return self._finish(response, started)

        if self.config.failover_attempts > 0:
            tried = 0
            for shard in self.placement.fallback_order(cell)[1:]:
                if tried >= self.config.failover_attempts:
                    break
                if deadline is not None and deadline.expired:
                    break
                tried += 1
                self._count_rpc("failovers")
                reply, _ = self._call_shard(shard, payload, deadline=deadline, hedge=False)
                response = self._response_from_reply(reply, shard, notes)
                if response is not None:
                    response.detail = _join_detail(response.detail, notes)
                    return self._finish(response, started)

        response = self._local_answer(where, deadline, notes, owner_reason, geometry=geom)
        return self._finish(response, started)

    def query_many(
        self,
        wheres: Iterable[WhereClause],
        deadline_seconds: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        geometry: Optional[spatial.GeometrySpec] = None,
    ) -> List[ServingResponse]:
        """Batch routing: group by owner shard, one RPC per group.

        A group whose shard cannot answer degrades to the local fallback
        *per group*, so one dead shard never poisons the whole batch.
        ``geometry`` is one viewport shared by every item (parsed before
        any RPC; malformed → 400 upstream).
        """
        if self._closed:
            raise TabulaError("shard router is closed")
        geom = spatial.parse_geometry(geometry) if geometry is not None else None
        batch = [dict(w) for w in wheres]
        if not batch:
            return []
        started = time.perf_counter()
        if deadline is None and deadline_seconds is not None:
            deadline = Deadline.after(deadline_seconds)
        cells = [self._fallback.cell_for(w) for w in batch]  # all-or-nothing 400
        groups: Dict[int, List[int]] = {}
        for index, cell in enumerate(cells):
            groups.setdefault(self.placement.shard_of(cell), []).append(index)
        results: List[Optional[ServingResponse]] = [None] * len(batch)
        for shard, indices in groups.items():
            payload: Dict[str, Any] = {
                "op": "query_many",
                "wheres": [_plain_where(batch[i]) for i in indices],
                "row_limit": self.config.wire_row_limit,
            }
            if geom is not None:
                payload["geometry"] = geom.to_dict()
            reply, reason = self._call_shard(shard, payload, deadline=deadline)
            documents = reply.get("responses") if reply is not None and reply.get("ok") else None
            if isinstance(documents, list) and len(documents) == len(indices):
                for index, document in zip(indices, documents):
                    results[index] = wire.response_from_wire(document)
            else:
                group_notes: List[str] = []
                if reply is not None and not reply.get("ok"):
                    group_notes.append(f"shard {shard}: {reply.get('error')}")
                for index in indices:
                    results[index] = self._local_answer(
                        batch[index], deadline, list(group_notes), reason, geometry=geom
                    )
        finished: List[ServingResponse] = []
        for maybe in results:
            assert maybe is not None  # every index filled above
            finished.append(self._finish(maybe, started))
        return finished

    def stats(self) -> Dict[str, Any]:
        with self._stats_lock:
            counters = dict(self._counters)
            total = self._requests_total
            rpc = dict(self._rpc_counters)
        return {
            "requests_total": total,
            "outcomes": counters,
            "errors": 0,
            "rpc": rpc,
            "num_shards": self.placement.num_shards,
            "generation": self._generation,
            "shards": self.shard_health(),
        }

    def shard_health(self) -> Dict[str, Dict[str, Any]]:
        """Supervisor view merged with the router's per-shard breakers."""
        merged: Dict[str, Dict[str, Any]] = {}
        for shard, document in self.supervisor.health().items():
            document["router_breaker"] = self._breakers[shard].snapshot()
            merged[str(shard)] = document
        return merged

    def shard_stats(self, timeout: float = 2.0) -> Dict[str, Any]:
        """Per-worker gateway stats via RPC (bench per-shard accounting)."""
        collected: Dict[str, Any] = {}
        for shard in range(self.placement.num_shards):
            reply, reason = self._call_shard(
                shard, {"op": "stats"}, deadline=Deadline.after(timeout)
            )
            if reply is not None and reply.get("ok"):
                collected[str(shard)] = reply.get("stats")
            else:
                collected[str(shard)] = {"unavailable": reason or _REASON_UNREACHABLE}
        return collected

    def ingest_watermarks(self, timeout: float = 2.0) -> Dict[str, Any]:
        """Ingest watermark fan-in across ingest-enabled workers.

        Each worker runs its own pipeline with an independent sequence
        space, so the fleet view is the per-shard watermark dicts plus
        the *worst* staleness — the number a dashboard should render as
        "how far behind is the freshest possible answer". Unreachable
        shards and shards without an ingest pipeline are reported as
        such, never silently dropped. Not folded into :meth:`stats`
        (which must stay RPC-free on the request path) — callers that
        want fleet freshness ask for it explicitly.
        """
        shards: Dict[str, Any] = {}
        worst = 0
        enabled = 0
        for shard, stats in self.shard_stats(timeout=timeout).items():
            ingest = stats.get("ingest") if isinstance(stats, dict) else None
            if not isinstance(ingest, dict):
                reason = (
                    stats.get("unavailable", "no ingest pipeline")
                    if isinstance(stats, dict)
                    else "unavailable"
                )
                shards[shard] = {"enabled": False, "detail": reason}
                continue
            enabled += 1
            marks = dict(ingest.get("watermarks", {}))
            staleness = int(marks.get("lag_batches", 0))
            shards[shard] = {
                "enabled": True,
                "watermarks": marks,
                "failure": ingest.get("failure", ""),
            }
            worst = max(worst, staleness)
        return {
            "shards": shards,
            "ingest_enabled_shards": enabled,
            "max_staleness_batches": worst,
        }

    def reload(self, path: Union[str, Path, None] = None) -> ReloadResult:
        """Fan a hot reload out to every UP worker, then re-slice locally.

        Per-worker failures are collected, not raised: a worker that is
        down reloads anyway when the supervisor restarts it (workers
        load the cube file fresh on spawn).
        """
        from repro.core.persistence import PersistenceError, load_cube

        target = str(path) if path is not None else self._cube_path
        if target is None:
            raise TabulaError(
                "this router was not built from a cube file; pass an "
                "explicit path to reload from"
            )
        errors: List[str] = []
        for shard in self.supervisor.up_shards():
            reply, reason = self._call_shard(shard, {"op": "reload", "path": target})
            if reply is None:
                errors.append(f"shard {shard}: {reason or _REASON_UNREACHABLE}")
            elif not reply.get("ok"):
                errors.append(f"shard {shard}: {reply.get('error')}")
        try:
            tabula = load_cube(target, self._fallback.table, registry=self._registry)
            sliced = shard_transform(self.placement, None)(tabula)
        except (PersistenceError, TabulaError) as exc:
            errors.append(f"router fallback: {exc}")
        else:
            with self._reload_lock:
                self._fallback = sliced
                self._generation += 1
        return ReloadResult(
            ok=not errors,
            generation=self._generation,
            path=target,
            error="; ".join(errors),
        )

    # ------------------------------------------------------------------
    # Shard RPC with breaker / retry / hedge
    # ------------------------------------------------------------------
    def _call_shard(
        self,
        shard: int,
        payload: Mapping[str, Any],
        deadline: Optional[Deadline] = None,
        hedge: bool = False,
    ) -> Tuple[Optional[Dict[str, Any]], str]:
        """One shard's reply, or ``(None, reason)`` when it cannot answer.

        Every ``allow()`` grant is resolved with exactly one
        ``record_success``/``record_failure`` (the half-open probe slot
        must never leak), and retries re-consult the breaker.
        """
        breaker = self._breakers[shard]
        attempts = 1 + max(0, self.config.retries)
        last_reason = _REASON_UNREACHABLE
        for attempt in range(attempts):
            if deadline is not None and deadline.expired:
                return None, _REASON_DEADLINE
            if not breaker.allow():
                return None, _REASON_BREAKER
            self._count_rpc("attempts")
            try:
                if hedge and self.config.hedge_threshold_seconds is not None:
                    reply = self._hedged_rpc(shard, payload, deadline=deadline)
                else:
                    reply = self._rpc_once(shard, payload, deadline=deadline)
            except (OSError, ValueError) as exc:
                breaker.record_failure()
                self._count_rpc("errors")
                last_reason = f"{_REASON_UNREACHABLE}: {type(exc).__name__}: {exc}"
                if attempt + 1 < attempts:
                    self._count_rpc("retries")
                    self._sleep_backoff(attempt, deadline)
                continue
            breaker.record_success()
            return reply, ""
        return None, last_reason

    def _sleep_backoff(self, attempt: int, deadline: Optional[Deadline]) -> None:
        delay = self.config.retry_backoff_seconds * (2.0 ** attempt)
        delay *= 1.0 + self.config.retry_jitter * self._rng.random()
        if deadline is not None:
            delay = min(delay, max(0.0, deadline.remaining() - 0.001))
        if delay > 0:
            time.sleep(delay)

    def _rpc_once(
        self,
        shard: int,
        payload: Mapping[str, Any],
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, Any]:
        timeout = self._rpc_timeout(deadline)
        conn = self._checkout(shard)
        if conn is None:
            conn = self._connect(shard, timeout)
        message = dict(payload)
        if deadline is not None:
            # Serialize the *remaining* budget at send time; the worker
            # restarts the countdown on its own monotonic clock.
            message["deadline_seconds"] = deadline.remaining()
        try:
            conn.settimeout(timeout)
            wire.send_message(conn, message)
            reply = wire.recv_message(conn)
        except BaseException:
            _close_quietly(conn)
            raise
        self._checkin(shard, conn)
        return reply

    def _hedged_rpc(
        self,
        shard: int,
        payload: Mapping[str, Any],
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, Any]:
        threshold = self.config.hedge_threshold_seconds
        assert threshold is not None
        primary = self._hedge_pool.submit(self._rpc_once, shard, payload, deadline)
        done, _ = wait([primary], timeout=threshold)
        if primary in done:
            return primary.result()
        # The owner is slow: race a duplicate against it (reads are
        # idempotent); the first clean answer wins, the loser is
        # abandoned to its socket timeout.
        self._count_rpc("hedges")
        secondary = self._hedge_pool.submit(self._rpc_once, shard, payload, deadline)
        racers = [primary, secondary]
        grace = self._rpc_timeout(deadline)
        end = time.monotonic() + grace
        while True:
            budget = max(0.0, end - time.monotonic())
            finished, pending = wait(racers, timeout=budget, return_when=FIRST_COMPLETED)
            for racer in finished:
                if racer.exception() is None:
                    return racer.result()
            if not pending or budget <= 0.0:
                break
            racers = list(pending)
        raise ConnectionError(f"hedged rpc to shard {shard}: both attempts failed")

    def _rpc_timeout(self, deadline: Optional[Deadline] = None) -> float:
        cap = self.config.rpc_timeout_seconds
        if deadline is None:
            return cap
        return max(0.001, min(cap, deadline.remaining()))

    def _connect(self, shard: int, timeout: float) -> socket.socket:
        endpoint = self.supervisor.endpoint(shard)
        if endpoint is None:
            raise ConnectionError(f"shard {shard} has no live worker")
        fault_point(FP_CONNECT)
        return socket.create_connection(endpoint, timeout=timeout)

    def _checkout(self, shard: int) -> Optional[socket.socket]:
        with self._pool_lock:
            pool = self._pools[shard]
            return pool.pop() if pool else None

    def _checkin(self, shard: int, conn: socket.socket) -> None:
        keep = False
        with self._pool_lock:
            pool = self._pools[shard]
            if not self._closed and len(pool) < self.config.pool_size:
                pool.append(conn)
                keep = True
        if not keep:
            _close_quietly(conn)

    # ------------------------------------------------------------------
    # Disposal
    # ------------------------------------------------------------------
    def _response_from_reply(
        self,
        reply: Optional[Dict[str, Any]],
        shard: int,
        notes: List[str],
    ) -> Optional[ServingResponse]:
        """Decode a single-query reply; ``None`` means "try the next rung"."""
        if reply is None:
            notes.append(f"shard {shard} unavailable")
            return None
        if not reply.get("ok"):
            if reply.get("kind") == "invalid":
                raise TabulaError(str(reply.get("error", "invalid request")))
            notes.append(f"shard {shard}: {reply.get('error', 'internal error')}")
            return None
        document = reply.get("response")
        if not isinstance(document, dict):
            notes.append(f"shard {shard}: malformed reply")
            return None
        return wire.response_from_wire(document)

    def _local_answer(
        self,
        where: WhereClause,
        deadline: Optional[Deadline],
        notes: List[str],
        owner_reason: str,
        geometry: Optional[spatial.Geometry] = None,
    ) -> ServingResponse:
        """The last rung: the router's own global-sample slice.

        The fallback store owns no cells, so an iceberg cell answers
        DOWNGRADED-global by construction — monotone degradation is a
        property of the store, not of this code path.  The geometry is
        passed through so a foreign-cell DOWNGRADED answer carries the
        *spatially filtered* global sample — a viewport query through
        this rung must never silently ignore its filter.
        """
        self._count_rpc("fallback_local")
        circuit_open = owner_reason == _REASON_BREAKER
        try:
            result = self._fallback.query(dict(where), deadline=deadline, geometry=geometry)
        except DeadlineExceeded as exc:
            return ServingResponse(
                outcome=ServingOutcome.DEADLINE_EXCEEDED,
                guarantee=GuaranteeStatus.VOID,
                source="",
                sample=None,
                cell=None,
                generation=self._generation,
                elapsed_seconds=0.0,
                detail=_join_detail(str(exc), notes),
            )
        if result.guarantee is GuaranteeStatus.CERTIFIED:
            outcome = ServingOutcome.OK
        elif circuit_open:
            outcome = ServingOutcome.CIRCUIT_OPEN
        else:
            outcome = ServingOutcome.DEGRADED
        sample = result.sample
        if self.config.wire_row_limit is not None and sample is not None:
            if sample.num_rows > self.config.wire_row_limit:
                sample = sample.head(self.config.wire_row_limit)
        return ServingResponse(
            outcome=outcome,
            guarantee=result.guarantee,
            source=result.source,
            sample=sample,
            cell=result.cell,
            generation=self._generation,
            elapsed_seconds=0.0,
            detail=_join_detail(result.detail, notes),
            spatial_filtered=result.spatial_filtered,
        )

    def _finish(self, response: ServingResponse, started: float) -> ServingResponse:
        response.elapsed_seconds = time.perf_counter() - started
        with self._stats_lock:
            self._counters[response.outcome.value] += 1
            self._requests_total += 1
        return response

    def _count_rpc(self, key: str) -> None:
        with self._stats_lock:
            self._rpc_counters[key] += 1

    def breaker_state(self, shard: int) -> BreakerState:
        return self._breakers[shard].state


def _plain_where(where: WhereClause) -> Dict[str, Any]:
    """JSON-safe copy of a WHERE mapping (numpy scalars → str)."""
    plain: Dict[str, Any] = {}
    for key, value in where.items():
        if value is None or isinstance(value, (str, int, float, bool)):
            plain[str(key)] = value
        else:
            plain[str(key)] = str(value)
    return plain


def _join_detail(detail: str, notes: List[str]) -> str:
    parts = [p for p in notes if p]
    if detail:
        parts = parts + [detail] if parts else [detail]
    return "; ".join(parts) if parts else detail


def _close_quietly(conn: socket.socket) -> None:
    try:
        conn.close()
    except OSError:
        pass
