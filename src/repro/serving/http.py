"""Stdlib HTTP surface for the serving gateway (``repro serve``).

A deliberately dependency-free JSON endpoint on
:class:`http.server.ThreadingHTTPServer` — one OS thread per connection
feeding the gateway's *bounded* admission queue, so concurrency is
capped by the gateway, not the listener.

Routes:

- ``POST /query`` — body ``{"where": {...}, "deadline_seconds": 0.05,
  "limit": 20}``; also reachable as ``GET /query?attr=value&...`` with
  reserved params ``deadline_seconds`` / ``limit`` / ``geometry`` /
  ``f`` (dashboards and smoke tests can curl it). Batched form:
  ``{"queries": [{...}, ...]}`` (a list of WHERE objects) answers the
  whole viewport in one request → ``{"results": [...]}``; the batch is
  200 unless every item was shed (503) or deadline-expired (504), since
  a dashboard can render the answered tiles either way. Viewport
  (feature-service-style) form: ``GET /query?geometry=0.1,0.1,0.5,0.5
  &f=json`` — ``geometry`` is a bbox string or a JSON geometry object
  (bbox / radius / polygon), applied to the answer rows; on POST it is
  a top-level key shared by the whole batch.

Error bodies are typed: 400s carry ``{"error": ..., "code": "TABxxx"}``
— TAB711 for a malformed request (bad JSON body, bad reserved param),
TAB701/TAB702 for geometry failures, TAB712 for any other invalid query
(e.g. unknown attributes).
Progressive variant: ``/query`` with ``progressive=1`` (GET param or
POST body key) answers as a Server-Sent-Events stream — the immediate
sample-rung answer first, refinement frames while the ingest maintainer
catches up, and a final frame equal to the non-progressive answer;
guarantee transitions are monotone (see
:mod:`repro.ingest.progressive`).

- ``POST /ingest`` — body ``{"rows": {col: [...]}, "seed": 7}`` feeds
  the attached streaming-ingest pipeline. 200 when accepted (body
  carries ``seq`` and whether it is fsync-durable yet); 503 with a
  ``Retry-After`` header on typed backpressure (the bounded queue is
  full — nothing was buffered); 503 without ``Retry-After`` when the
  pipeline is closed or failed. 400/TAB713 when the backend has no
  ingest pipeline attached.
- ``GET /healthz`` — liveness (200 while the process accepts work).
- ``GET /readyz`` — readiness (cube snapshot loaded, workers alive);
  with an attached ingest pipeline the body carries its watermarks
  (``durable_seq`` / ``applied_seq``) and health.
- ``GET /stats`` — counters, breaker state, latency percentiles; plus
  the ``ingest`` block (watermarks, queue bounds, counters) when a
  pipeline is attached.
- ``POST /reload`` — hot-swap the cube file (body ``{"path": ...}``
  optional); a corrupt replacement rolls back and reports 409.

Status mapping: answered requests (``OK`` / ``DEGRADED`` /
``CIRCUIT_OPEN``) are 200 — degradation is carried in the body, the
dashboard still renders; ``SHED`` is 503 with ``Retry-After``;
``DEADLINE_EXCEEDED`` is 504; malformed requests are 400.
"""

from __future__ import annotations

import json
import random
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Protocol, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import TabulaError
from repro.serving.gateway import ReloadResult, ServingOutcome, ServingResponse

_STATUS = {
    ServingOutcome.OK: 200,
    ServingOutcome.DEGRADED: 200,
    ServingOutcome.CIRCUIT_OPEN: 200,
    ServingOutcome.SHED: 503,
    ServingOutcome.DEADLINE_EXCEEDED: 504,
}

_RESERVED_PARAMS = ("deadline_seconds", "limit", "geometry", "f", "progressive")

# TAB71x — HTTP request error codes.  Geometry failures keep their core
# codes (TAB701 malformed geometry, TAB702 table not spatial).
TAB711_MALFORMED_REQUEST = "TAB711"
TAB712_INVALID_QUERY = "TAB712"
TAB713_INGEST_UNAVAILABLE = "TAB713"

#: SHED ``Retry-After`` is drawn uniformly from [_RETRY_AFTER_MIN,
#: _RETRY_AFTER_MIN + _RETRY_AFTER_SPAN) seconds.  A fixed value would
#: re-synchronize every shed dashboard client onto the same second and
#: re-stampede the queue; the jitter spreads the retry wave.
_RETRY_AFTER_MIN = 1
_RETRY_AFTER_SPAN = 3


def _retry_after() -> int:
    return _RETRY_AFTER_MIN + random.randrange(_RETRY_AFTER_SPAN)


class ServingBackend(Protocol):
    """What the HTTP surface needs from a gateway-shaped object.

    Satisfied structurally by both :class:`ServingGateway` (one process,
    one cube) and :class:`~repro.serving.router.ShardRouter` (the
    sharded tier) — ``repro serve`` binds whichever the flags built.
    """

    @property
    def healthy(self) -> bool: ...

    @property
    def ready(self) -> bool: ...

    def query(
        self,
        where: Mapping[str, object],
        deadline_seconds: Optional[float] = None,
        geometry: Optional[Any] = None,
    ) -> ServingResponse: ...

    def query_many(
        self,
        wheres: List[Mapping[str, object]],
        deadline_seconds: Optional[float] = None,
        geometry: Optional[Any] = None,
    ) -> List[ServingResponse]: ...

    def stats(self) -> Dict[str, Any]: ...

    def reload(self, path: Optional[str] = None) -> ReloadResult: ...

    def close(self) -> None: ...


def response_to_json(response: ServingResponse, limit: int = 20) -> Dict[str, object]:
    """Wire shape of one gateway response (rows capped at ``limit``)."""
    rows: Optional[Dict[str, List[object]]] = None
    num_rows = 0
    if response.sample is not None:
        num_rows = response.sample.num_rows
        data = response.sample.to_pydict()
        rows = {name: values[:limit] for name, values in data.items()}
    return {
        "outcome": response.outcome.value,
        "guarantee": response.guarantee.name,
        "source": response.source,
        "cell": list(response.cell) if response.cell is not None else None,
        "generation": response.generation,
        "elapsed_seconds": response.elapsed_seconds,
        "detail": response.detail,
        "num_rows": num_rows,
        "rows": rows,
        "spatial_filtered": response.spatial_filtered,
        "staleness_batches": response.staleness_batches,
    }


def _rows_from_json(columns: Dict[str, list], backend: Any) -> Any:
    """Build an ingest batch table typed to match the served schema.

    Column order follows the served table's schema when the names
    match, so a JSON object (unordered by nature) never fails the
    pipeline's ordered-schema check on ordering alone; a genuinely
    wrong column *set* is left as-is for ``submit`` to reject with its
    typed error.
    """
    from repro.engine.table import Table

    tabula = getattr(backend, "tabula", None)
    names = list(columns)
    types = None
    if tabula is not None:
        schema_names = list(tabula.table.column_names)
        if set(names) == set(schema_names):
            names = schema_names
        types = {
            name: tabula.table.column(name).ctype
            for name in names
            if name in tabula.table.column_names
        }
    return Table.from_pydict({name: columns[name] for name in names}, types=types)


def _parse_query_request(
    handler: "_GatewayHandler",
) -> Tuple[Any, bool, Optional[float], int, Optional[Any], bool]:
    """(where_or_batch, is_batch, deadline_seconds, limit, geometry,
    progressive)."""
    if handler.command == "POST":
        length = int(handler.headers.get("Content-Length") or 0)
        body = json.loads(handler.rfile.read(length) or b"{}")
        if not isinstance(body, dict):
            raise ValueError("body must be a JSON object")
        deadline = body.get("deadline_seconds")
        limit = int(body.get("limit", 20))
        geometry = body.get("geometry")  # shared by the whole batch
        progressive = bool(body.get("progressive", False))
        if "queries" in body:
            queries = body["queries"]
            if not isinstance(queries, list) or not all(
                isinstance(q, dict) for q in queries
            ):
                raise ValueError("'queries' must be a list of 'where' objects")
            if progressive:
                raise ValueError("progressive mode takes a single 'where', not 'queries'")
            return queries, True, deadline, limit, geometry, False
        if not isinstance(body.get("where", {}), dict):
            raise ValueError("body must be a JSON object with a 'where' object")
        return body.get("where", {}), False, deadline, limit, geometry, progressive
    params = dict(parse_qsl(urlsplit(handler.path).query))
    reserved = {name: params.pop(name, None) for name in _RESERVED_PARAMS}
    deadline = reserved["deadline_seconds"]
    limit = int(reserved["limit"] or 20)
    geometry = _parse_geometry_param(reserved["geometry"])
    fmt = reserved["f"]
    if fmt is not None and fmt != "json":
        raise ValueError(f"unsupported response format f={fmt!r} (only 'json')")
    progressive = (reserved["progressive"] or "").lower() in ("1", "true", "yes")
    return (
        params,
        False,
        (float(deadline) if deadline is not None else None),
        limit,
        geometry,
        progressive,
    )


def _parse_geometry_param(value: Optional[str]) -> Optional[Any]:
    """Decode the GET ``geometry`` param: bbox string or JSON object."""
    if value is None:
        return None
    text = value.strip()
    if text.startswith("{"):
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"geometry param is not valid JSON: {exc}") from None
    return text  # "xmin,ymin,xmax,ymax" — parsed by the geometry layer


class _GatewayHandler(BaseHTTPRequestHandler):
    gateway: ServingBackend  # bound by make_server
    quiet = True
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt: str, *args: object) -> None:  # pragma: no cover - noise control
        if not self.quiet:
            super().log_message(fmt, *args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        retry_after: Optional[int] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:
        route = urlsplit(self.path).path
        if route == "/healthz":
            ok = self.gateway.healthy
            self._send_json(200 if ok else 503, {"ok": ok})
        elif route == "/readyz":
            ok = self.gateway.ready
            payload: Dict[str, object] = {"ok": ok}
            shards = self._shard_health()
            if shards is not None:
                payload["shards"] = shards
            ingestor = getattr(self.gateway, "ingestor", None)
            if ingestor is not None:
                # Readiness is *serving* readiness: a lagging maintainer
                # does not fail the probe (answers stay servable from
                # the pre-append snapshot), but the watermarks make the
                # lag observable to operators and load balancers.
                payload["ingest"] = {
                    "healthy": ingestor.healthy,
                    "watermarks": ingestor.watermarks(),
                }
            self._send_json(200 if ok else 503, payload)
        elif route == "/stats":
            # A ShardRouter already embeds "shards" in stats(); for any
            # other sharded backend, merge its health view in here too.
            stats = self.gateway.stats()
            if "shards" not in stats:
                shards = self._shard_health()
                if shards is not None:
                    stats["shards"] = shards
            self._send_json(200, stats)
        elif route == "/query":
            self._handle_query()
        else:
            self._send_json(404, {"error": f"no route {route!r}"})

    def _shard_health(self) -> Optional[Dict[str, object]]:
        """Per-shard health when the backend is sharded (duck-typed)."""
        prober = getattr(self.gateway, "shard_health", None)
        if prober is None:
            return None
        shards = prober()
        return shards if isinstance(shards, dict) else None

    def do_POST(self) -> None:
        route = urlsplit(self.path).path
        if route == "/query":
            self._handle_query()
        elif route == "/ingest":
            self._handle_ingest()
        elif route == "/reload":
            self._handle_reload()
        else:
            self._send_json(404, {"error": f"no route {route!r}"})

    def _handle_query(self) -> None:
        try:
            (
                where,
                is_batch,
                deadline_seconds,
                limit,
                geometry,
                progressive,
            ) = _parse_query_request(self)
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(
                400,
                {
                    "error": f"malformed request: {exc}",
                    "code": TAB711_MALFORMED_REQUEST,
                },
            )
            return
        if progressive:
            self._handle_progressive(where, deadline_seconds, limit, geometry)
            return
        try:
            if is_batch:
                responses = self.gateway.query_many(
                    where, deadline_seconds=deadline_seconds, geometry=geometry
                )
            else:
                response = self.gateway.query(
                    where, deadline_seconds=deadline_seconds, geometry=geometry
                )
        except TabulaError as exc:
            self._send_json(
                400,
                {
                    "error": str(exc),
                    "code": getattr(exc, "code", "") or TAB712_INVALID_QUERY,
                },
            )
            return
        if is_batch:
            outcomes = {r.outcome for r in responses}
            if responses and outcomes == {ServingOutcome.SHED}:
                status, retry_after = 503, _retry_after()
            elif responses and outcomes == {ServingOutcome.DEADLINE_EXCEEDED}:
                status, retry_after = 504, None
            else:
                status, retry_after = 200, None
            self._send_json(
                status,
                {"results": [response_to_json(r, limit=limit) for r in responses]},
                retry_after=retry_after,
            )
            return
        status = _STATUS[response.outcome]
        self._send_json(
            status,
            response_to_json(response, limit=limit),
            retry_after=_retry_after() if response.outcome is ServingOutcome.SHED else None,
        )

    def _handle_progressive(
        self,
        where: Mapping[str, object],
        deadline_seconds: Optional[float],
        limit: int,
        geometry: Optional[Any],
    ) -> None:
        """Stream one query's answers as Server-Sent Events.

        The first frame is pulled *before* any bytes go out, so an
        invalid query is still a clean 400; after that the stream is
        committed and ends with the ``final`` frame (the connection
        closes — SSE has no trailer to carry an HTTP status).
        """
        from repro.ingest.progressive import progressive_query

        frames = progressive_query(
            self.gateway,
            where,
            deadline_seconds=deadline_seconds,
            geometry=geometry,
            ingestor=getattr(self.gateway, "ingestor", None),
        )
        try:
            first = next(frames)
        except TabulaError as exc:
            self._send_json(
                400,
                {
                    "error": str(exc),
                    "code": getattr(exc, "code", "") or TAB712_INVALID_QUERY,
                },
            )
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            self._write_sse_frame(first, limit)
            for frame in frames:
                self._write_sse_frame(frame, limit)
        except (ConnectionError, OSError):
            pass  # client went away mid-stream; nothing to clean up

    def _write_sse_frame(self, frame: Any, limit: int) -> None:
        document = {
            "index": frame.index,
            "kind": frame.kind,
            "durable_seq": frame.durable_seq,
            "applied_seq": frame.applied_seq,
            "staleness_batches": frame.staleness_batches,
            "suppressed_regressions": frame.suppressed_regressions,
            "response": response_to_json(frame.response, limit=limit),
        }
        payload = json.dumps(document)
        self.wfile.write(f"event: frame\ndata: {payload}\n\n".encode("utf-8"))
        self.wfile.flush()

    def _handle_ingest(self) -> None:
        ingestor = getattr(self.gateway, "ingestor", None)
        if ingestor is None:
            self._send_json(
                400,
                {
                    "error": "this backend has no streaming-ingest pipeline "
                    "attached (start with --ingest)",
                    "code": TAB713_INGEST_UNAVAILABLE,
                },
            )
            return
        length = int(self.headers.get("Content-Length") or 0)
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict) or not isinstance(body.get("rows"), dict):
                raise ValueError("body must be {'rows': {column: [values...]}}")
            rows = _rows_from_json(body["rows"], self.gateway)
            seed = body.get("seed")
            if seed is not None:
                seed = int(seed)
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(
                400,
                {
                    "error": f"malformed request: {exc}",
                    "code": TAB711_MALFORMED_REQUEST,
                },
            )
            return
        try:
            result = ingestor.submit(
                rows,
                seed=seed,
                wait_durable=bool(body.get("wait_durable", True)),
                timeout=float(body.get("timeout", 5.0)),
            )
        except TabulaError as exc:
            self._send_json(
                400,
                {
                    "error": str(exc),
                    "code": getattr(exc, "code", "") or TAB712_INVALID_QUERY,
                },
            )
            return
        payload = {
            "outcome": result.outcome.value,
            "seq": result.seq,
            "durable": result.durable,
            "queued_rows": result.queued_rows,
            "retry_after_seconds": result.retry_after_seconds,
            "detail": result.detail,
        }
        if result.accepted:
            payload["watermarks"] = ingestor.watermarks()
            self._send_json(200, payload)
        elif result.outcome.value == "backpressure":
            # Typed backpressure: Retry-After is integral per RFC; the
            # body carries the precise hint.
            self._send_json(
                503,
                payload,
                retry_after=max(1, int(result.retry_after_seconds + 0.999)),
            )
        else:  # closed / failed pipeline — retrying here cannot help
            self._send_json(503, payload)

    def _handle_reload(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            self._send_json(
                400,
                {
                    "error": f"malformed request: {exc}",
                    "code": TAB711_MALFORMED_REQUEST,
                },
            )
            return
        try:
            result = self.gateway.reload(body.get("path"))
        except TabulaError as exc:
            self._send_json(
                400,
                {
                    "error": str(exc),
                    "code": getattr(exc, "code", "") or TAB712_INVALID_QUERY,
                },
            )
            return
        self._send_json(
            200 if result.ok else 409,
            {
                "ok": result.ok,
                "generation": result.generation,
                "path": result.path,
                "error": result.error,
            },
        )


def make_server(
    gateway: ServingBackend,
    host: str = "127.0.0.1",
    port: int = 8787,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to ``gateway``.

    Returned (not started) so callers control the lifecycle — tests run
    it on a daemon thread, the CLI calls ``serve_forever`` directly.
    """

    class Handler(_GatewayHandler):
        pass

    Handler.gateway = gateway
    Handler.quiet = quiet
    return ThreadingHTTPServer((host, port), Handler)


def serve_http(
    gateway: ServingBackend,
    host: str = "127.0.0.1",
    port: int = 8787,
    quiet: bool = False,
) -> None:
    """Blocking entry point used by ``repro serve``."""
    server = make_server(gateway, host, port, quiet=quiet)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
        gateway.close()
