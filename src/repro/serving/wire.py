"""Length-prefixed JSON framing for the router↔shard-worker protocol.

Frames are a 4-byte big-endian length followed by a UTF-8 JSON object.
The format is deliberately boring: both ends are Python, messages are
small (queries, health probes, truncated sample payloads), and a typed
frame protocol keeps the failure modes crisp — a half-written frame or
an oversized length reads as a :class:`WireError` (a
``ConnectionError`` subclass), which the router's retry/failover path
treats exactly like a dropped connection.

Tables and :class:`~repro.serving.gateway.ServingResponse` objects get
explicit codecs here so the worker can truncate sample payloads at the
wire (``row_limit``) without touching gateway semantics.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Mapping, Optional

from repro.core.tabula import GuaranteeStatus
from repro.engine.schema import ColumnType
from repro.engine.table import Table
from repro.serving.gateway import ServingOutcome, ServingResponse

__all__ = [
    "MAX_FRAME_BYTES",
    "WireError",
    "recv_message",
    "response_from_wire",
    "response_to_wire",
    "send_message",
    "table_from_wire",
    "table_to_wire",
]

#: Upper bound on one frame; a length above this is a protocol error,
#: not a huge allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class WireError(ConnectionError):
    """A malformed or oversized frame on the shard wire."""


def send_message(sock: socket.socket, message: Mapping[str, Any]) -> None:
    """Frame ``message`` as length-prefixed JSON and send it whole."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Read one frame; raises ``ConnectionError`` on EOF mid-frame."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    payload = _recv_exact(sock, length)
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from None
    if not isinstance(document, dict):
        raise WireError(f"frame is not a JSON object: {type(document).__name__}")
    return document


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"shard connection closed with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Table / response codecs
# ----------------------------------------------------------------------
def table_to_wire(
    table: Optional[Table], row_limit: Optional[int] = None
) -> Optional[Dict[str, Any]]:
    """Encode a table (optionally truncated to ``row_limit`` rows)."""
    if table is None:
        return None
    total_rows = table.num_rows
    if row_limit is not None and total_rows > row_limit:
        table = table.head(row_limit)
    return {
        "columns": table.to_pydict(),
        "types": {name: table.column(name).ctype.value for name in table.column_names},
        "total_rows": total_rows,
    }


def table_from_wire(document: Optional[Mapping[str, Any]]) -> Optional[Table]:
    if document is None:
        return None
    types = {name: ColumnType(value) for name, value in document["types"].items()}
    return Table.from_pydict(document["columns"], types=types)


def response_to_wire(
    response: ServingResponse, row_limit: Optional[int] = None
) -> Dict[str, Any]:
    cell: Any = response.cell
    return {
        "outcome": response.outcome.value,
        "guarantee": response.guarantee.value,
        "source": response.source,
        "sample": table_to_wire(response.sample, row_limit=row_limit),
        "cell": list(cell) if isinstance(cell, tuple) else cell,
        "generation": response.generation,
        "elapsed_seconds": response.elapsed_seconds,
        "detail": response.detail,
        "spatial_filtered": response.spatial_filtered,
        "staleness_batches": response.staleness_batches,
    }


def response_from_wire(document: Mapping[str, Any]) -> ServingResponse:
    cell = document.get("cell")
    return ServingResponse(
        outcome=ServingOutcome(document["outcome"]),
        guarantee=GuaranteeStatus(document["guarantee"]),
        source=str(document.get("source", "")),
        sample=table_from_wire(document.get("sample")),
        cell=tuple(cell) if isinstance(cell, list) else None,
        generation=int(document.get("generation", 0)),
        elapsed_seconds=float(document.get("elapsed_seconds", 0.0)),
        detail=str(document.get("detail", "")),
        spatial_filtered=bool(document.get("spatial_filtered", False)),
        staleness_batches=int(document.get("staleness_batches", 0)),
    )
