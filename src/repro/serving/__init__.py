"""Dashboard serving layer: a robust concurrent gateway over Tabula.

The paper's middleware answers one query at a time, in process. This
package is the production rim around it — admission control with load
shedding, per-request deadlines, a circuit breaker on the raw-table
fallback, hot cube reload — exposed as a Python API
(:class:`ServingGateway`), a stdlib HTTP endpoint
(:func:`~repro.serving.http.serve_http`) and the ``repro serve`` CLI.

On top of the single-process gateway sits the fault-tolerant *sharded
tier* (``repro serve --shards N``): :class:`Placement` consistent-hashes
cube cells across N supervised shard-worker processes
(:class:`ShardSupervisor` handles death/hang detection, exponential
backoff restarts and crash-loop parking), and :class:`ShardRouter`
fronts them with per-shard circuit breakers, retries, hedging, replica
failover and a final degradation rung — the locally replicated global
sample — so a worker kill yields ``DOWNGRADED`` answers, never a 500.
"""

from repro.resilience.deadline import Deadline
from repro.serving.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.serving.gateway import (
    CubeSnapshot,
    ReloadResult,
    ServingConfig,
    ServingGateway,
    ServingOutcome,
    ServingResponse,
)
from repro.serving.placement import Placement, shard_transform
from repro.serving.router import RouterConfig, ShardRouter
from repro.serving.supervisor import (
    ShardSupervisor,
    SupervisorConfig,
    WorkerState,
    default_worker_factory,
)

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "CubeSnapshot",
    "Deadline",
    "Placement",
    "ReloadResult",
    "RouterConfig",
    "ServingConfig",
    "ServingGateway",
    "ServingOutcome",
    "ServingResponse",
    "ShardRouter",
    "ShardSupervisor",
    "SupervisorConfig",
    "WorkerState",
    "default_worker_factory",
    "shard_transform",
]
