"""Dashboard serving layer: a robust concurrent gateway over Tabula.

The paper's middleware answers one query at a time, in process. This
package is the production rim around it — admission control with load
shedding, per-request deadlines, a circuit breaker on the raw-table
fallback, hot cube reload — exposed as a Python API
(:class:`ServingGateway`), a stdlib HTTP endpoint
(:func:`~repro.serving.http.serve_http`) and the ``repro serve`` CLI.
"""

from repro.resilience.deadline import Deadline
from repro.serving.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.serving.gateway import (
    CubeSnapshot,
    ReloadResult,
    ServingConfig,
    ServingGateway,
    ServingOutcome,
    ServingResponse,
)

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "CubeSnapshot",
    "Deadline",
    "ReloadResult",
    "ServingConfig",
    "ServingGateway",
    "ServingOutcome",
    "ServingResponse",
]
