"""Circuit breaker guarding the raw-table fallback rung.

The raw scan is the one query rung whose cost is proportional to the
backend, not the cube: a slow or failing data system turns every
degraded-cell query into a stalled worker. The breaker watches raw-scan
outcomes and, once the recent failure rate crosses a threshold, *opens*
— the gateway then answers degraded cells from the sample rungs
(``DOWNGRADED`` + ``CIRCUIT_OPEN``) instead of queueing more doomed
scans. After a cooldown it *half-opens* and lets a single probe
through; the probe's outcome decides between closing and re-opening.

```
            failure rate ≥ threshold
  CLOSED ──────────────────────────────► OPEN
    ▲                                     │ cooldown elapsed
    │ probe succeeds                      ▼
    └────────────────────────────── HALF_OPEN ──► OPEN (probe fails)
```

The clock is injectable so tests drive the cooldown deterministically;
all state transitions happen under a lock (the gateway shares one
breaker across its worker pool).
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict

from repro.sanitizer import create_lock, guarded_by


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Failure-rate + cooldown parameters.

    Attributes:
        failure_threshold: open once ``failures / window ≥`` this rate.
        window: how many recent outcomes the rate is computed over.
        min_calls: never open before this many outcomes are recorded
            (a single early failure must not trip a cold breaker).
        cooldown_seconds: how long an open breaker rejects before
            half-opening for a probe.
    """

    failure_threshold: float = 0.5
    window: int = 10
    min_calls: int = 3
    cooldown_seconds: float = 5.0

    def __post_init__(self):
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {self.min_calls}")
        if self.cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker over a sliding window.

    Implements the raw-policy protocol ``Tabula.query`` expects:
    ``allow()`` / ``record_success()`` / ``record_failure()``.
    """

    def __init__(
        self,
        config: BreakerConfig = BreakerConfig(),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self._lock = create_lock("breaker._lock")
        self._state = BreakerState.CLOSED  # guard: _lock
        self._outcomes: Deque[bool] = deque(maxlen=config.window)  # guard: _lock
        self._opened_at = 0.0  # guard: _lock
        self._probe_in_flight = False  # guard: _lock
        self._opens = 0  # guard: _lock
        self._rejected = 0  # guard: _lock

    # -- raw-policy protocol -------------------------------------------
    def allow(self) -> bool:
        """Whether the guarded call may proceed right now.

        In ``HALF_OPEN`` only one caller wins the probe slot; everyone
        else is rejected until the probe reports back.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if self._clock() - self._opened_at >= self.config.cooldown_seconds:
                    self._state = BreakerState.HALF_OPEN
                    self._probe_in_flight = False
                else:
                    self._rejected += 1
                    return False
            # HALF_OPEN: hand out exactly one probe.
            if self._probe_in_flight:
                self._rejected += 1
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self._outcomes.clear()
                self._probe_in_flight = False
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
                return
            self._outcomes.append(False)
            if len(self._outcomes) >= self.config.min_calls:
                failures = sum(1 for ok in self._outcomes if not ok)
                if failures / len(self._outcomes) >= self.config.failure_threshold:
                    self._trip()

    # -- introspection -------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            # An expired cooldown reads as HALF_OPEN even before the
            # next allow() call performs the transition.
            if (
                self._state is BreakerState.OPEN
                and self._clock() - self._opened_at >= self.config.cooldown_seconds
            ):
                return BreakerState.HALF_OPEN
            return self._state

    def snapshot(self) -> Dict[str, object]:
        """Stats-endpoint view of the breaker."""
        with self._lock:
            failures = sum(1 for ok in self._outcomes if not ok)
            return {
                "state": self._state.value,
                "window_calls": len(self._outcomes),
                "window_failures": failures,
                "opens_total": self._opens,
                "rejected_total": self._rejected,
            }

    # -- internal ------------------------------------------------------
    @guarded_by("_lock")
    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._opens += 1
        self._probe_in_flight = False
        self._outcomes.clear()
