"""Shard-worker entrypoint: one :class:`ServingGateway` over one cube shard.

Run as ``python -m repro.serving.shard_worker`` — this is the argv the
supervisor spawns.  The worker loads the full cube file, applies
:func:`~repro.serving.placement.shard_transform` so its store holds only
the cells it owns (global sample replicated, foreign cells degraded),
binds an ephemeral TCP port, and prints exactly one JSON handshake line
to stdout::

    {"event": "ready", "shard": 0, "pid": 12345, "port": 41234}

after which stdout stays silent (diagnostics go to stderr) and the
worker speaks the length-prefixed JSON protocol of
:mod:`repro.serving.wire`, one thread per router connection.

Chaos instrumentation: two fault points (armed cross-process via
``REPRO_FAULTS`` — :func:`repro.resilience.faults.arm_from_env`) let
tests hang a worker mid-request or make it miss heartbeats, and an
:class:`~repro.resilience.faults.InjectedCrash` anywhere in a handler
takes the whole process down with ``os._exit`` — a simulated kill must
never be reduced to one dead thread.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import threading
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.maintenance import append_rows
from repro.core.tabula import Tabula
from repro.engine.io import read_csv
from repro.engine.schema import ColumnType
from repro.engine.table import Table
from repro.errors import TabulaError
from repro.ingest.stream import recover_ingest
from repro.ingest.wal import IngestWAL, WalBatch
from repro.resilience.deadline import Deadline
from repro.resilience.faults import (
    InjectedCrash,
    arm_from_env,
    fault_point,
    register_fault_point,
)
from repro.resilience.journal import MaintenanceJournal
from repro.serving import wire
from repro.serving.gateway import ServingConfig, ServingGateway
from repro.serving.placement import Placement, shard_transform

__all__ = ["FP_HANDLE", "FP_HEALTH", "ShardWorker", "WorkerIngest", "main"]

FP_HANDLE = register_fault_point(
    "shard.worker.handle",
    "request decoded on a shard worker, gateway not yet consulted "
    "(SlowIO here hangs the worker mid-request; CrashPoint kills it)",
)
FP_HEALTH = register_fault_point(
    "shard.worker.health",
    "before a shard worker answers a supervisor health probe "
    "(SlowIO here makes a live worker miss heartbeats)",
)

#: Exit code for an injected crash — distinguishable from clean exits
#: and from signal deaths in supervisor restart reasons.
CRASH_EXIT_CODE = 17


class WorkerIngest:
    """Synchronous WAL→journal ingest for one shard worker.

    Deliberately *not* the background-threaded
    :class:`~repro.ingest.stream.StreamIngestor`: the apply runs on the
    connection-handler thread, so an :class:`InjectedCrash` at any
    maintenance fault point propagates into the handler's crash path
    and takes the whole process down with ``os._exit`` — exactly the
    kill-mid-``append_rows`` a chaos test simulates. Crash safety is
    the same contract either way: the batch is WAL-durable before the
    apply starts, and the supervisor-restarted worker replays it via
    :func:`~repro.ingest.stream.recover_ingest` before serving again.
    """

    def __init__(
        self,
        tabula: Tabula,
        wal_path: Union[str, Path],
        journal_path: Union[str, Path],
    ) -> None:
        self.tabula = tabula
        self.wal = IngestWAL(wal_path)
        self.journal = MaintenanceJournal(journal_path)
        if Path(wal_path).exists():
            self._seq = self.wal.read_batches().max_seq
        else:
            self.wal.write_open(tabula.table.num_rows)
            self._seq = 0
        # A plain lock on purpose (same policy as tabula.write_lock):
        # the WAL fsync *must* happen inside it so WAL order matches
        # apply order, and the runtime sanitizer only audits
        # create_lock-managed locks for blocking calls.
        self._lock = threading.Lock()

    def ingest(self, rows: Table, seed: Optional[int] = None) -> int:
        """Durably log then journal-apply one batch; returns its seq."""
        with self._lock:
            self._seq += 1
            batch = WalBatch(
                seq=self._seq, seed=self._seq if seed is None else seed, rows=rows
            )
            self.wal.append_batches([batch])
            append_rows(self.tabula, rows, seed=batch.seed, journal=self.journal)
            return batch.seq

    def watermarks(self) -> Dict[str, int]:
        """Shape-compatible with StreamIngestor.watermarks (no lag: the
        apply is synchronous, so durable == applied here)."""
        with self._lock:
            seq = self._seq
        return {
            "submitted_seq": seq,
            "durable_seq": seq,
            "applied_seq": seq,
            "lag_batches": 0,
            "queued_batches": 0,
            "queued_rows": 0,
        }


class ShardWorker:
    """Socket server fronting one shard's gateway (thread per connection)."""

    def __init__(
        self,
        gateway: ServingGateway,
        shard_id: int,
        num_shards: int,
        host: str = "127.0.0.1",
        port: int = 0,
        ingest: Optional[WorkerIngest] = None,
    ) -> None:
        self._gateway = gateway
        self.shard_id = shard_id
        self.num_shards = num_shards
        self._ingest = ingest
        self._listener = socket.create_server((host, port))
        self.port = int(self._listener.getsockname()[1])
        self._closed = threading.Event()

    def serve_forever(self) -> None:
        """Accept router connections until :meth:`close`."""
        while not self._closed.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by a concurrent shutdown
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._gateway.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = wire.recv_message(conn)
                except (ConnectionError, OSError):
                    return
                try:
                    reply = self._handle(request)
                except InjectedCrash:
                    # A simulated kill takes the whole worker, abruptly:
                    # no reply, no cleanup — the router sees a reset
                    # connection and the supervisor sees a dead process.
                    os._exit(CRASH_EXIT_CODE)
                except TabulaError as exc:
                    reply = {"ok": False, "kind": "invalid", "error": str(exc)}
                except OSError:
                    # Injected partition: drop the connection without a
                    # reply so the router exercises its retry path.
                    return
                except Exception as exc:  # never let a handler bug kill the loop
                    reply = {
                        "ok": False,
                        "kind": "internal",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                try:
                    wire.send_message(conn, reply)
                except (ConnectionError, OSError):
                    return
                if request.get("op") == "shutdown":
                    self.close()
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "query":
            fault_point(FP_HANDLE)
            deadline = _deadline_from(request)
            response = self._gateway.query(
                dict(request.get("where") or {}),
                deadline=deadline,
                geometry=request.get("geometry"),
            )
            limit = _row_limit(request)
            return {"ok": True, "response": wire.response_to_wire(response, row_limit=limit)}
        if op == "query_many":
            fault_point(FP_HANDLE)
            deadline = _deadline_from(request)
            wheres = [dict(w) for w in request.get("wheres") or []]
            responses = self._gateway.query_many(
                wheres, deadline=deadline, geometry=request.get("geometry")
            )
            limit = _row_limit(request)
            return {
                "ok": True,
                "responses": [
                    wire.response_to_wire(r, row_limit=limit) for r in responses
                ],
            }
        if op == "health":
            # Answered inline, off the gateway's admission queue: an
            # overloaded-but-alive worker must still pass liveness.
            fault_point(FP_HEALTH)
            return {
                "ok": True,
                "shard": self.shard_id,
                "pid": os.getpid(),
                "ready": self._gateway.ready,
                "generation": self._gateway.generation,
                "breaker": self._gateway.breaker.snapshot(),
            }
        if op == "ingest":
            fault_point(FP_HANDLE)
            if self._ingest is None:
                return {
                    "ok": False,
                    "kind": "invalid",
                    "error": "this worker was started without --ingest-dir",
                }
            rows = wire.table_from_wire(request.get("rows"))
            if rows is None or rows.num_rows == 0:
                return {"ok": True, "shard": self.shard_id, "seq": 0, "rows": 0}
            seed = request.get("seed")
            seq = self._ingest.ingest(rows, None if seed is None else int(seed))
            return {
                "ok": True,
                "shard": self.shard_id,
                "seq": seq,
                "rows": rows.num_rows,
                "watermarks": self._ingest.watermarks(),
            }
        if op == "stats":
            stats = self._gateway.stats()
            if self._ingest is not None and "ingest" not in stats:
                stats["ingest"] = {"watermarks": self._ingest.watermarks(), "failure": ""}
            return {"ok": True, "shard": self.shard_id, "stats": stats}
        if op == "reload":
            result = self._gateway.reload(request.get("path"))
            return {
                "ok": result.ok,
                "generation": result.generation,
                "path": result.path,
                "error": result.error,
            }
        if op == "shutdown":
            return {"ok": True}
        return {"ok": False, "kind": "invalid", "error": f"unknown op {op!r}"}


def _deadline_from(request: Mapping[str, Any]) -> Optional[Deadline]:
    """Rebuild the router's deadline from the remaining budget it sent.

    Deadlines are monotonic-clock objects and cannot cross a process
    boundary; the router serializes ``deadline.remaining()`` at send
    time and the worker restarts the countdown here.  Network transit
    time is therefore *not* charged to the worker — the router's own
    copy of the deadline still bounds the overall request.
    """
    seconds = request.get("deadline_seconds")
    if seconds is None:
        return None
    return Deadline.after(float(seconds))


def _row_limit(request: Mapping[str, Any]) -> Optional[int]:
    limit = request.get("row_limit")
    return None if limit is None else int(limit)


def build_worker(args: argparse.Namespace) -> ShardWorker:
    with open(args.cube) as handle:
        document = json.load(handle)
    attrs = document.get("cubed_attrs", [])
    table = read_csv(args.table, types={a: ColumnType.CATEGORY for a in attrs})
    registry = None
    if args.loss_sql:
        from repro.cli import _registry_with_declaration

        registry = _registry_with_declaration(args.loss_sql)
    placement = Placement(args.num_shards, vnodes=args.vnodes)
    serving_config = ServingConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_deadline_seconds=args.deadline,
        min_service_seconds=args.min_service_seconds,
    )
    ingest: Optional[WorkerIngest] = None
    if getattr(args, "ingest_dir", None):
        from repro.core.persistence import load_cube

        ingest_dir = Path(args.ingest_dir)
        ingest_dir.mkdir(parents=True, exist_ok=True)
        wal_path = ingest_dir / f"shard{args.shard}.wal"
        journal_path = ingest_dir / f"shard{args.shard}.journal"
        tabula = load_cube(args.cube, table, registry=registry)
        # A disk-restored cube has no dry-run statistics, which the
        # ingest plan/apply path needs; rebuild them (and the store)
        # before replaying any crash-orphaned WAL batches.
        tabula.initialize()
        recover_ingest(tabula, wal_path, journal_path)
        gateway = ServingGateway(
            tabula,
            config=serving_config,
            cube_path=args.cube,
            registry=registry,
            transform=shard_transform(placement, args.shard),
        )
        ingest = WorkerIngest(gateway.tabula, wal_path, journal_path)
    else:
        gateway = ServingGateway.from_cube_file(
            args.cube,
            table,
            registry=registry,
            config=serving_config,
            transform=shard_transform(placement, args.shard),
        )
    return ShardWorker(
        gateway,
        args.shard,
        args.num_shards,
        host=args.host,
        port=args.port,
        ingest=ingest,
    )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serving.shard_worker",
        description="One supervised shard of the sharded serving tier",
    )
    parser.add_argument("--cube", required=True, help="cube file (full; sliced on load)")
    parser.add_argument("--table", required=True, help="raw table CSV")
    parser.add_argument("--shard", type=int, required=True)
    parser.add_argument("--num-shards", type=int, required=True)
    parser.add_argument("--vnodes", type=int, default=64)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--min-service-seconds", type=float, default=0.0)
    parser.add_argument("--loss-sql", default=None)
    parser.add_argument(
        "--ingest-dir",
        default=None,
        help="directory for this shard's ingest WAL + maintenance journal; "
        "enables the 'ingest' wire op (and WAL replay on restart)",
    )
    args = parser.parse_args(argv)

    # Arm after imports so every instrumented module has registered its
    # fault points (arming an unknown point is a loud error).
    arm_from_env()
    worker = build_worker(args)
    print(
        json.dumps(
            {
                "event": "ready",
                "shard": worker.shard_id,
                "pid": os.getpid(),
                "port": worker.port,
            }
        ),
        flush=True,
    )
    print(
        f"shard {worker.shard_id}/{worker.num_shards} serving on "
        f"{args.host}:{worker.port} (pid {os.getpid()})",
        file=sys.stderr,
    )
    try:
        worker.serve_forever()
    finally:
        worker.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
