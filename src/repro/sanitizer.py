"""Runtime concurrency/resource sanitizer (``REPRO_SANITIZE=1``).

The static analyzer (:mod:`repro.analysis.concurrency`) proves lock
discipline and resource lifecycles *syntactically*; this module makes
the same annotations executable. When sanitize mode is on:

- locks created through :func:`create_lock` become :class:`SanLock`
  wrappers that maintain a per-thread held stack, record every
  lock-acquisition-order edge into a global graph, and report an
  inversion the moment two locks are ever taken in both orders
  (the dynamic mirror of the static ``TAB602`` cycle check);
- :func:`guarded_by`-decorated methods assert on entry that the named
  lock is actually held (the dynamic mirror of ``TAB601``);
- ``time.sleep`` and ``os.fsync`` are patched to record a violation
  when called while the current thread holds a sanitized lock (the
  dynamic mirror of ``TAB603``);
- shared-memory segments created/attached through
  :mod:`repro.engine.shm` are accounted, so a segment created but never
  unlinked — or attached but never closed — by this process shows up
  as a leak (the dynamic mirror of ``TAB604``);
- :class:`~repro.resilience.deadline.Deadline` objects report
  themselves if they are garbage collected without ever having been
  consulted — a deadline someone created and then dropped on the floor
  (the dynamic mirror of ``TAB607``).

Violations are *recorded*, never raised inline: production behaviour
is unchanged, and the harness (the pytest ``--sanitize`` fixture, or
the atexit hook) calls :func:`report` / :func:`assert_clean` at the
end. When sanitize mode is off every hook is a cheap flag check and
:func:`create_lock` returns a plain ``threading.Lock``/``RLock``.
"""

from __future__ import annotations

import atexit
import functools
import os
import sys
import threading
import time
import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar, Union

__all__ = [
    "SanitizerError",
    "SanLock",
    "assert_clean",
    "create_lock",
    "disable",
    "enable",
    "guarded_by",
    "is_enabled",
    "report",
    "reset",
    "violations",
]

F = TypeVar("F", bound=Callable[..., Any])

_TRUTHY = {"1", "true", "yes", "on"}

_enabled: bool = os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY

# Meta-lock guarding every registry below. Always a *plain* lock: the
# sanitizer must never observe itself.
_meta = threading.Lock()

# lock-order edges: (held.name, acquired.name) -> first-seen description
_order_edges: Dict[Tuple[str, str], str] = {}
# recorded violations: (kind, detail) in discovery order
_violations: List[Tuple[str, str]] = []
# shm accounting: name -> (creating pid, origin note)
_shm_created: Dict[str, Tuple[int, str]] = {}
# attached segments: id(token) -> (pid, name)
_shm_attached: Dict[int, Tuple[int, str]] = {}
# dropped-deadline accounting feeds _violations via weakref finalizers
_deadlines_tracked = 0
_fd_baseline: Optional[int] = None

_patched: Dict[str, Callable[..., Any]] = {}

_tls = threading.local()


class SanitizerError(AssertionError):
    """Raised by :func:`assert_clean` when violations were recorded."""


def is_enabled() -> bool:
    return _enabled


def _held_stack() -> List["SanLock"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def _record(kind: str, detail: str) -> None:
    with _meta:
        _violations.append((kind, detail))


def _caller_site(depth: int = 2) -> str:
    try:
        frame = sys._getframe(depth)
        return f"{frame.f_code.co_filename}:{frame.f_lineno}"
    except Exception:  # pragma: no cover - interpreter without frames
        return "<unknown>"


# ---------------------------------------------------------------------------
# Locks
# ---------------------------------------------------------------------------


class SanLock:
    """A named lock wrapper feeding the order graph and held stack.

    Mirrors the ``threading.Lock`` interface (context manager,
    ``acquire``/``release``/``locked``) so it is a drop-in replacement
    for the locks :func:`create_lock` hands out.
    """

    def __init__(self, name: str, rlock: bool = False):
        self.name = name
        self.reentrant = rlock
        self._inner: Union[threading.Lock, "threading.RLock"] = (
            threading.RLock() if rlock else threading.Lock()
        )

    def held_by_current_thread(self) -> bool:
        return any(entry is self for entry in _held_stack())

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._note_acquired()
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        inner = self._inner
        if hasattr(inner, "locked"):
            return bool(inner.locked())
        return False  # pragma: no cover - RLock before 3.12

    def _note_acquired(self) -> None:
        stack = _held_stack()
        site = _caller_site(3)
        held_names = {entry.name for entry in stack if entry is not self}
        if held_names:
            with _meta:
                for held in held_names:
                    edge = (held, self.name)
                    if edge not in _order_edges:
                        _order_edges[edge] = site
                    reverse = (self.name, held)
                    if reverse in _order_edges:
                        _violations.append((
                            "lock-order",
                            f"inversion between {held!r} and {self.name!r}: "
                            f"{held}->{self.name} at {site}, "
                            f"{self.name}->{held} at {_order_edges[reverse]}",
                        ))
        stack.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanLock({self.name!r}, rlock={self.reentrant})"


def create_lock(
    name: str, rlock: bool = False
) -> Union[threading.Lock, "threading.RLock", SanLock]:
    """A lock for the annotated shared state called ``name``.

    Production mode returns a plain ``threading.Lock``/``RLock``;
    sanitize mode returns a :class:`SanLock` enforcing the same
    invariants the static analyzer checks.
    """
    if _enabled:
        return SanLock(name, rlock=rlock)
    return threading.RLock() if rlock else threading.Lock()


def held_sanitized_locks() -> Tuple[str, ...]:
    """Names of sanitized locks held by the current thread."""
    return tuple(entry.name for entry in _held_stack())


def guarded_by(lock_attr: str) -> Callable[[F], F]:
    """Mark a method as requiring ``self.<lock_attr>`` to be held.

    Statically, the concurrency analyzer treats the decorated body as
    running under that lock (the *caller* must hold it). Dynamically,
    sanitize mode asserts the lock really is held on entry whenever it
    is a :class:`SanLock`.
    """

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            if _enabled:
                lock = getattr(self, lock_attr, None)
                if isinstance(lock, SanLock) and not lock.held_by_current_thread():
                    _record(
                        "guard",
                        f"{type(self).__name__}.{func.__name__} entered without "
                        f"holding {lock_attr!r} (declared @guarded_by)",
                    )
            return func(self, *args, **kwargs)

        wrapper.__guarded_by__ = lock_attr  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


# ---------------------------------------------------------------------------
# Blocking-call detector
# ---------------------------------------------------------------------------


def _blocking_probe(label: str, original: Callable[..., Any]) -> Callable[..., Any]:
    @functools.wraps(original)
    def probe(*args: Any, **kwargs: Any) -> Any:
        held = held_sanitized_locks()
        if held:
            _record(
                "blocking-under-lock",
                f"{label} called at {_caller_site(2)} while holding "
                f"{', '.join(repr(h) for h in held)}",
            )
        return original(*args, **kwargs)

    return probe


def _install_patches() -> None:
    if _patched:
        return
    _patched["time.sleep"] = time.sleep
    time.sleep = _blocking_probe("time.sleep", time.sleep)  # type: ignore[assignment]
    _patched["os.fsync"] = os.fsync
    os.fsync = _blocking_probe("os.fsync", os.fsync)  # type: ignore[assignment]


def _remove_patches() -> None:
    if not _patched:
        return
    time.sleep = _patched.pop("time.sleep")  # type: ignore[assignment]
    os.fsync = _patched.pop("os.fsync")  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Shared-memory accounting (fed by repro.engine.shm)
# ---------------------------------------------------------------------------


def note_shm_created(name: str, origin: str = "") -> None:
    if not _enabled:
        return
    with _meta:
        _shm_created[name] = (os.getpid(), origin or _caller_site(2))


def note_shm_unlinked(name: str) -> None:
    if not _enabled:
        return
    with _meta:
        _shm_created.pop(name, None)


def note_shm_attached(token: object, name: str) -> None:
    if not _enabled:
        return
    with _meta:
        _shm_attached[id(token)] = (os.getpid(), name)


def note_shm_detached(token: object) -> None:
    if not _enabled:
        return
    with _meta:
        _shm_attached.pop(id(token), None)


def _shm_leaks() -> Dict[str, List[str]]:
    """Live segments/attaches created by *this* process (fork-safe)."""
    pid = os.getpid()
    with _meta:
        created = [
            f"{name} (created at {origin})"
            for name, (owner, origin) in _shm_created.items()
            if owner == pid
        ]
        attached = [
            f"{name} (attached, never closed)"
            for _, (owner, name) in _shm_attached.items()
            if owner == pid
        ]
    return {"created_not_unlinked": created, "attached_not_closed": attached}


# ---------------------------------------------------------------------------
# Deadline drop accounting (fed by repro.resilience.deadline)
# ---------------------------------------------------------------------------


def track_deadline(deadline: object) -> Optional[List[bool]]:
    """Register a Deadline; returns the consulted-flag box, or ``None``.

    The box is a one-element list the Deadline flips to ``True`` the
    first time anyone consults it (``remaining``/``expired``/``check``).
    A finalizer reports deadlines that die unconsulted — created at the
    edge and then dropped before reaching the code they were meant to
    bound.
    """
    global _deadlines_tracked
    if not _enabled:
        return None
    box = [False]
    site = _caller_site(3)
    with _meta:
        _deadlines_tracked += 1

    def finalize() -> None:
        if not box[0]:
            _record("dropped-deadline", f"Deadline created at {site} was never consulted")

    try:
        weakref.finalize(deadline, finalize)
    except TypeError:  # pragma: no cover - non-weakrefable caller
        return None
    return box


# ---------------------------------------------------------------------------
# Session control & reporting
# ---------------------------------------------------------------------------


def enable() -> None:
    """Turn sanitize mode on for this process (idempotent)."""
    global _enabled, _fd_baseline
    if _enabled and _patched:
        return
    _enabled = True
    if _fd_baseline is None:
        _fd_baseline = _open_fd_count()
    _install_patches()


def disable() -> None:
    """Turn sanitize mode off and unpatch (state is kept for report())."""
    global _enabled
    _enabled = False
    _remove_patches()


def reset() -> None:
    """Drop all recorded state (tests isolate themselves with this)."""
    global _deadlines_tracked, _fd_baseline
    with _meta:
        _order_edges.clear()
        _violations.clear()
        _shm_created.clear()
        _shm_attached.clear()
        _deadlines_tracked = 0
    _fd_baseline = _open_fd_count() if _enabled else None


def violations() -> List[Tuple[str, str]]:
    with _meta:
        return list(_violations)


def _open_fd_count() -> Optional[int]:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-procfs platform
        return None


def report() -> Dict[str, object]:
    """Everything the sanitizer observed, ready for assertion/printing.

    ``fd_delta`` is informational only (test frameworks legitimately
    open sockets/pipes); :func:`assert_clean` does not gate on it.
    """
    leaks = _shm_leaks()
    fd_now = _open_fd_count()
    with _meta:
        return {
            "enabled": _enabled,
            "violations": list(_violations),
            "lock_order_edges": {f"{a}->{b}": s for (a, b), s in _order_edges.items()},
            "shm_leaks": leaks,
            "deadlines_tracked": _deadlines_tracked,
            "fd_delta": (
                fd_now - _fd_baseline
                if fd_now is not None and _fd_baseline is not None
                else None
            ),
        }


def assert_clean(snapshot: Optional[Dict[str, object]] = None) -> None:
    """Raise :class:`SanitizerError` listing every recorded violation."""
    snap = snapshot if snapshot is not None else report()
    problems: List[str] = [
        f"[{kind}] {detail}" for kind, detail in snap.get("violations", [])  # type: ignore[union-attr]
    ]
    leaks = snap.get("shm_leaks", {})
    if isinstance(leaks, dict):
        for bucket, entries in leaks.items():
            for entry in entries:
                problems.append(f"[shm-leak:{bucket}] {entry}")
    if problems:
        raise SanitizerError(
            "sanitizer recorded %d problem(s):\n  %s"
            % (len(problems), "\n  ".join(problems))
        )


def _atexit_report() -> None:  # pragma: no cover - exercised via subprocess
    if not _enabled:
        return
    snap = report()
    try:
        assert_clean(snap)
    except SanitizerError as exc:
        print(f"REPRO_SANITIZE: {exc}", file=sys.stderr)


atexit.register(_atexit_report)

if _enabled:  # pragma: no cover - env-driven production path
    enable()
