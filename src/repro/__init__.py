"""Tabula — a materialized sampling cube middleware (ICDE 2020 reproduction).

Reproduction of Yu & Sarwat, "Turbocharging Geospatial Visualization
Dashboards via a Materialized Sampling Cube Approach", ICDE 2020.

Quickstart::

    from repro import Tabula, TabulaConfig, MeanLoss
    from repro.data import generate_nyctaxi

    rides = generate_nyctaxi(num_rows=50_000, seed=7)
    config = TabulaConfig(
        cubed_attrs=("passenger_count", "payment_type", "rate_code"),
        threshold=0.10,
        loss=MeanLoss("fare_amount"),
    )
    tabula = Tabula(rides, config)
    tabula.initialize()
    answer = tabula.query({"payment_type": "cash", "passenger_count": 1})
    print(answer.source, answer.sample.num_rows)

The SQL surface of Section II is available through
:class:`repro.engine.sql.SQLSession`.
"""

from repro.core.loss import (
    CombinedLoss,
    HeatmapLoss,
    HistogramLoss,
    LossFunction,
    LossRegistry,
    MeanLoss,
    RegressionLoss,
    StdDevLoss,
)
from repro.core.guarantee import GuaranteeReport, verify_cube
from repro.core.maintenance import MaintenanceReport, append_rows
from repro.core.persistence import load_cube, save_cube
from repro.core.sampling import SamplingResult, greedy_sample
from repro.core.tabula import (
    InitializationReport,
    QueryResult,
    Tabula,
    TabulaConfig,
)
from repro.engine import Catalog, Table
from repro.engine.sql import SQLSession

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "CombinedLoss",
    "GuaranteeReport",
    "HeatmapLoss",
    "HistogramLoss",
    "InitializationReport",
    "LossFunction",
    "LossRegistry",
    "MeanLoss",
    "QueryResult",
    "RegressionLoss",
    "SQLSession",
    "MaintenanceReport",
    "SamplingResult",
    "StdDevLoss",
    "Table",
    "Tabula",
    "TabulaConfig",
    "append_rows",
    "verify_cube",
    "greedy_sample",
    "load_cube",
    "save_cube",
]
