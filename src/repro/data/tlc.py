"""Loader for real NYC TLC trip-record CSV exports.

Users holding the actual dataset the paper evaluates on (the NYC Taxi &
Limousine Commission trip records [13]) can point Tabula at it directly:
this module maps the TLC yellow-cab export schema onto the column names
the rest of this repository uses, derives the categorical cube
attributes the paper's experiments filter on (weekdays from timestamps,
labeled payment/rate codes), and normalizes pickup coordinates into the
unit square so heat-map thresholds are comparable with the synthetic
generator's.
"""

from __future__ import annotations

import time
import urllib.error
import urllib.request
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.engine.column import Column
from repro.engine.io import read_csv
from repro.engine.schema import ColumnType
from repro.engine.table import Table
from repro.errors import SchemaError, TabulaError
from repro.resilience.atomic import atomic_write_bytes

#: TLC export column -> our column, for the fields used in this repo.
TLC_COLUMN_MAP: Dict[str, str] = {
    "vendor_name": "vendor_name",
    "VendorID": "vendor_name",
    "Trip_Pickup_DateTime": "pickup_datetime",
    "tpep_pickup_datetime": "pickup_datetime",
    "Trip_Dropoff_DateTime": "dropoff_datetime",
    "tpep_dropoff_datetime": "dropoff_datetime",
    "Passenger_Count": "passenger_count",
    "passenger_count": "passenger_count",
    "Payment_Type": "payment_type",
    "payment_type": "payment_type",
    "Rate_Code": "rate_code",
    "RatecodeID": "rate_code",
    "store_and_forward": "store_and_forward",
    "store_and_fwd_flag": "store_and_forward",
    "Start_Lon": "pickup_lon",
    "pickup_longitude": "pickup_lon",
    "Start_Lat": "pickup_lat",
    "pickup_latitude": "pickup_lat",
    "Trip_Distance": "trip_distance",
    "trip_distance": "trip_distance",
    "Fare_Amt": "fare_amount",
    "fare_amount": "fare_amount",
    "Tip_Amt": "tip_amount",
    "tip_amount": "tip_amount",
}

_WEEKDAYS = ("mon", "tue", "wed", "thu", "fri", "sat", "sun")

#: Numeric payment/rate codes in later TLC exports, mapped to labels.
_PAYMENT_CODES = {"1": "credit", "2": "cash", "3": "no_charge", "4": "dispute"}
_RATE_CODES = {"1": "standard", "2": "jfk", "3": "newark", "5": "negotiated"}

#: NYC bounding box used to normalize coordinates to the unit square.
NYC_BBOX: Tuple[float, float, float, float] = (-74.3, -73.7, 40.5, 41.0)


class FetchError(TabulaError):
    """Downloading a TLC export failed after every retry attempt."""

    def __init__(self, message: str, *, url: str = "", attempts: int = 0):
        super().__init__(message)
        self.url = url
        self.attempts = attempts


@dataclass(frozen=True)
class FetchReport:
    """How one :func:`fetch_tlc_csv` download went."""

    url: str
    destination: str
    bytes_written: int
    attempts: int
    #: seconds slept between attempts (one entry per retry).
    backoffs: Tuple[float, ...]


def fetch_tlc_csv(
    url: str,
    destination: Union[str, Path],
    *,
    timeout: float = 30.0,
    max_attempts: int = 5,
    base_delay: float = 0.5,
    max_delay: float = 8.0,
    jitter: float = 0.25,
    transport: Optional[Callable[[str, float], bytes]] = None,
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[np.random.Generator] = None,
) -> FetchReport:
    """Download a TLC CSV export with retry, backoff and a timeout.

    TLC's public endpoints throttle and drop connections routinely, so a
    bare ``urlretrieve`` makes dataset bootstrap flaky. This fetcher
    retries transient transport failures (``OSError``/``URLError``,
    which includes timeouts and connection resets) with capped
    exponential backoff plus deterministic jitter, enforces a
    per-request timeout, and lands the bytes via an atomic write — a
    failed or interrupted download never leaves a truncated file at
    ``destination``, and a previously downloaded good file survives.

    Args:
        timeout: per-request timeout in seconds.
        max_attempts: total tries before giving up with
            :class:`FetchError`.
        base_delay / max_delay: the retry after attempt ``k`` (1-based)
            waits ``min(max_delay, base_delay * 2**(k-1))`` seconds,
            scaled by jitter.
        jitter: each delay is multiplied by ``1 + jitter * u`` with
            ``u ~ U[0, 1)`` drawn from ``rng`` (seeded from the URL by
            default, so test runs are reproducible).
        transport: override for testing — ``transport(url, timeout)``
            returning the payload bytes.
        sleep: override for testing the backoff schedule.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    if transport is None:
        transport = _http_get
    if rng is None:
        rng = np.random.default_rng(zlib.crc32(url.encode("utf-8")))
    backoffs = []
    last_error: Optional[Exception] = None
    for attempt in range(1, max_attempts + 1):
        try:
            payload = transport(url, timeout)
        except (OSError, urllib.error.URLError) as exc:
            last_error = exc
            if attempt == max_attempts:
                break
            delay = min(max_delay, base_delay * 2 ** (attempt - 1))
            delay *= 1.0 + jitter * float(rng.random())
            backoffs.append(delay)
            sleep(delay)
            continue
        atomic_write_bytes(destination, payload)
        return FetchReport(
            url=url,
            destination=str(destination),
            bytes_written=len(payload),
            attempts=attempt,
            backoffs=tuple(backoffs),
        )
    raise FetchError(
        f"failed to fetch {url} after {max_attempts} attempts: {last_error}",
        url=url,
        attempts=max_attempts,
    )


def _http_get(url: str, timeout: float) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:  # noqa: S310
        return response.read()


@dataclass(frozen=True)
class TLCLoadReport:
    """What the loader did: rows kept and rows dropped (and why)."""

    rows_read: int
    rows_kept: int
    dropped_bad_coordinates: int


def load_tlc_csv(
    path: Union[str, Path],
    bbox: Tuple[float, float, float, float] = NYC_BBOX,
    limit: Optional[int] = None,
) -> Tuple[Table, TLCLoadReport]:
    """Load a TLC yellow-cab CSV into the repository's ride schema.

    Args:
        path: the TLC export (either the 2009-era or the tpep header
            variants).
        bbox: ``(lon_min, lon_max, lat_min, lat_max)`` used both to drop
            out-of-range GPS rows (the raw data is famously noisy) and
            to normalize coordinates into the unit square.
        limit: optional row cap after cleaning.

    Returns:
        ``(table, report)`` — the table has the same columns the
        synthetic generator produces (weekdays derived from timestamps,
        labeled payment/rate codes, ``pickup_x``/``pickup_y`` in
        [0, 1]).
    """
    raw = read_csv(path, types=_tlc_types(path))
    renames = {
        name: TLC_COLUMN_MAP[name] for name in raw.column_names if name in TLC_COLUMN_MAP
    }
    missing = {"pickup_datetime", "fare_amount"} - set(renames.values())
    if missing:
        raise SchemaError(f"{path}: not a recognized TLC export; missing {sorted(missing)}")
    table = raw.rename(renames)

    lon = table.column("pickup_lon").data.astype(float)
    lat = table.column("pickup_lat").data.astype(float)
    lon_min, lon_max, lat_min, lat_max = bbox
    keep = (lon >= lon_min) & (lon <= lon_max) & (lat >= lat_min) & (lat <= lat_max)
    dropped = int((~keep).sum())
    table = table.filter(keep)
    if limit is not None:
        table = table.head(limit)
    lon = table.column("pickup_lon").data.astype(float)
    lat = table.column("pickup_lat").data.astype(float)

    columns = [
        _label_column(table, "vendor_name"),
        Column.from_values(
            "pickup_weekday", _weekdays_of(table.column("pickup_datetime").to_list()),
            ColumnType.CATEGORY,
        ),
        _label_column(table, "passenger_count"),
        _code_column(table, "payment_type", _PAYMENT_CODES),
        _code_column(table, "rate_code", _RATE_CODES),
        _label_column(table, "store_and_forward"),
        Column.from_values(
            "dropoff_weekday", _weekdays_of(table.column("dropoff_datetime").to_list()),
            ColumnType.CATEGORY,
        ),
        Column("pickup_x", ColumnType.FLOAT64, (lon - lon_min) / (lon_max - lon_min)),
        Column("pickup_y", ColumnType.FLOAT64, (lat - lat_min) / (lat_max - lat_min)),
        Column("trip_distance", ColumnType.FLOAT64, table.column("trip_distance").data.astype(float)),
        Column("fare_amount", ColumnType.FLOAT64, table.column("fare_amount").data.astype(float)),
        Column("tip_amount", ColumnType.FLOAT64, table.column("tip_amount").data.astype(float)),
    ]
    cleaned = Table(columns)
    return cleaned, TLCLoadReport(
        rows_read=raw.num_rows, rows_kept=cleaned.num_rows, dropped_bad_coordinates=dropped
    )


def _tlc_types(path: Union[str, Path]) -> Dict[str, ColumnType]:
    """Force string-ish TLC fields to CATEGORY regardless of content."""
    with open(path) as handle:
        header = handle.readline().strip().split(",")
    categorical_targets = {
        "vendor_name", "passenger_count", "payment_type", "rate_code",
        "store_and_forward", "pickup_datetime", "dropoff_datetime",
    }
    return {
        name: ColumnType.CATEGORY
        for name in header
        if TLC_COLUMN_MAP.get(name) in categorical_targets
    }


def _label_column(table: Table, name: str) -> Column:
    """Pass a categorical column through, lower-casing labels."""
    values = [str(v).strip().lower() for v in table.column(name).to_list()]
    return Column.from_values(name, values, ColumnType.CATEGORY)


def _code_column(table: Table, name: str, codes: Dict[str, str]) -> Column:
    """Map numeric/verbose codes onto the canonical labels."""
    values = []
    for value in table.column(name).to_list():
        text = str(value).strip().lower()
        values.append(codes.get(text, text))
    return Column.from_values(name, values, ColumnType.CATEGORY)


def _weekdays_of(timestamps) -> list:
    """Derive mon..sun labels from ``YYYY-MM-DD HH:MM:SS`` strings."""
    from datetime import datetime

    labels = []
    for ts in timestamps:
        try:
            moment = datetime.fromisoformat(str(ts).strip())
        except ValueError:
            raise SchemaError(f"unparseable TLC timestamp: {ts!r}") from None
        labels.append(_WEEKDAYS[moment.weekday()])
    return labels
