"""Synthetic NYC taxi trip generator.

Schema (matching the running example and Section V):

==================  =========  =======================================
column              type       role
==================  =========  =======================================
vendor_name         CATEGORY   cube attribute 1
pickup_weekday      CATEGORY   cube attribute 2
passenger_count     CATEGORY   cube attribute 3 (1..6, as labels)
payment_type        CATEGORY   cube attribute 4 (cash/credit/dispute/no_charge)
rate_code           CATEGORY   cube attribute 5 (standard/jfk/newark/negotiated)
store_and_forward   CATEGORY   cube attribute 6 (Y/N)
dropoff_weekday     CATEGORY   cube attribute 7
pickup_x, pickup_y  FLOAT64    normalized [0, 1] pickup location
trip_distance       FLOAT64    miles
fare_amount         FLOAT64    USD
tip_amount          FLOAT64    USD (correlated with fare; ~0 for cash)
==================  =========  =======================================

The generator plants structure the experiments rely on:

- pickups cluster around a dense "Manhattan" core and two airport
  hot-spots; airport rides use the ``jfk``/``newark`` rate codes and
  longer distances, so spatial distributions *differ across cube cells*
  — which is what creates iceberg cells for the heat-map loss;
- fares follow distance with rate-code-specific pricing; tips follow
  fares for credit rides but are ≈ 0 for cash, so regression angles and
  means differ across payment populations;
- categorical marginals are skewed (few cash disputes, few 5–6
  passenger rides), producing the small populations for which a global
  sample is a poor representative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.engine.column import Column
from repro.engine.schema import ColumnType
from repro.engine.table import Table

#: The seven categorical attributes used in the paper's experiments, in
#: the order they are added as cube attributes (first 4, 5, 6, 7).
CUBE_ATTRIBUTES: Tuple[str, ...] = (
    "vendor_name",
    "pickup_weekday",
    "passenger_count",
    "payment_type",
    "rate_code",
    "store_and_forward",
    "dropoff_weekday",
)

_WEEKDAYS = ("mon", "tue", "wed", "thu", "fri", "sat", "sun")
_VENDORS = ("CMT", "VTS", "DDS")
_PAYMENTS = ("cash", "credit", "dispute", "no_charge")
_RATE_CODES = ("standard", "jfk", "newark", "negotiated")


@dataclass(frozen=True)
class NYCTaxiConfig:
    """Tunable shape parameters of the synthetic dataset."""

    num_rows: int = 100_000
    seed: int = 0
    #: (center_x, center_y, std, weight) of each pickup cluster; the
    #: defaults model midtown, downtown, and two airports.
    clusters: Tuple[Tuple[float, float, float, float], ...] = (
        (0.45, 0.55, 0.050, 0.55),   # midtown core
        (0.40, 0.40, 0.035, 0.25),   # downtown
        (0.85, 0.30, 0.015, 0.12),   # JFK-like airport
        (0.70, 0.75, 0.012, 0.08),   # LGA-like airport
    )


def generate_nyctaxi(
    num_rows: int = 100_000,
    seed: int = 0,
    config: NYCTaxiConfig = None,
) -> Table:
    """Generate a synthetic taxi-rides table.

    Args:
        num_rows: number of rides.
        seed: RNG seed; identical parameters are fully reproducible.
        config: full config; overrides ``num_rows``/``seed`` when given.
    """
    if config is None:
        config = NYCTaxiConfig(num_rows=num_rows, seed=seed)
    rng = np.random.default_rng(config.seed)
    n = config.num_rows

    # --- spatial clusters -------------------------------------------------
    weights = np.asarray([c[3] for c in config.clusters])
    weights = weights / weights.sum()
    cluster_ids = rng.choice(len(config.clusters), size=n, p=weights)
    centers = np.asarray([(c[0], c[1]) for c in config.clusters])
    stds = np.asarray([c[2] for c in config.clusters])
    pickup = centers[cluster_ids] + rng.normal(size=(n, 2)) * stds[cluster_ids, None]
    pickup = np.clip(pickup, 0.0, 1.0)
    is_airport = cluster_ids >= 2

    # --- categorical attributes -------------------------------------------
    vendor = _skewed_choice(rng, _VENDORS, (0.5, 0.4, 0.1), n)
    pickup_weekday = _weekday_choice(rng, n, weekend_boost=0.0)
    # Most rides end the day they started.
    same_day = rng.random(n) < 0.93
    dropoff_weekday_idx = np.where(
        same_day,
        _weekday_index(pickup_weekday),
        (_weekday_index(pickup_weekday) + 1) % 7,
    )
    dropoff_weekday = np.asarray(_WEEKDAYS)[dropoff_weekday_idx]
    passenger_count = _skewed_choice(
        rng, ("1", "2", "3", "4", "5", "6"),
        (0.58, 0.20, 0.09, 0.06, 0.04, 0.03), n,
    )
    # Airport rides skew credit; disputes are rare everywhere.
    payment = np.where(
        is_airport,
        _skewed_choice(rng, _PAYMENTS, (0.22, 0.72, 0.02, 0.04), n),
        _skewed_choice(rng, _PAYMENTS, (0.45, 0.50, 0.02, 0.03), n),
    )
    rate_code = np.where(
        cluster_ids == 2,
        _skewed_choice(rng, _RATE_CODES, (0.15, 0.80, 0.01, 0.04), n),
        np.where(
            cluster_ids == 3,
            _skewed_choice(rng, _RATE_CODES, (0.25, 0.05, 0.60, 0.10), n),
            _skewed_choice(rng, _RATE_CODES, (0.92, 0.03, 0.02, 0.03), n),
        ),
    )
    store_and_forward = _skewed_choice(rng, ("N", "Y"), (0.97, 0.03), n)

    # --- numeric attributes ------------------------------------------------
    base_distance = np.where(is_airport, 11.0, 2.2)
    trip_distance = rng.gamma(shape=2.2, scale=1.0, size=n) * base_distance / 2.2
    trip_distance = np.round(np.maximum(trip_distance, 0.1), 2)
    rate_multiplier = np.select(
        [rate_code == "jfk", rate_code == "newark", rate_code == "negotiated"],
        [1.45, 1.55, 1.25],
        default=1.0,
    )
    fare = 2.5 + 2.35 * trip_distance * rate_multiplier + rng.normal(0, 1.0, n)
    fare = np.round(np.maximum(fare, 2.5), 2)
    tip_rate = np.select(
        [payment == "credit", payment == "dispute"],
        [rng.normal(0.18, 0.05, n), 0.0],
        default=rng.normal(0.005, 0.004, n),
    )
    tip = np.round(np.maximum(tip_rate, 0.0) * fare, 2)

    columns = [
        Column.from_values("vendor_name", vendor.tolist(), ColumnType.CATEGORY),
        Column.from_values("pickup_weekday", pickup_weekday.tolist(), ColumnType.CATEGORY),
        Column.from_values("passenger_count", passenger_count.tolist(), ColumnType.CATEGORY),
        Column.from_values("payment_type", payment.tolist(), ColumnType.CATEGORY),
        Column.from_values("rate_code", rate_code.tolist(), ColumnType.CATEGORY),
        Column.from_values("store_and_forward", store_and_forward.tolist(), ColumnType.CATEGORY),
        Column.from_values("dropoff_weekday", dropoff_weekday.tolist(), ColumnType.CATEGORY),
        Column("pickup_x", ColumnType.FLOAT64, pickup[:, 0]),
        Column("pickup_y", ColumnType.FLOAT64, pickup[:, 1]),
        Column("trip_distance", ColumnType.FLOAT64, trip_distance),
        Column("fare_amount", ColumnType.FLOAT64, fare),
        Column("tip_amount", ColumnType.FLOAT64, tip),
    ]
    return Table(columns)


def _skewed_choice(
    rng: np.random.Generator, values: Sequence[str], probs: Sequence[float], n: int
) -> np.ndarray:
    probs = np.asarray(probs, dtype=float)
    probs = probs / probs.sum()
    return rng.choice(np.asarray(values), size=n, p=probs)


def _weekday_choice(rng: np.random.Generator, n: int, weekend_boost: float) -> np.ndarray:
    base = np.asarray([1.0, 1.0, 1.0, 1.05, 1.25, 1.15 + weekend_boost, 0.9 + weekend_boost])
    return _skewed_choice(rng, _WEEKDAYS, base, n)


def _weekday_index(values: np.ndarray) -> np.ndarray:
    lookup = {d: i for i, d in enumerate(_WEEKDAYS)}
    return np.asarray([lookup[v] for v in values])
