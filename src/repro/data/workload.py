"""Analytics workload generation (Section V).

The paper builds a full data cube on n attributes and randomly picks
100 SQL queries (cells) from it; every compared approach then runs the
same queries. :func:`generate_workload` reproduces that: each query is
an equality conjunction identifying one cube cell, sampled by choosing
a random cuboid (grouping set) and projecting a random data row onto it
— which guarantees a non-empty population, as picking cells from the
materialized cube does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.engine.cube import grouping_sets
from repro.engine.table import Table


@dataclass(frozen=True)
class QueryWorkload:
    """A fixed list of dashboard queries over cube cells."""

    attrs: Tuple[str, ...]
    queries: Tuple[Dict[str, object], ...]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, i: int) -> Dict[str, object]:
        return self.queries[i]


def generate_workload(
    table: Table,
    attrs: Sequence[str],
    num_queries: int = 100,
    seed: int = 0,
    include_all_cell: bool = True,
    distribution: str = "uniform",
    zipf_exponent: float = 1.2,
) -> QueryWorkload:
    """Randomly pick ``num_queries`` cube cells as dashboard queries.

    Args:
        table: the raw table (queries project its rows, so every query's
            population is non-empty).
        attrs: the cubed attributes.
        num_queries: workload size (the paper uses 100).
        seed: RNG seed for reproducibility across approaches.
        include_all_cell: allow the empty grouping set (whole-table
            query) among the candidates.
        distribution: ``"uniform"`` draws cells the paper's way (every
            cell equally likely, no repeats while fresh cells remain);
            ``"zipf"`` models a real dashboard session — a small set of
            hot cells is revisited with Zipf-distributed popularity and
            repeats are kept (they are what a cache-friendly middleware
            wins on).
        zipf_exponent: skew of the zipf distribution (>1).
    """
    attrs = tuple(attrs)
    table.schema.require(attrs)
    if distribution not in ("uniform", "zipf"):
        raise ValueError(f"unknown workload distribution: {distribution!r}")
    rng = np.random.default_rng(seed)
    gsets = grouping_sets(attrs)
    if not include_all_cell:
        gsets = [g for g in gsets if g]
    columns = {a: table.column(a) for a in attrs}

    def draw_query() -> Dict[str, object]:
        gset = gsets[rng.integers(len(gsets))]
        row = int(rng.integers(table.num_rows))
        return {a: columns[a].value_at(row) for a in gset}

    if distribution == "zipf":
        # Build a hot-set of distinct cells, then revisit by popularity.
        hot_size = max(1, num_queries // 4)
        hot: List[Dict[str, object]] = []
        seen_hot = set()
        attempts = 0
        while len(hot) < hot_size and attempts < hot_size * 50:
            attempts += 1
            query = draw_query()
            key = tuple(sorted(query.items()))
            if key not in seen_hot:
                seen_hot.add(key)
                hot.append(query)
        ranks = np.arange(1, len(hot) + 1, dtype=float)
        probabilities = ranks ** (-zipf_exponent)
        probabilities /= probabilities.sum()
        picks = rng.choice(len(hot), size=num_queries, p=probabilities)
        return QueryWorkload(
            attrs=attrs, queries=tuple(dict(hot[i]) for i in picks)
        )

    queries: List[Dict[str, object]] = []
    seen = set()
    # Cap the attempts so degenerate tiny tables cannot loop forever.
    max_attempts = max(num_queries * 50, 1000)
    attempts = 0
    while len(queries) < num_queries and attempts < max_attempts:
        attempts += 1
        query = draw_query()
        key = tuple(sorted(query.items()))
        if key in seen and len(seen) < _distinct_cell_budget(table, attrs):
            continue
        seen.add(key)
        queries.append(query)
    return QueryWorkload(attrs=attrs, queries=tuple(queries))


@dataclass(frozen=True)
class ViewportWorkload:
    """A fixed list of (cell query, viewport bbox) dashboard requests.

    Models map-dashboard sessions: each session anchors on a random data
    point, then pans and zooms around it for a few steps.  ``zooms[i]``
    records the zoom level of query ``i`` (0 = whole extent), so bench
    reports can break latency down by zoom.
    """

    attrs: Tuple[str, ...]
    queries: Tuple[Dict[str, object], ...]
    geometries: Tuple[Dict[str, object], ...]
    zooms: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(zip(self.queries, self.geometries))


def generate_viewport_workload(
    table: Table,
    attrs: Sequence[str],
    num_queries: int = 100,
    seed: int = 0,
    session_length: int = 8,
    min_zoom: int = 0,
    max_zoom: int = 4,
    base_extent: float = 1.0,
) -> ViewportWorkload:
    """Zoom-level-aware viewport sessions over the spatial columns.

    Each session starts centred on a random data point at a random zoom
    level; every step either pans (jitter proportional to the current
    viewport size) or zooms in/out one level.  The viewport at zoom
    ``z`` is a square bbox of side ``base_extent / 2**z``, clipped to
    [0, base_extent].  Cell predicates are drawn the same way as
    :func:`generate_workload` so the spatial filter composes with a
    non-empty cell population.
    """
    from repro.core import spatial

    attrs = tuple(attrs)
    table.schema.require(attrs)
    if not spatial.has_spatial_columns(table):
        raise ValueError(
            f"table has no spatial columns "
            f"({spatial.SPATIAL_X!r}/{spatial.SPATIAL_Y!r}) for a viewport workload"
        )
    if not (0 <= min_zoom <= max_zoom):
        raise ValueError(f"need 0 <= min_zoom <= max_zoom, got {min_zoom}..{max_zoom}")
    rng = np.random.default_rng(seed)
    gsets = grouping_sets(attrs)
    columns = {a: table.column(a) for a in attrs}
    xs, ys = spatial.table_points(table)

    def draw_cell() -> Dict[str, object]:
        gset = gsets[rng.integers(len(gsets))]
        row = int(rng.integers(table.num_rows))
        return {a: columns[a].value_at(row) for a in gset}

    queries: List[Dict[str, object]] = []
    geometries: List[Dict[str, object]] = []
    zooms: List[int] = []
    while len(queries) < num_queries:
        # New session: anchor the viewport on a real data point so the
        # first frame is never empty, at a random starting zoom.
        anchor = int(rng.integers(table.num_rows))
        cx, cy = float(xs[anchor]), float(ys[anchor])
        zoom = int(rng.integers(min_zoom, max_zoom + 1))
        cell = draw_cell()
        steps = min(session_length, num_queries - len(queries))
        for _ in range(steps):
            half = base_extent / (2.0**zoom) / 2.0
            geometries.append(
                {
                    "type": "bbox",
                    "xmin": max(0.0, cx - half),
                    "ymin": max(0.0, cy - half),
                    "xmax": min(base_extent, cx + half),
                    "ymax": min(base_extent, cy + half),
                }
            )
            queries.append(dict(cell))
            zooms.append(zoom)
            if rng.random() < 0.3:
                # Zoom in or out one level, staying in range.
                zoom = min(max_zoom, max(min_zoom, zoom + int(rng.choice((-1, 1)))))
            else:
                # Pan: jitter proportional to the current viewport size.
                cx = float(np.clip(cx + rng.normal(0.0, half), 0.0, base_extent))
                cy = float(np.clip(cy + rng.normal(0.0, half), 0.0, base_extent))
    return ViewportWorkload(
        attrs=attrs,
        queries=tuple(queries),
        geometries=tuple(geometries),
        zooms=tuple(zooms),
    )


def _distinct_cell_budget(table: Table, attrs: Tuple[str, ...]) -> int:
    """A loose upper bound on distinct cells, to stop dedup on tiny data."""
    budget = 1
    for a in attrs:
        col = table.column(a)
        cardinality = len(col.dictionary) if col.dictionary else max(table.num_rows, 1)
        budget *= cardinality + 1
        if budget > 10_000_000:
            break
    return budget
