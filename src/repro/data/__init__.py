"""Datasets and workloads for the experiments.

The paper evaluates on the NYC Taxi & Limousine Commission trip records
(700 million rides, 100 GB). That dataset is not shipped here; instead
:func:`generate_nyctaxi` synthesizes a scaled-down table with the same
seven categorical cube attributes, spatially clustered pickup points
(Manhattan core plus airport hot-spots — the pattern whose loss the
SampleFirst baseline famously misses, Figure 2) and payment/fare/tip
correlations strong enough to produce realistic iceberg-cell ratios.
"""

from repro.data.nyctaxi import (
    CUBE_ATTRIBUTES,
    NYCTaxiConfig,
    generate_nyctaxi,
)
from repro.data.tlc import TLCLoadReport, load_tlc_csv
from repro.data.workload import QueryWorkload, generate_workload

__all__ = [
    "CUBE_ATTRIBUTES",
    "NYCTaxiConfig",
    "QueryWorkload",
    "TLCLoadReport",
    "generate_nyctaxi",
    "generate_workload",
    "load_tlc_csv",
]
